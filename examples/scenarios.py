#!/usr/bin/env python3
"""Walkthrough: generating synthetic hypervisor scenarios.

The scenario engine (:mod:`repro.workloads.synthetic`) builds workload
traces from three composable models -- an address-stream model, a
remap-pattern family mirroring a real hypervisor remap source, and a
vCPU sharing model.  Scenarios are named (``syn:family/key=value/...``)
so they flow through the cached ``Session`` API like any other
workload.

Run with::

    python examples/scenarios.py        # simulates three protocols
    python examples/scenarios.py        # second run: pure cache hits

Equivalent command line::

    python -m repro scenario run --family live-migration --seed 11 \
        --vcpus 8 --refs 24000 --protocols software,hatric,ideal
"""

from __future__ import annotations

from repro.api import RunRequest, Session, default_cache_dir
from repro.experiments.scenarios import differential_violations, family_config
from repro.sim.config import SystemConfig
from repro.workloads import make_workload
from repro.workloads.synthetic import scenario_spec, summarize_trace

PROTOCOLS = ("software", "hatric", "ideal")


def main() -> None:
    # 1. Declare a scenario: live-migration dirty-page logging passes
    #    over a zipf-skewed address stream, 8 vCPUs of one guest.
    spec = scenario_spec(
        "live-migration",
        seed=11,
        address_model="zipf",
        num_vcpus=8,
        refs_total=24_000,
    )
    print(f"scenario: {spec.name}")

    # 2. Inspect the generated trace without simulating anything.
    trace = make_workload(spec.name).generate(num_vcpus=8)
    for key, value in summarize_trace(trace).items():
        print(f"  {key}: {value}")

    # 3. Run it under three coherence protocols through a cached session.
    #    family_config applies the paging knobs the family needs (e.g.
    #    compaction scenarios turn on defragmentation remaps).
    session = Session(cache_dir=default_cache_dir() / "scenarios-example")
    base = family_config(SystemConfig(num_cpus=8), spec.family)
    results = dict(
        zip(
            PROTOCOLS,
            session.run_batch(
                [
                    RunRequest(
                        config=base.with_protocol(protocol),
                        workload=spec.name,
                    )
                    for protocol in PROTOCOLS
                ]
            ),
        )
    )

    print(f"\n{'protocol':>9}  {'runtime':>12}  {'vs ideal':>8}")
    ideal = results["ideal"]
    for protocol, result in results.items():
        print(
            f"{protocol:>9}  {result.runtime_cycles:>12,}  "
            f"{result.normalized_runtime(ideal):>8.3f}"
        )

    # 4. Differential validation: the invariants every protocol must
    #    satisfy on any trace (ideal fastest, hatric <= software, ...).
    violations = differential_violations(results)
    print(
        "\ndifferential invariants: "
        + ("OK" if not violations else "; ".join(violations))
    )
    stats = session.stats
    print(f"session: {stats.executed} simulated, {stats.disk_hits} from cache")


if __name__ == "__main__":
    main()
