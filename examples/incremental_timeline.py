#!/usr/bin/env python3
"""Checkpointed sweeps and time-resolved telemetry in one sitting.

Part 1 answers a ``refs_total`` sweep *incrementally*: the session
snapshots complete machine state (:mod:`repro.sim.snapshot`) as it
runs, and each longer point restores the previous point's checkpoint
and simulates only the tail -- bit-identically to a cold run.  The
``prefix:`` workload wrapper makes the sweep's traces literal prefixes
of one fixed base trace, which is what lets the checkpoints chain.

Part 2 looks *inside* a run: interval telemetry decomposes the same
simulations into per-window statistics deltas, exposing the paper's
core phenomenon as a time series -- the software baseline's shootdown
storms during migration bursts, while HATRIC's co-tag invalidations
barely register.

Run with::

    python examples/incremental_timeline.py        # cold: simulates
    python examples/incremental_timeline.py        # warm: checkpoints
"""

from __future__ import annotations

import time

from repro import RunRequest, Session, SystemConfig
from repro.api import default_cache_dir
from repro.api.session import CHECKPOINT_COUNTERS

CACHE_DIR = default_cache_dir() / "incremental-example"
BASE_REFS = 120_000
POINTS = (40_000, 80_000, 120_000)
WORKLOAD = f"prefix:{BASE_REFS}:syn:migration-daemon/seed=7"


def requests(protocol: str) -> list[RunRequest]:
    return [
        RunRequest(
            config=SystemConfig(num_cpus=8, protocol=protocol),
            workload=WORKLOAD,
            refs_total=refs,
            warmup_refs=500,       # absolute, so checkpoints chain
            interval_refs=8_000,   # time-resolved telemetry
        )
        for refs in POINTS
    ]


def main() -> None:
    session = Session(cache_dir=CACHE_DIR, checkpoints=True)

    print(f"refs sweep over {WORKLOAD}")
    started = time.perf_counter()
    software = session.run_batch(requests("software"))
    hatric = session.run_batch(requests("hatric"))
    elapsed = time.perf_counter() - started
    print(
        f"  6 runs in {elapsed:.1f}s -- "
        f"{CHECKPOINT_COUNTERS['restored']} checkpoint restores, "
        f"{session.stats.disk_hits} disk hits, "
        f"{session.stats.executed} simulated"
    )
    for refs, sw, ha in zip(POINTS, software, hatric):
        print(
            f"  refs={refs:>7}: software/hatric runtime = "
            f"{sw.runtime_cycles / ha.runtime_cycles:.2f}x"
        )

    print("\ncoherence cycles per interval (longest run):")
    print(f"  {'window':>17}  {'software':>10}  {'hatric':>8}")
    for sw_sample, ha_sample in zip(software[-1].intervals, hatric[-1].intervals):
        window = f"{sw_sample.start_refs}..{sw_sample.end_refs}"
        print(
            f"  {window:>17}  {sw_sample.coherence_cycles:>10}  "
            f"{ha_sample.coherence_cycles:>8}"
        )
    print(
        "\n(re-run this script: every point is now answered from the "
        "result cache;\n python -m repro timeline renders the same "
        "telemetry with bars)"
    )


if __name__ == "__main__":
    main()
