#!/usr/bin/env python3
"""Quickstart: simulate one workload with and without HATRIC.

Builds a 8-vCPU virtualized system with die-stacked plus off-chip DRAM,
runs the ``canneal`` workload under today's software translation
coherence and under HATRIC, and prints what changed: runtime, cycles
lost to translation coherence, VM exits, and translation structure
flushes.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Simulator, SystemConfig, make_workload


def run(protocol: str, num_cpus: int = 8):
    """Run canneal under one translation coherence protocol."""
    config = SystemConfig(num_cpus=num_cpus, protocol=protocol)
    simulator = Simulator(config)
    workload = make_workload("canneal")
    # A shortened trace keeps the example snappy; drop refs_total for the
    # full-length run used by the benchmarks.
    return simulator.run(workload, refs_total=40_000)


def main() -> None:
    software = run("software")
    hatric = run("hatric")

    speedup = software.runtime_cycles / hatric.runtime_cycles
    print("canneal on an 8-vCPU VM with hypervisor-managed die-stacked DRAM")
    print("-" * 64)
    for name, result in (("software", software), ("hatric", hatric)):
        events = result.events
        print(
            f"{name:>9}: runtime {result.runtime_cycles:>12,} cycles | "
            f"coherence {result.coherence_cycles:>12,} cycles | "
            f"VM exits {events.get('coherence.vm_exits', 0):>6} | "
            f"flushes {events.get('coherence.full_flushes', 0):>6}"
        )
    print("-" * 64)
    print(f"HATRIC speedup over software translation coherence: {speedup:.2f}x")
    print(
        "energy relative to software baseline: "
        f"{hatric.energy_total / software.energy_total:.2f}x"
    )


if __name__ == "__main__":
    main()
