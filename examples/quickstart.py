#!/usr/bin/env python3
"""Quickstart: simulate one workload with and without HATRIC.

Builds an 8-vCPU virtualized system with die-stacked plus off-chip DRAM
and runs the ``canneal`` workload under today's software translation
coherence and under HATRIC -- as one batch of declarative
:class:`~repro.api.RunRequest` objects executed through a
:class:`~repro.api.Session`, so repeated invocations are answered from
the on-disk result cache instead of re-simulating.  It then prints what
changed: runtime, cycles lost to translation coherence, VM exits, and
translation structure flushes.

Run with::

    python examples/quickstart.py          # simulates both protocols
    python examples/quickstart.py          # second run: pure cache hits
"""

from __future__ import annotations

from repro import RunRequest, Session, SystemConfig
from repro.api import default_cache_dir

#: Both requests share the machine shape and differ only in protocol.
#: A shortened trace keeps the example snappy (long enough that paging
#: and hence translation coherence actually kicks in); drop refs_total
#: for the full-length run used by the benchmarks.
PROTOCOLS = ("software", "hatric")
REFS_TOTAL = 80_000
#: A per-user subdirectory of the package's default cache location.
CACHE_DIR = default_cache_dir() / "quickstart"


def main() -> None:
    session = Session(cache_dir=CACHE_DIR)
    requests = [
        RunRequest(
            config=SystemConfig(num_cpus=8, protocol=protocol),
            workload="canneal",
            refs_total=REFS_TOTAL,
        )
        for protocol in PROTOCOLS
    ]
    software, hatric = session.run_batch(requests)

    speedup = software.runtime_cycles / hatric.runtime_cycles
    print("canneal on an 8-vCPU VM with hypervisor-managed die-stacked DRAM")
    print("-" * 64)
    for name, result in (("software", software), ("hatric", hatric)):
        events = result.events
        print(
            f"{name:>9}: runtime {result.runtime_cycles:>12,} cycles | "
            f"coherence {result.coherence_cycles:>12,} cycles | "
            f"VM exits {events.get('coherence.vm_exits', 0):>6} | "
            f"flushes {events.get('coherence.full_flushes', 0):>6}"
        )
    print("-" * 64)
    print(f"HATRIC speedup over software translation coherence: {speedup:.2f}x")
    print(
        "energy relative to software baseline: "
        f"{hatric.energy_total / software.energy_total:.2f}x"
    )
    stats = session.stats
    print(
        f"session: {stats.executed} simulated, "
        f"{stats.disk_hits} served from {CACHE_DIR}"
    )


if __name__ == "__main__":
    main()
