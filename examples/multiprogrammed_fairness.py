#!/usr/bin/env python3
"""Multiprogrammed fairness study (a miniature Figure 10).

Runs a few 16-application SPEC-like mixes inside one VM and shows how
software translation coherence lets one application's page migrations
slow every other application down (imprecise target identification),
while HATRIC leaves uninvolved applications alone.

Run with::

    python examples/multiprogrammed_fairness.py [num_mixes]
"""

from __future__ import annotations

import sys

from repro.experiments.figure10 import format_figure10, run_figure10
from repro.experiments.runner import ExperimentScale


def main() -> None:
    num_mixes = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    result = run_figure10(
        num_mixes=num_mixes, scale=ExperimentScale(trace_scale=0.5)
    )
    print(format_figure10(result))
    print()
    worst_sw = max(o.slowest_runtime for o in result.series("sw"))
    worst_hatric = max(o.slowest_runtime for o in result.series("hatric"))
    print(
        f"worst slowdown of any application: {worst_sw:.2f}x under software "
        f"coherence vs {worst_hatric:.2f}x under HATRIC"
    )


if __name__ == "__main__":
    main()
