#!/usr/bin/env python3
"""Walkthrough: fleet-scale simulation with live migration.

The fleet layer (:mod:`repro.fleet`) runs N simulated hosts side by
side and live-migrates guests between them on a deterministic seeded
schedule.  A migration is a real machine-state transfer -- snapshot
capture on the source host, restore into the destination, and a
dirty-page-logging write storm replayed on both ends -- so the
translation coherence cost of migration is simulated, not modeled.

Run with::

    python examples/fleet_migration.py   # simulates three protocols
    python examples/fleet_migration.py   # second run: pure cache hits

Equivalent command line::

    python -m repro fleet --hosts 2 --vms-per-host 2 --num-cpus 4 \
        --epochs 3 --epoch-refs 1024 --storm-refs 64 --intensities 1,2
"""

from __future__ import annotations

from repro import FleetRequest, Session
from repro.api import default_cache_dir
from repro.experiments import fleet_spec, format_fleet, run_fleet_experiment
from repro.fleet import fleet_violations, migration_plan

PROTOCOLS = ("software", "hatric", "ideal")


def main() -> None:
    # 1. Declare a fleet: 2 hosts x 2 migration-daemon guests each,
    #    4 pCPUs per host, 3 round-aligned epochs of 1024 refs per
    #    vCPU, one VM migrated per epoch wave (intensity=1).  This is
    #    the smallest shape where the protocols separate (see
    #    tests/golden/README.md).
    spec = fleet_spec(
        hosts=2,
        vms_per_host=2,
        num_cpus=4,
        epochs=3,
        epoch_refs=1024,
        storm_refs=64,
        intensity=1,
    )
    print(f"fleet: {spec.name}")

    # 2. The migration schedule is a pure function of the spec --
    #    computed from the placement map and a seeded RNG, never from
    #    measured cycles -- so it is identical across protocols and
    #    across both execution engines.
    for epoch, wave in enumerate(migration_plan(spec)):
        for vm, src, dst in wave:
            print(f"  epoch {epoch}: vm{vm} host{src} -> host{dst}")

    # 3. Run the same fleet under three coherence protocols through a
    #    cached session.  A whole fleet run is one cacheable unit of
    #    work (a `fleet:`-prefixed key), so re-running this script is
    #    answered entirely from disk.
    session = Session(cache_dir=default_cache_dir() / "fleet-example")
    results = dict(
        zip(
            PROTOCOLS,
            session.run_fleet(
                [FleetRequest(spec=spec, protocol=p) for p in PROTOCOLS]
            ),
        )
    )

    print(f"\n{'protocol':>9}  {'makespan':>12}  {'vs ideal':>8}")
    ideal = results["ideal"]
    for protocol, result in results.items():
        print(
            f"{protocol:>9}  {result.makespan_cycles:>12,}  "
            f"{result.makespan_cycles / ideal.makespan_cycles:>8.3f}"
        )

    # 4. Per-VM tail latency: each VM's cycles-per-ref per epoch,
    #    exact nearest-rank percentiles, and SLO violations (epochs
    #    slower than 1.5x that VM's own median).
    print(f"\n{'vm':<26}  {'moves':>5}  {'p50':>8}  {'p99':>8}  {'slo':>3}")
    for vm in results["software"].vms:
        tail = vm["tail"]
        print(
            f"{vm['name']:<26}  {vm['migrations']:>5}  "
            f"{tail['p50']:>8.1f}  {tail['p99']:>8.1f}  "
            f"{vm['slo_violations']:>3}"
        )

    # 5. Differential validation: same per-VM work under every
    #    protocol, ideal <= all, hatric <= software, migration counts
    #    matching the plan.
    violations = fleet_violations(results)
    print(
        "\ndifferential invariants: "
        + ("OK" if not violations else "; ".join(violations))
    )

    # 6. The full study -- protocol x migration intensity -- is one
    #    call; `python -m repro fleet` renders exactly this table (the
    #    committed FLEET_6.txt is the default-shape run).
    study = run_fleet_experiment(
        num_cpus=4,
        epochs=3,
        epoch_refs=1024,
        storm_refs=64,
        intensities=(1, 2),
        session=session,
    )
    print("\n" + format_fleet(study))
    stats = session.stats
    print(f"session: {stats.executed} simulated, {stats.disk_hits} from cache")


if __name__ == "__main__":
    main()
