#!/usr/bin/env python3
"""Co-tag sizing study (a miniature Figure 11, right panel).

Sweeps HATRIC's co-tag width over 1, 2 and 3 bytes on one workload and
prints the performance/energy trade-off relative to the software
baseline.  Narrow co-tags alias (a remap invalidates unrelated cached
translations, forcing extra page walks); wide co-tags cost lookup and
static energy on every TLB access.  The paper picks 2 bytes.

Run with::

    python examples/cotag_sizing.py [workload]
"""

from __future__ import annotations

import sys

from repro.experiments.figure11 import format_figure11_right, run_figure11_right
from repro.experiments.runner import ExperimentScale


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "graph500"
    result = run_figure11_right(
        workloads=[workload],
        cotag_sizes=(1, 2, 3),
        scale=ExperimentScale(trace_scale=0.5),
    )
    print(f"co-tag sizing on {workload} (relative to software coherence)")
    print(format_figure11_right(result))
    best = min(result.cells, key=lambda c: c.relative_runtime + c.relative_energy)
    print()
    print(
        f"best combined design point: {best.cotag_bytes}-byte co-tags "
        f"(runtime {best.relative_runtime:.3f}, energy {best.relative_energy:.3f})"
    )


if __name__ == "__main__":
    main()
