#!/usr/bin/env python3
"""Die-stacked DRAM paging study (a miniature Figure 2).

For one big-memory workload, compares:

* ``no-hbm``     -- off-chip DRAM only,
* ``inf-hbm``    -- everything in die-stacked DRAM (upper bound),
* ``curr-best``  -- hypervisor paging with software translation coherence,
* ``achievable`` -- the same paging with ideal (zero-cost) coherence,
* ``hatric``     -- the same paging with HATRIC.

Run with::

    python examples/die_stacked_paging.py [workload]
"""

from __future__ import annotations

import sys

from repro.experiments.figure2 import run_figure2, format_figure2
from repro.experiments.runner import (
    ExperimentScale,
    baseline_config,
    no_hbm_config,
    run_configuration,
)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "data_caching"
    scale = ExperimentScale(trace_scale=0.5)

    figure = run_figure2(workloads=[workload], num_cpus=16, scale=scale)
    print(format_figure2(figure))

    # Add the HATRIC bar the paper introduces in later figures.
    baseline = run_configuration(no_hbm_config(16), workload, scale)
    hatric = run_configuration(
        baseline_config(16, protocol="hatric"), workload, scale
    )
    row = figure.row(workload)
    print(f"{'(+ hatric)':<14}{hatric.normalized_runtime(baseline):>12.2f}")
    print()
    if row.regression_with_software():
        print(
            "With software coherence, die-stacked DRAM actually slows this "
            "workload down - the paper's data caching / tunkrank observation."
        )
    print(
        f"software coherence wastes "
        f"{row.normalized_runtime['curr-best'] - row.normalized_runtime['achievable']:.2f}x "
        "of no-hbm runtime; HATRIC reclaims almost all of it."
    )


if __name__ == "__main__":
    main()
