"""A multi-tenant simulation service over the session layer.

``python -m repro serve`` exposes the content-addressed
:class:`~repro.api.session.Session` machinery -- dedup, schema-stamped
disk cache, checkpoint reuse, process fan-out -- as an asyncio
HTTP/JSON service: many clients POST
:class:`~repro.api.request.RunRequest` / :class:`~repro.api.sweep.
Sweep` / :class:`~repro.fleet.spec.FleetRequest` payloads against one
shared store.  In-flight work is *single-flight*: N clients posting the
same cache key cost exactly one simulation, everyone awaits the same
future.  Cold work shards over a bounded worker pool; cached results
are served instantly; runs with ``interval_refs`` can stream their
telemetry live as server-sent events.

Layering: ``serve`` sits above ``api`` (and uses ``experiments`` for
invariant checks and table rendering, like ``search`` does).  The
``api`` layer must never import ``serve``.
"""

from repro.serve.client import ServiceClient
from repro.serve.http import ReproServer
from repro.serve.loadtest import (
    LoadReport,
    LoadTestSettings,
    format_load_report,
    run_loadtest,
)
from repro.serve.protocol import ServiceError
from repro.serve.service import ServiceSettings, SimulationService

__all__ = [
    "LoadReport",
    "LoadTestSettings",
    "ReproServer",
    "ServiceClient",
    "ServiceError",
    "ServiceSettings",
    "SimulationService",
    "format_load_report",
    "run_loadtest",
]
