"""Service counters and latency accounting for the ``/stats`` endpoint.

The counters obey one conservation law the protocol tests pin::

    requests == memo_hits + disk_hits + coalesced + executed

Every admitted run unit (a single ``/run`` or ``/fleet`` request, or
one grid point of a ``/sweep``) is classified exactly once at admission
time; ``rejected`` (4xx) and ``errors`` (execution failures) are
tracked outside that identity because a rejected request never reaches
planning and a failed execution was still classified ``executed``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.sim.stats import nearest_rank_percentile

#: Latency sample cap; beyond it the reservoir stops growing (the
#: percentiles of the first N samples are representative long before
#: N reaches this).
MAX_LATENCY_SAMPLES = 200_000


@dataclass
class LatencyReservoir:
    """Wall-clock latency samples with exact nearest-rank percentiles."""

    samples: list[float] = field(default_factory=list)
    count: int = 0

    def add(self, seconds: float) -> None:
        """Record one request latency (seconds)."""
        self.count += 1
        if len(self.samples) < MAX_LATENCY_SAMPLES:
            self.samples.append(seconds)

    def summary(self) -> dict[str, Any]:
        """``{count, mean_ms, p50_ms, p95_ms, p99_ms}`` (zeros when empty)."""
        if not self.samples:
            return {
                "count": self.count,
                "mean_ms": 0.0,
                "p50_ms": 0.0,
                "p95_ms": 0.0,
                "p99_ms": 0.0,
            }
        to_ms = [s * 1000.0 for s in self.samples]
        return {
            "count": self.count,
            "mean_ms": sum(to_ms) / len(to_ms),
            "p50_ms": nearest_rank_percentile(to_ms, 50.0),
            "p95_ms": nearest_rank_percentile(to_ms, 95.0),
            "p99_ms": nearest_rank_percentile(to_ms, 99.0),
        }


@dataclass
class ServiceMetrics:
    """Mutable service-wide counters (single-threaded: the event loop)."""

    #: run units admitted to planning (each classified exactly once).
    requests: int = 0
    #: answered from the session memo (includes disk entries promoted
    #: by an earlier request).
    memo_hits: int = 0
    #: answered from the on-disk cache at admission.
    disk_hits: int = 0
    #: attached to an identical in-flight execution (single-flight).
    coalesced: int = 0
    #: cold executions actually submitted to the worker pool.
    executed: int = 0
    #: admitted units whose execution raised (subset of ``executed``).
    errors: int = 0
    #: requests rejected before admission (4xx: bad payload, bad route).
    rejected: int = 0
    #: streaming (SSE) connections opened.
    streams: int = 0
    started: float = field(default_factory=time.monotonic)
    hit_latency: LatencyReservoir = field(default_factory=LatencyReservoir)
    miss_latency: LatencyReservoir = field(default_factory=LatencyReservoir)

    @property
    def hits(self) -> int:
        """Requests served without awaiting a fresh execution."""
        return self.memo_hits + self.disk_hits

    @property
    def misses(self) -> int:
        """Requests that had to await an execution (own or coalesced)."""
        return self.coalesced + self.executed

    def record_latency(self, source: str, seconds: float) -> None:
        """File one request latency under its admission classification."""
        if source in ("memo", "disk"):
            self.hit_latency.add(seconds)
        else:
            self.miss_latency.add(seconds)

    def snapshot(self, in_flight: int, queue_depth: int) -> dict[str, Any]:
        """The ``/stats`` payload (plus live gauges from the service)."""
        uptime = time.monotonic() - self.started
        return {
            "uptime_seconds": uptime,
            "requests": self.requests,
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "hits": self.hits,
            "coalesced": self.coalesced,
            "executed": self.executed,
            "misses": self.misses,
            "errors": self.errors,
            "rejected": self.rejected,
            "streams": self.streams,
            "hit_rate": (self.hits / self.requests) if self.requests else 0.0,
            "requests_per_second": (
                self.requests / uptime if uptime > 0 else 0.0
            ),
            "in_flight": in_flight,
            "queue_depth": queue_depth,
            "latency": {
                "hit": self.hit_latency.summary(),
                "miss": self.miss_latency.summary(),
            },
        }


__all__ = ["LatencyReservoir", "MAX_LATENCY_SAMPLES", "ServiceMetrics"]
