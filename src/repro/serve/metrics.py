"""Service counters and latency accounting for ``/stats`` and ``/metrics``.

The counters obey one conservation law the protocol tests pin::

    requests == memo_hits + disk_hits + coalesced + executed

Every admitted run unit (a single ``/run`` or ``/fleet`` request, or
one grid point of a ``/sweep``) is classified exactly once at admission
time; ``rejected`` (4xx) and ``errors`` (execution failures) are
tracked outside that identity because a rejected request never reaches
planning and a failed execution was still classified ``executed``.

Both surfaces render from one :class:`repro.obs.metrics.MetricsRegistry`:
the JSON ``/stats`` payload reads the same counter objects the
Prometheus text ``/metrics`` exposition renders, so the two can never
disagree.  Exact percentiles (``/stats``) come from
:func:`repro.sim.stats.nearest_rank_percentile` via the reservoirs;
the registry histograms carry the same observations bucketed for
Prometheus-side aggregation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.sim.stats import nearest_rank_percentile

#: Latency sample cap; beyond it the reservoir stops growing (the
#: percentiles of the first N samples are representative long before
#: N reaches this).
MAX_LATENCY_SAMPLES = 200_000

#: (attribute name, metric name, help text) for every admission counter.
#: One source of truth: the attribute API, the /stats payload, and the
#: /metrics exposition all derive from this table.
COUNTER_METRICS = (
    ("requests", "repro_requests_total", "run units admitted to planning"),
    ("memo_hits", "repro_memo_hits_total", "units answered from the session memo"),
    ("disk_hits", "repro_disk_hits_total", "units answered from the disk cache"),
    ("coalesced", "repro_coalesced_total", "units attached to an in-flight execution"),
    ("executed", "repro_executed_total", "cold executions submitted to the pool"),
    ("errors", "repro_errors_total", "admitted units whose execution raised"),
    ("rejected", "repro_rejected_total", "requests rejected before admission"),
    ("streams", "repro_streams_total", "streaming (SSE) connections opened"),
)


@dataclass
class LatencyReservoir:
    """Wall-clock latency samples with exact nearest-rank percentiles."""

    samples: list[float] = field(default_factory=list)
    count: int = 0

    def add(self, seconds: float) -> None:
        """Record one request latency (seconds)."""
        self.count += 1
        if len(self.samples) < MAX_LATENCY_SAMPLES:
            self.samples.append(seconds)

    def summary(self) -> dict[str, Any]:
        """``{count, mean_ms, p50_ms, p95_ms, p99_ms}`` (zeros when empty)."""
        if not self.samples:
            return {
                "count": self.count,
                "mean_ms": 0.0,
                "p50_ms": 0.0,
                "p95_ms": 0.0,
                "p99_ms": 0.0,
            }
        to_ms = [s * 1000.0 for s in self.samples]
        return {
            "count": self.count,
            "mean_ms": sum(to_ms) / len(to_ms),
            "p50_ms": nearest_rank_percentile(to_ms, 50.0),
            "p95_ms": nearest_rank_percentile(to_ms, 95.0),
            "p99_ms": nearest_rank_percentile(to_ms, 99.0),
        }


class ServiceMetrics:
    """Mutable service-wide counters (single-threaded: the event loop).

    Counter attributes (``metrics.requests += 1`` and friends) are
    properties over registry-held counters, so mutating them through
    either surface keeps ``/stats`` and ``/metrics`` in lockstep.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.started = time.monotonic()
        self.hit_latency = LatencyReservoir()
        self.miss_latency = LatencyReservoir()
        self._counters = {
            attribute: self.registry.counter(name, help_text)
            for attribute, name, help_text in COUNTER_METRICS
        }
        self._uptime = self.registry.gauge(
            "repro_uptime_seconds", "seconds since service start"
        )
        self._in_flight = self.registry.gauge(
            "repro_in_flight", "cold executions currently running or queued"
        )
        self._queue_depth = self.registry.gauge(
            "repro_queue_depth", "executions waiting for a pool worker"
        )
        self._histograms = {
            "hit": self.registry.histogram(
                "repro_request_latency_seconds",
                "request wall-clock latency by admission class",
                labels={"class": "hit"},
            ),
            "miss": self.registry.histogram(
                "repro_request_latency_seconds",
                "request wall-clock latency by admission class",
                labels={"class": "miss"},
            ),
        }

    @property
    def hits(self) -> int:
        """Requests served without awaiting a fresh execution."""
        return self.memo_hits + self.disk_hits

    @property
    def misses(self) -> int:
        """Requests that had to await an execution (own or coalesced)."""
        return self.coalesced + self.executed

    def record_latency(self, source: str, seconds: float) -> None:
        """File one request latency under its admission classification."""
        if source in ("memo", "disk"):
            self.hit_latency.add(seconds)
            self._histograms["hit"].observe(seconds)
        else:
            self.miss_latency.add(seconds)
            self._histograms["miss"].observe(seconds)

    def snapshot(self, in_flight: int, queue_depth: int) -> dict[str, Any]:
        """The ``/stats`` payload (plus live gauges from the service)."""
        uptime = time.monotonic() - self.started
        return {
            "uptime_seconds": uptime,
            "requests": self.requests,
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "hits": self.hits,
            "coalesced": self.coalesced,
            "executed": self.executed,
            "misses": self.misses,
            "errors": self.errors,
            "rejected": self.rejected,
            "streams": self.streams,
            "hit_rate": (self.hits / self.requests) if self.requests else 0.0,
            "requests_per_second": (
                self.requests / uptime if uptime > 0 else 0.0
            ),
            "in_flight": in_flight,
            "queue_depth": queue_depth,
            "latency": {
                "hit": self.hit_latency.summary(),
                "miss": self.miss_latency.summary(),
            },
        }

    def exposition(
        self,
        in_flight: int,
        queue_depth: int,
        extra_gauges: dict[str, tuple[str, float]] = {},
    ) -> str:
        """The Prometheus text for ``/metrics``.

        ``extra_gauges`` maps metric name to ``(help, value)`` for
        scrape-time values owned by the service (worker pool size,
        store entry counts).
        """
        self._uptime.set(time.monotonic() - self.started)
        self._in_flight.set(in_flight)
        self._queue_depth.set(queue_depth)
        for name, (help_text, value) in extra_gauges.items():
            self.registry.gauge(name, help_text).set(value)
        return self.registry.render()


def _counter_property(attribute: str):
    def getter(self: ServiceMetrics) -> int:
        return int(self._counters[attribute].value)

    def setter(self: ServiceMetrics, value: int) -> None:
        current = self._counters[attribute].value
        if value < current:
            raise ValueError(
                f"counter {attribute} cannot decrease ({current} -> {value})"
            )
        self._counters[attribute].inc(value - current)

    return property(getter, setter)


for _attribute, _, _ in COUNTER_METRICS:
    setattr(ServiceMetrics, _attribute, _counter_property(_attribute))
del _attribute


__all__ = [
    "COUNTER_METRICS",
    "LatencyReservoir",
    "MAX_LATENCY_SAMPLES",
    "ServiceMetrics",
]
