"""A dependency-free asyncio HTTP/1.1 front-end for the service.

Minimal by design (the container bakes in no HTTP framework): every
connection carries one request and closes (``Connection: close``), all
bodies are JSON, and the one streaming route speaks server-sent events
(``text/event-stream``).  Routes:

* ``GET /healthz`` -- liveness + version.
* ``GET /stats`` -- the conservation-law counters and latency summary.
* ``POST /run`` -- one :class:`~repro.api.request.RunRequest`.
* ``POST /run/stream`` -- the same, streamed as SSE progress events.
* ``POST /sweep`` -- a :class:`~repro.api.sweep.Sweep` grid, returning
  cells plus a rendered figure table.
* ``POST /fleet`` -- one :class:`~repro.fleet.spec.FleetRequest`.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Optional

from repro import __version__
from repro.experiments.output import render_table
from repro.serve.protocol import (
    ServiceError,
    parse_fleet_payload,
    parse_run_payload,
    parse_sweep_payload,
)
from repro.serve.service import SimulationService

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

#: Sources counted as cache hits when classifying request latency.
HIT_SOURCES = ("memo", "disk")


def _sweep_table(result) -> str:
    """Render a sweep grid as the CLI-style fixed-width figure table."""
    axes = list(result.axes)
    columns = axes + ["runtime_cycles", "energy_total"]
    has_baseline = any(cell.baseline is not None for cell in result.cells)
    if has_baseline:
        columns += ["norm_runtime", "norm_energy"]
    rows = []
    for cell in result.cells:
        row = [cell.coords[axis] for axis in axes]
        row += [cell.result.runtime_cycles, f"{cell.result.energy_total:.1f}"]
        if has_baseline:
            row += [
                f"{cell.normalized_runtime:.4f}",
                f"{cell.normalized_energy:.4f}",
            ]
        rows.append(row)
    aligns = ["left"] * len(axes) + ["right"] * (len(columns) - len(axes))
    return render_table(columns, rows, aligns)


class ReproServer:
    """One listening socket wired to a :class:`SimulationService`."""

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the actual ``(host, port)``
        (``port=0`` requests an ephemeral port)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.port = sockname[1]
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled (the CLI's foreground mode)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop listening and abandon in-flight work (see service.close)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
                await self._dispatch(writer, method, path, body)
            except ServiceError as error:
                if error.status < 500:
                    self.service.metrics.rejected += 1
                await self._respond(writer, error.status, error.to_dict())
            except (
                asyncio.IncompleteReadError,
                ConnectionResetError,
                BrokenPipeError,
            ):
                return  # client went away mid-request; nothing to answer
            except Exception as error:  # noqa: BLE001 -- last-resort 500
                await self._respond(
                    writer,
                    500,
                    {
                        "ok": False,
                        "error": {
                            "code": "internal-error",
                            "detail": f"{type(error).__name__}: {error}",
                        },
                    },
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise asyncio.IncompleteReadError(b"", None)
        parts = request_line.split()
        if len(parts) != 3:
            raise ServiceError(
                400, "invalid-request-line", repr(request_line)
            )
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise ServiceError(
                        400, "invalid-content-length", value.strip()
                    ) from None
        if content_length > self.service.settings.max_body_bytes:
            raise ServiceError(
                413,
                "payload-too-large",
                f"{content_length} bytes exceeds "
                f"{self.service.settings.max_body_bytes}",
            )
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return method, path, body

    @staticmethod
    def _parse_json(body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(400, "invalid-json", str(error)) from error

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, writer: asyncio.StreamWriter, method: str, path: str, body: bytes
    ) -> None:
        routes = {
            ("GET", "/healthz"): self._get_healthz,
            ("GET", "/stats"): self._get_stats,
            ("GET", "/metrics"): self._get_metrics,
            ("POST", "/run"): self._post_run,
            ("POST", "/run/stream"): self._post_run_stream,
            ("POST", "/sweep"): self._post_sweep,
            ("POST", "/fleet"): self._post_fleet,
        }
        handler = routes.get((method, path))
        if handler is None:
            known_paths = {route_path for _, route_path in routes}
            if path in known_paths:
                raise ServiceError(
                    405, "method-not-allowed", f"{method} {path}"
                )
            raise ServiceError(404, "not-found", path)
        await handler(writer, body)

    async def _get_healthz(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        await self._respond(
            writer, 200, {"ok": True, "version": __version__}
        )

    async def _get_stats(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        payload = self.service.stats_snapshot()
        payload["ok"] = True
        await self._respond(writer, 200, payload)

    async def _get_metrics(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        text = self.service.metrics_exposition().encode("utf-8")
        try:
            await self._send_headers(
                writer,
                200,
                {
                    "Content-Type": "text/plain; version=0.0.4; charset=utf-8",
                    "Content-Length": str(len(text)),
                    "Connection": "close",
                },
            )
            writer.write(text)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # scraper went away; nothing to clean up

    async def _post_run(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        request = parse_run_payload(self._parse_json(body))
        started = time.perf_counter()
        try:
            source, result = await self.service.submit(request)
        except Exception as error:
            raise ServiceError(
                500, "execution-failed", f"{type(error).__name__}: {error}"
            ) from error
        self.service.metrics.record_latency(
            source, time.perf_counter() - started
        )
        payload = {"ok": True}
        payload.update(self.service.result_event(
            request.cache_key, source, result
        ))
        await self._respond(writer, 200, payload)

    async def _post_run_stream(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        request = parse_run_payload(self._parse_json(body))
        self.service.metrics.streams += 1
        queue: asyncio.Queue = asyncio.Queue()
        started = time.perf_counter()
        task = asyncio.ensure_future(
            self.service.submit(request, queue=queue)
        )
        await self._send_headers(
            writer,
            200,
            {
                "Content-Type": "text/event-stream",
                "Cache-Control": "no-store",
                "Connection": "close",
            },
        )
        try:
            while True:
                item = await queue.get()
                if item is None:
                    break
                event, data = item
                await self._send_event(writer, event, data)
        finally:
            # the run itself must survive this client disconnecting
            # (other subscribers may still await the shared future)
            try:
                source, _ = await asyncio.shield(task)
                self.service.metrics.record_latency(
                    source, time.perf_counter() - started
                )
            except Exception:
                pass  # already streamed as an ``error`` event

    async def _post_sweep(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        sweep, scale = parse_sweep_payload(self._parse_json(body))
        try:
            result = await self.service.run_sweep(sweep, scale)
        except Exception as error:
            raise ServiceError(
                500, "execution-failed", f"{type(error).__name__}: {error}"
            ) from error
        payload = {"ok": True, "sweep": result.to_dict()}
        payload["table"] = _sweep_table(result)
        await self._respond(writer, 200, payload)

    async def _post_fleet(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        request = parse_fleet_payload(self._parse_json(body))
        started = time.perf_counter()
        try:
            source, result = await self.service.submit(request, kind="fleet")
        except Exception as error:
            raise ServiceError(
                500, "execution-failed", f"{type(error).__name__}: {error}"
            ) from error
        self.service.metrics.record_latency(
            source, time.perf_counter() - started
        )
        payload = {"ok": True}
        payload.update(self.service.result_event(
            request.cache_key, source, result
        ))
        await self._respond(writer, 200, payload)

    # ------------------------------------------------------------------
    # response plumbing
    # ------------------------------------------------------------------
    async def _send_headers(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        headers: dict[str, str],
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}"]
        lines += [f"{name}: {value}" for name, value in headers.items()]
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload: Any
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            await self._send_headers(
                writer,
                status,
                {
                    "Content-Type": "application/json",
                    "Content-Length": str(len(body)),
                    "Connection": "close",
                },
            )
            writer.write(body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # client went away; the work (if any) is already stored

    async def _send_event(
        self, writer: asyncio.StreamWriter, event: str, data: Any
    ) -> None:
        payload = json.dumps(data)
        writer.write(f"event: {event}\ndata: {payload}\n\n".encode("utf-8"))
        await writer.drain()


__all__ = ["HIT_SOURCES", "ReproServer"]
