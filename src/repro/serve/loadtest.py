"""A synthetic multi-tenant load generator for the serve layer.

``python -m repro loadtest`` (and the committed ``LOAD_9.txt``
snapshot) drives thousands of concurrent asyncio clients against a
live server with a zipf-skewed request mix over ``syn:`` / ``multi:``
workload names, then *proves* the service contract rather than just
timing it:

* **dedup** -- cold simulations == distinct cache keys posted (fresh
  store), or zero (warm store); never more than distinct.
* **conservation** -- server-side ``hits + misses == requests``.
* **invariants** -- per-scenario protocol results pass
  :func:`repro.experiments.scenarios.check_invariants` (ideal is a
  floor, hatric beats software, counters non-negative, retired refs
  identical).
* **bit-identity** -- every distinct result returned over the wire is
  fingerprint-identical to direct :func:`~repro.api.session.
  execute_request` execution of the same request.

Latency is reported as exact nearest-rank p50/p95/p99, split by cache
hit vs miss.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, replace
from typing import Any, Optional

import numpy as np

from repro.api.cache import decode_result
from repro.api.request import RunRequest
from repro.api.session import execute_request
from repro.experiments.output import render_table
from repro.experiments.runner import baseline_config
from repro.experiments.scenarios import SCENARIO_FAMILIES, check_invariants
from repro.serve.http import ReproServer
from repro.serve.client import ServiceClient
from repro.serve.service import ServiceSettings, SimulationService
from repro.sim.engine import diff_fingerprints, result_fingerprint
from repro.sim.simulator import SimulationResult
from repro.sim.stats import nearest_rank_percentile
from repro.workloads.synthetic import scenario_spec

#: Cap on simultaneously-open client connections; two file descriptors
#: per in-process connection (client + server end) makes an unbounded
#: 1000-client burst brush against default ``ulimit -n`` values.
DEFAULT_CONNECTION_LIMIT = 256


@dataclass(frozen=True)
class LoadTestSettings:
    """Shape of one load-test run (fully seeded: reproducible mix)."""

    #: concurrent synthetic clients.
    clients: int = 1000
    #: sequential requests each client issues (ignored with duration).
    requests_per_client: int = 3
    #: run for this many seconds instead of a fixed request count.
    duration: Optional[float] = None
    #: distinct synthetic scenarios in the pool (cycled over families).
    scenarios: int = 8
    #: protocols crossed with every scenario.
    protocols: tuple[str, ...] = ("software", "hatric", "ideal")
    #: zipf skew of the request mix (rank probability ~ 1/rank^s).
    zipf_s: float = 1.1
    #: seed for scenario generation and the request mix.
    seed: int = 2025
    #: machine shape of every request.
    num_cpus: int = 4
    #: per-request reference budget (small: the point is concurrency).
    refs_total: int = 4000
    #: worker processes of the spawned in-process server (0 = threads).
    workers: int = 2
    #: include multi-VM (consolidated) compositions in the pool.
    include_multi: bool = True
    #: simultaneously-open client connections.
    connection_limit: int = DEFAULT_CONNECTION_LIMIT
    #: dedup expectation: "cold" (fresh store: executed == distinct),
    #: "warm" (pre-warmed store: executed == 0), "any" (executed <=
    #: distinct).
    expect: str = "cold"
    #: re-execute every distinct request directly and require
    #: fingerprint identity with the served results.
    verify_identity: bool = True


@dataclass
class LoadReport:
    """Everything a load-test run measured and asserted."""

    settings: LoadTestSettings
    wall_seconds: float
    total_requests: int
    distinct_keys: int
    stats: dict[str, Any]
    #: per-source latency samples (seconds), keyed memo/disk/coalesced/
    #: executed.
    latency: dict[str, list[float]] = field(default_factory=dict)
    #: ``(name, ok, detail)`` triples, one per contract check.
    checks: list[tuple[str, bool, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every contract check passed."""
        return all(ok for _, ok, _ in self.checks)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible summary (the CLI ``--json`` payload)."""
        return {
            "ok": self.ok,
            "clients": self.settings.clients,
            "wall_seconds": self.wall_seconds,
            "total_requests": self.total_requests,
            "distinct_keys": self.distinct_keys,
            "stats": self.stats,
            "latency_ms": {
                bucket: _latency_summary(samples)
                for bucket, samples in sorted(self.latency.items())
            },
            "checks": [
                {"name": name, "ok": ok, "detail": detail}
                for name, ok, detail in self.checks
            ],
        }


def _latency_summary(samples: list[float]) -> dict[str, float]:
    if not samples:
        return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    ms = [s * 1000.0 for s in samples]
    return {
        "count": len(ms),
        "p50": nearest_rank_percentile(ms, 50.0),
        "p95": nearest_rank_percentile(ms, 95.0),
        "p99": nearest_rank_percentile(ms, 99.0),
    }


# ----------------------------------------------------------------------
# request pool
# ----------------------------------------------------------------------
def build_request_pool(
    settings: LoadTestSettings,
) -> list[tuple[str, str, RunRequest]]:
    """The ``(scenario, protocol, request)`` population clients draw from.

    Scenario names are canonical ``syn:`` (and, when enabled,
    ``multi:``) strings, each crossed with every protocol on the same
    machine shape -- which is exactly the grouping
    :func:`check_invariants` wants back at verification time.
    """
    if settings.scenarios < 1:
        raise ValueError("scenarios must be >= 1")
    names: list[str] = []
    for index in range(settings.scenarios):
        family = SCENARIO_FAMILIES[index % len(SCENARIO_FAMILIES)]
        names.append(
            scenario_spec(family, seed=settings.seed + index).name
        )
    if settings.include_multi and settings.num_cpus >= 2 and len(names) >= 2:
        half = settings.num_cpus // 2
        names.append(f"multi:{names[0]}@{half}+{names[1]}@{half}")
        names.append(
            f"multi:{names[0]}@{half}+{names[0]}@{half}+share=shared"
        )
    pool: list[tuple[str, str, RunRequest]] = []
    for name in names:
        for protocol in settings.protocols:
            request = RunRequest(
                config=baseline_config(
                    num_cpus=settings.num_cpus, protocol=protocol
                ),
                workload=name,
                refs_total=settings.refs_total,
            )
            pool.append((name, protocol, request))
    return pool


def _zipf_probabilities(size: int, s: float) -> np.ndarray:
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, s)
    return weights / weights.sum()


# ----------------------------------------------------------------------
# the run itself
# ----------------------------------------------------------------------
async def _drive_clients(
    settings: LoadTestSettings,
    client: ServiceClient,
    pool: list[tuple[str, str, RunRequest]],
) -> list[tuple[int, str, float, dict]]:
    """Fan out the clients; returns ``(pick, source, latency, body)``
    records for every completed request."""
    probabilities = _zipf_probabilities(len(pool), settings.zipf_s)
    limiter = asyncio.Semaphore(max(1, settings.connection_limit))
    records: list[tuple[int, str, float, dict]] = []
    deadline = (
        time.monotonic() + settings.duration
        if settings.duration is not None
        else None
    )

    async def one_request(pick: int) -> None:
        _, _, request = pool[pick]
        payload = {"request": request.to_dict()}
        async with limiter:
            # timed inside the limiter: the semaphore is an fd-budget
            # artifact of running all clients in one process, not part
            # of the server's observable latency
            started = time.perf_counter()
            status, body = await client.post("/run", payload)
            elapsed = time.perf_counter() - started
        if status != 200 or not body or not body.get("ok"):
            raise RuntimeError(
                f"request for pool entry {pick} failed: "
                f"status {status}, body {body!r}"
            )
        records.append((pick, body["source"], elapsed, body))

    async def one_client(client_index: int) -> None:
        rng = np.random.default_rng(
            (settings.seed * 1_000_003 + client_index) % (2**63)
        )
        if deadline is None:
            picks = rng.choice(
                len(pool), size=settings.requests_per_client, p=probabilities
            )
            for pick in picks:
                await one_request(int(pick))
        else:
            while time.monotonic() < deadline:
                pick = int(rng.choice(len(pool), p=probabilities))
                await one_request(pick)

    await asyncio.gather(
        *[one_client(index) for index in range(settings.clients)]
    )
    return records


def _verify(
    settings: LoadTestSettings,
    pool: list[tuple[str, str, RunRequest]],
    records: list[tuple[int, str, float, dict]],
    stats_delta: dict[str, int],
) -> list[tuple[str, bool, str]]:
    """The contract checks; see the module docstring."""
    checks: list[tuple[str, bool, str]] = []
    picked = sorted({pick for pick, _, _, _ in records})
    distinct = len({pool[pick][2].cache_key for pick in picked})

    requests = stats_delta["requests"]
    hits = stats_delta["hits"]
    misses = stats_delta["misses"]
    checks.append((
        "conservation",
        hits + misses == requests and requests == len(records),
        f"hits {hits} + misses {misses} == requests {requests} "
        f"(client-side {len(records)})",
    ))

    executed = stats_delta["executed"]
    if settings.expect == "cold":
        dedup_ok = executed == distinct
        expectation = f"== distinct {distinct} (cold store)"
    elif settings.expect == "warm":
        dedup_ok = executed == 0
        expectation = "== 0 (warm store)"
    else:
        dedup_ok = executed <= distinct
        expectation = f"<= distinct {distinct}"
    checks.append((
        "dedup",
        dedup_ok,
        f"executed {executed} {expectation}",
    ))
    checks.append((
        "errors",
        stats_delta["errors"] == 0,
        f"execution errors {stats_delta['errors']}",
    ))

    # one decoded result per distinct pool entry actually requested
    decoded: dict[int, Any] = {}
    for pick, _, _, body in records:
        if pick not in decoded:
            decoded[pick] = decode_result(body["result"])

    # invariants: group per scenario, protocols that were all sampled
    by_scenario: dict[str, dict[str, SimulationResult]] = {}
    for pick, result in decoded.items():
        scenario, protocol, _ = pool[pick]
        by_scenario.setdefault(scenario, {})[protocol] = result
    violations: list[str] = []
    complete = 0
    for scenario, results in sorted(by_scenario.items()):
        if set(results) != set(settings.protocols):
            continue  # the zipf tail may never sample a protocol
        complete += 1
        violations.extend(
            f"{scenario}: {violation}"
            for violation in map(str, check_invariants(results))
        )
    checks.append((
        "invariants",
        not violations,
        violations[0] if violations else (
            f"0 violations across {complete} fully-sampled scenarios"
        ),
    ))

    if settings.verify_identity:
        mismatches: list[str] = []
        for pick, served in sorted(decoded.items()):
            scenario, protocol, request = pool[pick]
            direct = execute_request(request)
            differences = diff_fingerprints(
                result_fingerprint(direct), result_fingerprint(served)
            )
            if differences:
                mismatches.append(
                    f"{scenario}/{protocol}: {differences[0]}"
                )
        checks.append((
            "bit-identity",
            not mismatches,
            mismatches[0] if mismatches else (
                f"{len(decoded)} distinct results fingerprint-identical "
                f"to direct execution"
            ),
        ))
    return checks


async def _run_loadtest_async(
    settings: LoadTestSettings,
    host: Optional[str],
    port: Optional[int],
    cache_dir,
) -> LoadReport:
    server = None
    if host is None or port is None:
        service = SimulationService(ServiceSettings(
            cache_dir=cache_dir if cache_dir is not None else True,
            workers=settings.workers,
        ))
        server = ReproServer(service)
        host, port = await server.start()
    client = ServiceClient(host, port)
    pool = build_request_pool(settings)
    try:
        _, before = await client.get("/stats")
        started = time.perf_counter()
        records = await _drive_clients(settings, client, pool)
        wall = time.perf_counter() - started
        _, after = await client.get("/stats")
    finally:
        if server is not None:
            await server.stop()
    stats_delta = {
        key: after[key] - before[key]
        for key in (
            "requests", "hits", "misses", "memo_hits", "disk_hits",
            "coalesced", "executed", "errors",
        )
    }
    latency: dict[str, list[float]] = {}
    for _, source, elapsed, _ in records:
        latency.setdefault(source, []).append(elapsed)
    checks = _verify(settings, pool, records, stats_delta)
    return LoadReport(
        settings=settings,
        wall_seconds=wall,
        total_requests=len(records),
        distinct_keys=len({
            pool[pick][2].cache_key for pick, _, _, _ in records
        }),
        stats={**after, "delta": stats_delta},
        latency=latency,
        checks=checks,
    )


def run_loadtest(
    settings: Optional[LoadTestSettings] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    cache_dir=None,
) -> LoadReport:
    """Run the load test; spawns an in-process server unless ``host`` /
    ``port`` point at a live one.

    ``cache_dir`` seeds the in-process server's store (ignored with an
    external server); None uses the default store location.
    """
    settings = settings or LoadTestSettings()
    return asyncio.run(
        _run_loadtest_async(settings, host, port, cache_dir)
    )


# ----------------------------------------------------------------------
# rendering (the LOAD_9.txt format)
# ----------------------------------------------------------------------
def format_load_report(report: LoadReport) -> str:
    """The committed-snapshot text form (see ``LOAD_9.txt``)."""
    settings = report.settings
    delta = report.stats["delta"]
    lines = [
        "repro loadtest: concurrent synthetic clients vs one shared store",
        (
            f"clients={settings.clients} requests={report.total_requests} "
            f"pool={len(build_request_pool(settings))} "
            f"distinct-requested={report.distinct_keys} "
            f"zipf_s={settings.zipf_s} seed={settings.seed}"
        ),
        (
            f"num_cpus={settings.num_cpus} refs_total={settings.refs_total} "
            f"workers={settings.workers} expect={settings.expect} "
            f"wall={report.wall_seconds:.2f}s "
            f"rps={report.total_requests / report.wall_seconds:.0f}"
        ),
        "",
    ]
    columns = ["source", "count", "p50_ms", "p95_ms", "p99_ms"]
    rows = []
    for source in ("memo", "disk", "coalesced", "executed"):
        samples = report.latency.get(source, [])
        summary = _latency_summary(samples)
        rows.append([
            source,
            summary["count"],
            f"{summary['p50']:.2f}",
            f"{summary['p95']:.2f}",
            f"{summary['p99']:.2f}",
        ])
    lines.append(render_table(columns, rows))
    lines.append("")
    lines.append(
        f"server: requests={delta['requests']} hits={delta['hits']} "
        f"(memo {delta['memo_hits']}, disk {delta['disk_hits']}) "
        f"coalesced={delta['coalesced']} executed={delta['executed']} "
        f"errors={delta['errors']}"
    )
    for name, ok, detail in report.checks:
        verdict = "OK" if ok else "VIOLATION"
        lines.append(f"{verdict}: {name}: {detail}")
    return "\n".join(lines)


def settings_with(settings: LoadTestSettings, **overrides) -> LoadTestSettings:
    """A copy of ``settings`` with fields replaced (CLI plumbing)."""
    return replace(settings, **overrides)


__all__ = [
    "DEFAULT_CONNECTION_LIMIT",
    "LoadReport",
    "LoadTestSettings",
    "build_request_pool",
    "format_load_report",
    "run_loadtest",
    "settings_with",
]
