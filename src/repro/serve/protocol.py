"""Wire-level payload validation and structured service errors.

Every malformed request maps to a :class:`ServiceError` with an HTTP
status, a stable machine-readable ``code`` and a human-readable
``detail`` -- the service tests pin that client mistakes are structured
4xx responses, never stack-trace 500s.  Parsing is strict at admission
time (unknown workload names, bad axis shapes, wrong types) so a
request that enters the execution pipeline can only fail for simulator
reasons.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.api.request import RunRequest, config_from_dict
from repro.api.scale import ExperimentScale
from repro.api.sweep import Sweep
from repro.workloads import make_workload

#: Bodies larger than this are rejected with 413 before parsing.
MAX_BODY_BYTES = 8 * 1024 * 1024


class ServiceError(Exception):
    """A client-visible service failure with a structured wire form."""

    def __init__(self, status: int, code: str, detail: str) -> None:
        super().__init__(f"{status} {code}: {detail}")
        self.status = status
        self.code = code
        self.detail = detail

    def to_dict(self) -> dict[str, Any]:
        """The JSON error body every non-2xx response carries."""
        return {
            "ok": False,
            "error": {"code": self.code, "detail": self.detail},
        }


def invalid(detail: str) -> ServiceError:
    """The common 400 for structurally-bad request payloads."""
    return ServiceError(400, "invalid-request", detail)


def _require_mapping(data: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise invalid(f"{what} must be a JSON object, got {type(data).__name__}")
    return data


def parse_run_payload(data: Any) -> RunRequest:
    """Parse a ``POST /run`` body: ``{"request": RunRequest.to_dict()}``.

    The workload name is resolved eagerly so unknown names fail here
    (400) instead of inside a worker process (500).
    """
    body = _require_mapping(data, "run payload")
    if "request" not in body:
        raise invalid("run payload needs a 'request' object")
    request_data = _require_mapping(body["request"], "'request'")
    try:
        request = RunRequest.from_dict(request_data)
    except (KeyError, TypeError, ValueError) as error:
        raise invalid(f"bad run request: {error}") from error
    try:
        make_workload(request.workload)
    except (KeyError, TypeError, ValueError) as error:
        raise ServiceError(
            400, "unknown-workload", f"{request.workload!r}: {error}"
        ) from error
    return request


def parse_fleet_payload(data: Any):
    """Parse a ``POST /fleet`` body: ``{"request": FleetRequest.to_dict()}``."""
    # imported lazily: repro.fleet sits above repro.api but below serve
    from repro.fleet.spec import FleetRequest

    body = _require_mapping(data, "fleet payload")
    if "request" not in body:
        raise invalid("fleet payload needs a 'request' object")
    request_data = _require_mapping(body["request"], "'request'")
    try:
        return FleetRequest.from_dict(request_data)
    except (KeyError, TypeError, ValueError) as error:
        raise invalid(f"bad fleet request: {error}") from error


def parse_sweep_payload(data: Any) -> tuple[Sweep, ExperimentScale]:
    """Parse a ``POST /sweep`` body into a :class:`Sweep` plus scale.

    Shape::

        {"axes": {"protocol": [...], "workload": [...]},
         "base": <SystemConfig dict, optional>,
         "normalize": {<axis>: <value>, ...}  # optional
         "scale": {"trace_scale": 1.0, "warmup_fraction": 0.2}}  # optional

    Axes are restricted to :class:`~repro.sim.config.SystemConfig`
    fields plus the workload axis -- a ``configure`` callback cannot
    cross the wire.
    """
    body = _require_mapping(data, "sweep payload")
    axes = _require_mapping(body.get("axes", None), "'axes'")
    if not axes:
        raise invalid("'axes' must name at least one axis")
    clean_axes: dict[str, list] = {}
    for name, values in axes.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise invalid(f"axis {name!r} must be a non-empty list")
        clean_axes[str(name)] = list(values)
    base = None
    if body.get("base") is not None:
        try:
            base = config_from_dict(_require_mapping(body["base"], "'base'"))
        except (KeyError, TypeError, ValueError) as error:
            raise invalid(f"bad base config: {error}") from error
    try:
        sweep = Sweep(axes=clean_axes, base=base)
    except (TypeError, ValueError) as error:
        raise invalid(f"bad sweep axes: {error}") from error
    normalize = body.get("normalize")
    if normalize is not None:
        normalize = _require_mapping(normalize, "'normalize'")
        try:
            sweep = sweep.normalize_to(**{str(k): v for k, v in normalize.items()})
        except (TypeError, ValueError) as error:
            raise invalid(f"bad normalize overrides: {error}") from error
    scale = parse_scale(body.get("scale"))
    for coords in sweep.points():
        workload = coords[sweep.workload_axis]
        try:
            make_workload(workload)
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(
                400, "unknown-workload", f"{workload!r}: {error}"
            ) from error
    return sweep, scale


def parse_scale(data: Optional[Any]) -> ExperimentScale:
    """Parse the optional ``scale`` section of a sweep payload."""
    if data is None:
        return ExperimentScale()
    body = _require_mapping(data, "'scale'")
    try:
        return ExperimentScale(
            trace_scale=float(body.get("trace_scale", 1.0)),
            warmup_fraction=float(body.get("warmup_fraction", 0.2)),
        )
    except (TypeError, ValueError) as error:
        raise invalid(f"bad scale: {error}") from error


__all__ = [
    "MAX_BODY_BYTES",
    "ServiceError",
    "invalid",
    "parse_fleet_payload",
    "parse_run_payload",
    "parse_scale",
    "parse_sweep_payload",
]
