"""The single-flight execution core behind the HTTP front-end.

One :class:`SimulationService` owns a :class:`~repro.api.session.
Session` (the shared memo + disk store) and a bounded worker pool.  Its
contract, which the load-test layer proves at >=1000 concurrent
clients:

* every admitted run unit is classified exactly once -- ``memo``,
  ``disk``, ``coalesced`` or ``executed`` -- and N concurrent requests
  for the same cache key cost exactly one cold simulation (the rest
  await the same :class:`asyncio.Future`);
* results are bit-identical to direct :class:`Session` execution (the
  transport changes, the executor does not);
* progress events (``queued`` / ``started`` / ``interval`` / ``result``
  / ``error``) fan out to every subscriber queue of an in-flight key.

Cold work runs on a ``spawn`` process pool (``workers >= 1``) or an
in-process thread pool (``workers = 0``; also used for runs that
stream ``interval_refs`` telemetry, since a callback cannot cross a
process boundary -- the GIL makes a streamed run slower, not wrong).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro.api.cache import AnyResult, encode_result
from repro.api.request import RunRequest
from repro.api.scale import ExperimentScale
from repro.api.session import (
    PLAN_DISK,
    PLAN_MEMO,
    Session,
    _worker_pool,
    execute_request,
)
from repro.api.sweep import Sweep, SweepCell, SweepResult
from repro.obs.metrics import STORE_METRIC_HELP, store_snapshot
from repro.obs.trace import active_tracer
from repro.serve.metrics import ServiceMetrics

#: Default worker-process count for ``python -m repro serve``.
DEFAULT_WORKERS = 2

#: Threads for streamed (and ``workers=0``) execution.
STREAM_THREADS = 4


@dataclass(frozen=True)
class ServiceSettings:
    """Deployment knobs of one service instance."""

    #: result-store directory: a path, True (default location), or
    #: None for a memo-only (non-persistent) service.
    cache_dir: Union[None, bool, str, Path] = True
    #: cold-work process pool size; 0 runs everything on the in-process
    #: thread pool (fast startup -- the test suites use it).
    workers: int = DEFAULT_WORKERS
    #: reject request bodies larger than this many bytes (413).
    max_body_bytes: int = 8 * 1024 * 1024


@dataclass
class _Job:
    """One in-flight cold execution and its subscribers."""

    future: asyncio.Future
    queues: list[asyncio.Queue] = field(default_factory=list)


class SimulationService:
    """Single-flight, metered execution of request payloads."""

    def __init__(self, settings: Optional[ServiceSettings] = None) -> None:
        self.settings = settings or ServiceSettings()
        self.session = Session(cache_dir=self.settings.cache_dir)
        self.metrics = ServiceMetrics()
        self._inflight: dict[str, _Job] = {}
        # strong refs: a bare ensure_future() task may be collected
        # mid-flight (asyncio holds tasks weakly)
        self._tasks: set[asyncio.Task] = set()
        self._process_pool = None
        self._thread_pool: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    # pools
    # ------------------------------------------------------------------
    def _processes(self):
        if self._process_pool is None:
            self._process_pool = _worker_pool(self.settings.workers)
        return self._process_pool

    def _threads(self) -> ThreadPoolExecutor:
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=STREAM_THREADS, thread_name_prefix="repro-serve"
            )
        return self._thread_pool

    def _cold_pool(self):
        if self.settings.workers and self.settings.workers > 0:
            return self._processes()
        return self._threads()

    async def close(self) -> None:
        """Abandon in-flight work and release the pools.

        Deliberately abrupt (the restart-mid-run test depends on it):
        whatever did not finish simply is not in the store, and a
        restarted service re-executes it.  Completed entries were
        written atomically, so the store stays reusable.
        """
        for job in list(self._inflight.values()):
            if not job.future.done():
                job.future.cancel()
        self._inflight.clear()
        for task in list(self._tasks):
            task.cancel()
        self._tasks.clear()
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=False, cancel_futures=True)
            self._process_pool = None
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=False, cancel_futures=True)
            self._thread_pool = None

    # ------------------------------------------------------------------
    # admission (the single-flight core)
    # ------------------------------------------------------------------
    async def submit(
        self,
        request: Any,
        *,
        kind: str = "run",
        queue: Optional[asyncio.Queue] = None,
    ) -> tuple[str, AnyResult]:
        """Admit one run unit; return ``(source, result)``.

        ``kind`` selects the executor: ``"run"`` for trace requests,
        ``"fleet"`` for fleet requests.  ``queue``, when given,
        subscribes to the unit's progress events (terminated by a
        ``None`` sentinel) regardless of how the unit resolves.
        All bookkeeping before the first ``await`` runs atomically on
        the event loop, which is what makes classification race-free.
        """
        key = request.cache_key
        tracer = active_tracer()
        self.metrics.requests += 1
        job = self._inflight.get(key)
        if job is not None:
            self.metrics.coalesced += 1
            if tracer:
                tracer.instant(
                    "serve.request", "serve",
                    key=key, source="coalesced", kind=kind,
                )
            if queue is not None:
                queue.put_nowait(("queued", {"key": key, "coalesced": True}))
                job.queues.append(queue)
            return "coalesced", await asyncio.shield(job.future)

        plan = self.session.plan_batch([request])
        source = plan.sources[0]
        if source in (PLAN_MEMO, PLAN_DISK):
            if source == PLAN_MEMO:
                self.metrics.memo_hits += 1
            else:
                self.metrics.disk_hits += 1
            if tracer:
                tracer.instant(
                    "serve.request", "serve", key=key, source=source, kind=kind,
                )
            result = self.session.peek(key)
            if queue is not None:
                queue.put_nowait(
                    ("result", self.result_event(key, source, result))
                )
                queue.put_nowait(None)
            return source, result

        self.metrics.executed += 1
        if tracer:
            tracer.instant(
                "serve.request", "serve", key=key, source="executed", kind=kind,
            )
        job = _Job(future=asyncio.get_running_loop().create_future())
        # mark the exception as retrieved even when every awaiter has
        # disconnected, so abandoned failures do not log asyncio noise
        job.future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        if queue is not None:
            queue.put_nowait(("queued", {"key": key, "coalesced": False}))
            job.queues.append(queue)
        self._inflight[key] = job
        task = asyncio.ensure_future(self._execute(key, request, job, kind))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return "executed", await asyncio.shield(job.future)

    async def _execute(
        self, key: str, request: Any, job: _Job, kind: str
    ) -> None:
        loop = asyncio.get_running_loop()
        tracer = active_tracer()
        start = tracer.now() if tracer else 0.0
        self._emit(job, "started", {"key": key})
        try:
            if kind == "fleet":
                from repro.fleet.engine import execute_fleet

                result = await loop.run_in_executor(
                    self._cold_pool(), execute_fleet, request
                )
            elif self._streaming(request, job):
                # interval subscribers need the on_interval callback,
                # which cannot cross a process boundary: run in-process
                def run_streamed() -> AnyResult:
                    def on_interval(sample) -> None:
                        loop.call_soon_threadsafe(
                            self._emit, job, "interval", sample.to_dict()
                        )

                    return execute_request(request, on_interval)

                result = await loop.run_in_executor(
                    self._threads(), run_streamed
                )
            else:
                result = await loop.run_in_executor(
                    self._cold_pool(), execute_request, request
                )
        except Exception as error:
            self.metrics.errors += 1
            self._inflight.pop(key, None)
            if tracer:
                tracer.complete(
                    "serve.execute", "serve", start,
                    key=key, kind=kind, outcome="error",
                )
            if not job.future.done():
                job.future.set_exception(error)
            self._emit(
                job,
                "error",
                {"code": "execution-failed", "detail": str(error)},
            )
            self._finish(job)
            return
        self.session.store_result(key, result)
        self._inflight.pop(key, None)
        if tracer:
            tracer.complete(
                "serve.execute", "serve", start,
                key=key, kind=kind, outcome="ok",
            )
        if not job.future.done():
            job.future.set_result(result)
        self._emit(job, "result", self.result_event(key, "executed", result))
        self._finish(job)

    @staticmethod
    def _streaming(request: Any, job: _Job) -> bool:
        return bool(
            job.queues
            and isinstance(request, RunRequest)
            and request.interval_refs
        )

    @staticmethod
    def result_event(key: str, source: str, result: AnyResult) -> dict:
        """The terminal payload both ``/run`` and its SSE stream carry."""
        return {"key": key, "source": source, "result": encode_result(result)}

    def _emit(self, job: _Job, event: str, data: Any) -> None:
        for queue in job.queues:
            queue.put_nowait((event, data))

    def _finish(self, job: _Job) -> None:
        for queue in job.queues:
            queue.put_nowait(None)

    # ------------------------------------------------------------------
    # composite payloads
    # ------------------------------------------------------------------
    async def run_sweep(
        self, sweep: Sweep, scale: Optional[ExperimentScale] = None
    ) -> SweepResult:
        """Run a sweep grid through the single-flight path.

        Equivalent to :meth:`Sweep.run` on this service's session
        (bit-identical cells), but every grid point is its own admitted
        run unit, so distinct points fan out across the worker pool and
        shared baselines coalesce instead of re-simulating.
        """
        scale = scale or ExperimentScale()
        points = sweep.points()
        requests = [sweep.request_for(coords, scale) for coords in points]
        batch = list(requests)
        if sweep.baseline_overrides:
            batch += [
                sweep.request_for(
                    {**coords, **sweep.baseline_overrides}, scale
                )
                for coords in points
            ]
        outcomes = await asyncio.gather(
            *[self.submit(request) for request in batch]
        )
        results = [result for _, result in outcomes]
        cells = []
        for index, coords in enumerate(points):
            baseline = (
                results[len(points) + index]
                if sweep.baseline_overrides
                else None
            )
            cells.append(
                SweepCell(
                    coords=coords, result=results[index], baseline=baseline
                )
            )
        return SweepResult(sweep.axes, cells)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict[str, Any]:
        """The ``/stats`` payload: counters, gauges, session accounting."""
        in_flight = len(self._inflight)
        workers = self.settings.workers or STREAM_THREADS
        snapshot = self.metrics.snapshot(
            in_flight=in_flight,
            queue_depth=max(0, in_flight - workers),
        )
        stats = self.session.stats
        snapshot["session"] = {
            "requested": stats.requested,
            "deduplicated": stats.deduplicated,
            "memo_hits": stats.memo_hits,
            "disk_hits": stats.disk_hits,
            "executed": stats.executed,
            "simulations_avoided": stats.simulations_avoided,
        }
        store = self._store_snapshot()
        snapshot["store_entries"] = store["store_entries"]
        snapshot["store"] = store
        return snapshot

    def _store_snapshot(self) -> dict[str, int]:
        """Canonical store metrics (one name set with ``repro cache info``)."""
        if self.session.disk_cache is not None:
            return store_snapshot(
                self.session.disk_cache, self.session.checkpoint_store
            )
        return store_snapshot(self.session)

    def metrics_exposition(self) -> str:
        """The ``GET /metrics`` Prometheus text (format 0.0.4).

        Rendered from the same registry ``/stats`` reads, plus
        scrape-time gauges for the worker pool and the store.
        """
        in_flight = len(self._inflight)
        workers = self.settings.workers or STREAM_THREADS
        extra = {"repro_workers": ("cold worker pool size", float(workers))}
        for name, value in self._store_snapshot().items():
            extra[f"repro_{name}"] = (STORE_METRIC_HELP[name], float(value))
        return self.metrics.exposition(
            in_flight=in_flight,
            queue_depth=max(0, in_flight - workers),
            extra_gauges=extra,
        )


__all__ = [
    "DEFAULT_WORKERS",
    "ServiceSettings",
    "SimulationService",
]
