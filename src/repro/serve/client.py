"""A small asyncio client for the serve protocol.

One connection per request (the server speaks ``Connection: close``),
JSON bodies both ways, and an async iterator over server-sent events
for the streaming route.  Used by the load-test harness and the
protocol test suite; it is deliberately the *only* HTTP client in the
repo, so wire-format drift breaks tests instead of users.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Optional


class ServiceClient:
    """Talks to one :class:`~repro.serve.http.ReproServer`."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    async def request(
        self,
        method: str,
        path: str,
        payload: Optional[Any] = None,
    ) -> tuple[int, Any]:
        """One round trip; returns ``(status, decoded JSON body)``."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            await self._send(writer, method, path, payload)
            status, _, body = await self._read_response(reader)
            return status, json.loads(body) if body else None
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def stream(
        self, path: str, payload: Any
    ) -> AsyncIterator[tuple[str, Any]]:
        """POST and yield ``(event, data)`` SSE pairs until the server
        closes the stream."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            await self._send(writer, "POST", path, payload)
            status, headers, _ = await self._read_head(reader)
            if "text/event-stream" not in headers.get("content-type", ""):
                body = await reader.read()
                raise RuntimeError(
                    f"expected an event stream, got status {status}: "
                    f"{body.decode('utf-8', 'replace')[:200]}"
                )
            event_name = None
            data_lines: list[str] = []
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8").rstrip("\n")
                if not line:
                    if event_name is not None:
                        yield event_name, json.loads("\n".join(data_lines))
                    event_name, data_lines = None, []
                    continue
                if line.startswith("event:"):
                    event_name = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # ------------------------------------------------------------------
    # convenience verbs
    # ------------------------------------------------------------------
    async def get(self, path: str) -> tuple[int, Any]:
        """``GET path``."""
        return await self.request("GET", path)

    async def post(self, path: str, payload: Any) -> tuple[int, Any]:
        """``POST path`` with a JSON body."""
        return await self.request("POST", path, payload)

    # ------------------------------------------------------------------
    # wire plumbing
    # ------------------------------------------------------------------
    async def _send(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        payload: Optional[Any],
    ) -> None:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    @staticmethod
    async def _read_head(
        reader: asyncio.StreamReader,
    ) -> tuple[int, dict[str, str], None]:
        status_line = (await reader.readline()).decode("latin-1").strip()
        parts = status_line.split(None, 2)
        if len(parts) < 2:
            raise RuntimeError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers, None

    async def _read_response(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, str], bytes]:
        status, headers, _ = await self._read_head(reader)
        length = headers.get("content-length")
        if length is not None:
            body = await reader.readexactly(int(length))
        else:
            body = await reader.read()
        return status, headers, body


__all__ = ["ServiceClient"]
