"""Loud parsing for ``REPRO_*`` environment variables.

Every knob this repository reads from the environment goes through one
of these helpers (or an equally strict local parser, e.g.
``repro.api.scale.ExperimentScale.from_environment`` and the engine /
kernel resolvers in :mod:`repro.sim`).  The contract is uniform: an
unset or empty variable means the default, and a set-but-invalid value
raises ``ValueError`` naming the variable, the offending value, and
what would have been accepted.  A typo must never silently select a
fallback -- ``REPRO_SIM_ENGINE=fsat`` running the default engine for an
entire sweep is strictly worse than an immediate crash.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence


def env_int(
    name: str,
    default: Optional[int],
    *,
    minimum: Optional[int] = None,
) -> Optional[int]:
    """Parse ``name`` as an integer, loudly."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid {name}={raw!r}; expected an integer"
            + (f" >= {minimum}" if minimum is not None else "")
        ) from None
    if minimum is not None and value < minimum:
        raise ValueError(
            f"invalid {name}={raw!r}; expected an integer >= {minimum}"
        )
    return value


def env_float(
    name: str,
    default: Optional[float],
    *,
    positive: bool = False,
) -> Optional[float]:
    """Parse ``name`` as a float, loudly."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"invalid {name}={raw!r}; expected a number"
        ) from None
    if positive and not value > 0:
        raise ValueError(
            f"invalid {name}={raw!r}; expected a number > 0"
        )
    return value


def env_choice(name: str, default: str, choices: Sequence[str]) -> str:
    """Parse ``name`` as one of ``choices``, loudly."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    if raw not in choices:
        known = ", ".join(choices)
        raise ValueError(
            f"invalid {name}={raw!r}; valid values: {known}"
        )
    return raw


def env_path(
    name: str,
    default: Optional[str],
    *,
    suffixes: Optional[Sequence[str]] = None,
) -> Optional[str]:
    """Parse ``name`` as a filesystem path, loudly.

    ``suffixes`` guards against boolean-style typos: a variable meant to
    hold a file path (``REPRO_TRACE=out.jsonl``) set to ``1`` or ``on``
    must crash, not create a file literally named ``1``.
    """
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    if suffixes and not any(raw.endswith(suffix) for suffix in suffixes):
        accepted = ", ".join(suffixes)
        raise ValueError(
            f"invalid {name}={raw!r}; expected a file path ending in one of: {accepted}"
        )
    return raw
