"""HATRIC reproduction: Hardware Translation Coherence for Virtualized Systems.

This package is a trace-driven, functional reproduction of the system
described in "Hardware Translation Coherence for Virtualized Systems"
(Yan, Cox, Vesely, Bhattacharjee - ISCA 2017).  It models a virtualized
multi-core system with:

* two-dimensional (guest + nested) x86-64-style page tables,
* per-CPU TLBs, MMU (paging-structure) caches and nested TLBs,
* a private L1/L2 + shared LLC cache hierarchy kept coherent by a
  dual-grain directory-based MESI protocol,
* a two-tier (die-stacked + off-chip DRAM) memory system managed by a
  KVM- or Xen-like hypervisor with pluggable paging policies, and
* pluggable *translation coherence* protocols: the software shootdown
  baseline, UNITD++, an ideal zero-cost protocol, and HATRIC itself.

The top-level namespace re-exports the pieces most users need; the
experiments that regenerate each figure of the paper live under
:mod:`repro.experiments`, the declarative sweep/session engine under
:mod:`repro.api`, and ``python -m repro`` runs either from the command
line.
"""

from repro.api import (
    ExperimentScale,
    ResultCache,
    RunRequest,
    Session,
    Sweep,
    SweepResult,
    default_session,
)
from repro.fleet import FleetRequest, FleetResult, FleetSpec, HostSpec
from repro.sim.config import (
    CacheConfig,
    CoherenceDirectoryConfig,
    MemoryConfig,
    PagingConfig,
    SystemConfig,
    TranslationConfig,
)
from repro.sim.costs import CostModel
from repro.sim.engine import ENGINE_FAST, ENGINE_REFERENCE, ENGINES
from repro.sim.simulator import SimulationResult, Simulator
from repro.core.protocol import (
    PROTOCOLS,
    TranslationCoherenceProtocol,
    make_protocol,
)
from repro.workloads import (
    WORKLOADS,
    ScenarioSpec,
    make_workload,
    scenario_spec,
)

__version__ = "1.3.0"

__all__ = [
    "CacheConfig",
    "CoherenceDirectoryConfig",
    "CostModel",
    "ENGINE_FAST",
    "ENGINE_REFERENCE",
    "ENGINES",
    "ExperimentScale",
    "FleetRequest",
    "FleetResult",
    "FleetSpec",
    "HostSpec",
    "MemoryConfig",
    "PagingConfig",
    "PROTOCOLS",
    "ResultCache",
    "RunRequest",
    "ScenarioSpec",
    "Session",
    "SimulationResult",
    "Simulator",
    "Sweep",
    "SweepResult",
    "SystemConfig",
    "TranslationCoherenceProtocol",
    "TranslationConfig",
    "WORKLOADS",
    "default_session",
    "make_workload",
    "make_protocol",
    "scenario_spec",
    "__version__",
]
