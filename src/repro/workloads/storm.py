"""Migration-storm trace segments: dirty-logging write sweeps.

Live migration's pre-copy phase walks the guest's memory linearly,
logging and re-copying dirty pages; the paper's ``syn:live-migration``
scenario models the *steady-state* version of that storm.  The fleet
layer needs the same behaviour as a composable **segment**: a short,
forced-write linear sweep over one VM's own footprint, spliced into the
VM's reference streams at each migration -- on the source while the
dirty log drains, and on the destination as the moved guest re-touches
its (now cold) pages.

Segments are pure functions of their arguments, so fleet traces stay
bit-reproducible across processes and engines.
"""

from __future__ import annotations

import numpy as np

from repro.translation.address import PAGE_SHIFT

#: Stride between consecutive sweep lanes, in pages.  Prime and larger
#: than a typical per-stream sweep, so the vCPUs of one guest walk
#: interleaved but distinct regions instead of hammering the same page.
LANE_STRIDE_PAGES = 257


def stream_page_span(streams: list[np.ndarray]) -> tuple[int, int]:
    """The (base_page, footprint_pages) covered by a VM's streams.

    Derived from the trace itself rather than the workload spec, so the
    storm sweeps exactly the pages the guest actually touches no matter
    which generator (suite, ``mixNN``, ``syn:``) produced them.
    """
    lo = min(int(stream.min()) for stream in streams) >> PAGE_SHIFT
    hi = max(int(stream.max()) for stream in streams) >> PAGE_SHIFT
    return lo, hi - lo + 1


def storm_segment(
    base_page: int,
    footprint_pages: int,
    length: int,
    sweep: int,
    lane: int,
) -> tuple[np.ndarray, np.ndarray]:
    """One stream's slice of one migration storm.

    Args:
        base_page: first guest virtual page of the VM's footprint.
        footprint_pages: pages the sweep wraps around within.
        length: references in the segment.
        sweep: which migration this is for the VM (successive storms
            resume where the previous sweep left off, like successive
            pre-copy rounds).
        lane: the stream's index within the VM (lanes are offset so a
            multi-vCPU guest's threads sweep disjoint regions).

    Returns ``(addresses, writes)``: int64 guest virtual addresses and
    an all-True write-flag array (dirty logging is write traffic).
    """
    if footprint_pages <= 0:
        raise ValueError("footprint_pages must be positive")
    if length <= 0:
        raise ValueError("length must be positive")
    start = (sweep * length + lane * LANE_STRIDE_PAGES) % footprint_pages
    pages = (start + np.arange(length, dtype=np.int64)) % footprint_pages
    addresses = (base_page + pages) << PAGE_SHIFT
    writes = np.ones(length, dtype=bool)
    return addresses, writes


__all__ = ["LANE_STRIDE_PAGES", "storm_segment", "stream_page_span"]
