"""The paper's workload suite, as synthetic specs.

Two groups, following Section 5.3:

* **Big-memory workloads** that benefit from die-stacked DRAM bandwidth
  but whose footprints exceed its capacity, so the hypervisor pages
  between the tiers: canneal and facesim (PARSEC), data caching and
  tunkrank (CloudSuite), and graph500.
* **Small-footprint workloads** whose data fits comfortably within the
  die-stacked tier, used to measure HATRIC's overheads when paging is
  rare (Figure 11): the remaining PARSEC applications and a selection of
  SPEC-like applications.

The parameters are calibrated against the behaviours the paper reports,
not against the real applications: e.g. data caching and tunkrank have
poor locality and high migration churn (they *lose* performance from
die-stacking under software coherence in Figure 2), facesim streams with
strong reuse, graph500's hot set moves abruptly between BFS levels.
"""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadSpec

#: Default total references for the big paper workloads.  Chosen so that
#: a 16-vCPU run stays in the seconds range in pure-Python simulation
#: while leaving thousands of references per phase.
_BIG_REFS = 160_000
_SMALL_REFS = 96_000


PAPER_WORKLOAD_SPECS: dict[str, WorkloadSpec] = {
    "canneal": WorkloadSpec(
        name="canneal",
        description="PARSEC canneal: large random working set, moderate churn",
        footprint_pages=3200,
        hot_pages=1880,
        cold_access_probability=0.0015,
        drift_pages=45,
        phase_length_refs=2000,
        page_reuse=4,
        sequential_fraction=0.20,
        write_fraction=0.30,
        refs_total=_BIG_REFS,
    ),
    "data_caching": WorkloadSpec(
        name="data_caching",
        description="CloudSuite data caching: huge footprint, poor locality",
        footprint_pages=4200,
        hot_pages=1830,
        cold_access_probability=0.002,
        drift_pages=75,
        phase_length_refs=1500,
        page_reuse=2,
        sequential_fraction=0.05,
        write_fraction=0.10,
        refs_total=_BIG_REFS,
    ),
    "graph500": WorkloadSpec(
        name="graph500",
        description="graph500 BFS: frontier-driven phases, bursty migrations",
        footprint_pages=3600,
        hot_pages=1860,
        cold_access_probability=0.001,
        drift_pages=60,
        phase_length_refs=2200,
        page_reuse=3,
        sequential_fraction=0.10,
        write_fraction=0.20,
        refs_total=_BIG_REFS,
    ),
    "tunkrank": WorkloadSpec(
        name="tunkrank",
        description="CloudSuite tunkrank: graph analytics, low reuse, high churn",
        footprint_pages=3900,
        hot_pages=1840,
        cold_access_probability=0.0016,
        drift_pages=70,
        phase_length_refs=1800,
        page_reuse=2,
        sequential_fraction=0.05,
        write_fraction=0.25,
        refs_total=_BIG_REFS,
    ),
    "facesim": WorkloadSpec(
        name="facesim",
        description="PARSEC facesim: streaming with strong reuse",
        footprint_pages=2800,
        hot_pages=1880,
        cold_access_probability=0.001,
        drift_pages=45,
        phase_length_refs=2200,
        page_reuse=6,
        sequential_fraction=0.50,
        write_fraction=0.40,
        refs_total=_BIG_REFS,
    ),
}


SMALL_WORKLOAD_SPECS: dict[str, WorkloadSpec] = {
    "blackscholes": WorkloadSpec(
        name="blackscholes",
        description="PARSEC blackscholes: small streaming footprint",
        footprint_pages=900,
        hot_pages=500,
        cold_access_probability=0.0004,
        drift_pages=30,
        phase_length_refs=4000,
        page_reuse=6,
        sequential_fraction=0.60,
        write_fraction=0.20,
        refs_total=_SMALL_REFS,
    ),
    "swaptions": WorkloadSpec(
        name="swaptions",
        description="PARSEC swaptions: tiny hot set, compute bound",
        footprint_pages=600,
        hot_pages=300,
        cold_access_probability=0.0003,
        drift_pages=20,
        phase_length_refs=5000,
        page_reuse=8,
        sequential_fraction=0.30,
        write_fraction=0.25,
        refs_total=_SMALL_REFS,
    ),
    "fluidanimate": WorkloadSpec(
        name="fluidanimate",
        description="PARSEC fluidanimate: grid sweeps, moderate footprint",
        footprint_pages=1400,
        hot_pages=700,
        cold_access_probability=0.0006,
        drift_pages=60,
        phase_length_refs=3500,
        page_reuse=5,
        sequential_fraction=0.55,
        write_fraction=0.35,
        refs_total=_SMALL_REFS,
    ),
    "streamcluster": WorkloadSpec(
        name="streamcluster",
        description="PARSEC streamcluster: repeated scans of a medium set",
        footprint_pages=1600,
        hot_pages=900,
        cold_access_probability=0.0007,
        drift_pages=70,
        phase_length_refs=3000,
        page_reuse=4,
        sequential_fraction=0.65,
        write_fraction=0.15,
        refs_total=_SMALL_REFS,
    ),
    "bodytrack": WorkloadSpec(
        name="bodytrack",
        description="PARSEC bodytrack: small working set, bursty phases",
        footprint_pages=1100,
        hot_pages=450,
        cold_access_probability=0.0005,
        drift_pages=50,
        phase_length_refs=2500,
        page_reuse=5,
        sequential_fraction=0.25,
        write_fraction=0.30,
        refs_total=_SMALL_REFS,
    ),
}


def make_paper_workload(name: str) -> Workload:
    """Return one of the five big-memory paper workloads by name."""
    try:
        return Workload(PAPER_WORKLOAD_SPECS[name])
    except KeyError:
        known = ", ".join(sorted(PAPER_WORKLOAD_SPECS))
        raise ValueError(f"unknown paper workload {name!r}; known: {known}")


def make_small_workload(name: str) -> Workload:
    """Return one of the small-footprint workloads by name."""
    try:
        return Workload(SMALL_WORKLOAD_SPECS[name])
    except KeyError:
        known = ", ".join(sorted(SMALL_WORKLOAD_SPECS))
        raise ValueError(f"unknown small workload {name!r}; known: {known}")
