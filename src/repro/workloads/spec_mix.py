"""SPEC-like applications and multiprogrammed mixes (Figure 10).

The paper builds 80 multiprogrammed combinations of 16 SPEC CPU
applications each, runs every mix inside one 16-vCPU Linux VM on KVM,
and reports weighted runtime and slowest-application runtime.  Because
the hypervisor only tracks CPU affinity per VM, a page migration caused
by one application flushes the translation structures -- and VM-exits
the vCPUs -- of all fifteen others under software coherence.

This module provides sixteen single-threaded application templates with
varied footprints and locality, and a deterministic mix generator.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.workloads.base import MultiprogrammedWorkload, WorkloadSpec

#: References per application in a mix (kept small: 80 mixes are run).
_MIX_REFS_PER_APP = 6_000


#: Footprints are scaled so that the *aggregate* hot working set of a
#: sixteen-application mix stays just below die-stacked DRAM capacity:
#: migrations are then driven by drift and cold accesses (as in the
#: paper's steady state) rather than by permanent thrashing.
_MIX_FOOTPRINT_SCALE = 0.62
_MIX_COLD_SCALE = 0.6


def _spec_app(
    name: str,
    footprint: int,
    hot: int,
    cold: float,
    reuse: int,
    seq: float,
    writes: float,
    drift: int,
) -> WorkloadSpec:
    """Helper building a single-threaded SPEC-like application spec."""
    return WorkloadSpec(
        name=name,
        description=f"SPEC-like application template ({name})",
        footprint_pages=max(32, int(footprint * _MIX_FOOTPRINT_SCALE)),
        hot_pages=max(16, int(hot * _MIX_FOOTPRINT_SCALE)),
        cold_access_probability=cold * _MIX_COLD_SCALE,
        drift_pages=max(4, int(drift * _MIX_FOOTPRINT_SCALE)),
        phase_length_refs=1500,
        page_reuse=reuse,
        sequential_fraction=seq,
        write_fraction=writes,
        refs_total=_MIX_REFS_PER_APP,
    )


#: Sixteen application templates spanning memory-hungry, streaming and
#: cache-friendly behaviours (footprints in 4 KB pages).
SPEC_APP_SPECS: dict[str, WorkloadSpec] = {
    "mcf": _spec_app("mcf", 520, 260, 0.004, 2, 0.05, 0.25, 60),
    "omnetpp": _spec_app("omnetpp", 420, 200, 0.003, 2, 0.10, 0.30, 50),
    "xalancbmk": _spec_app("xalancbmk", 380, 180, 0.003, 3, 0.15, 0.20, 45),
    "gcc": _spec_app("gcc", 340, 160, 0.002, 3, 0.20, 0.30, 40),
    "milc": _spec_app("milc", 480, 240, 0.0035, 2, 0.40, 0.30, 55),
    "lbm": _spec_app("lbm", 500, 260, 0.003, 3, 0.70, 0.45, 50),
    "bwaves": _spec_app("bwaves", 460, 240, 0.0025, 3, 0.65, 0.35, 45),
    "soplex": _spec_app("soplex", 400, 190, 0.003, 2, 0.25, 0.25, 45),
    "astar": _spec_app("astar", 300, 140, 0.002, 3, 0.15, 0.25, 35),
    "libquantum": _spec_app("libquantum", 360, 200, 0.002, 4, 0.80, 0.20, 30),
    "namd": _spec_app("namd", 180, 90, 0.0008, 6, 0.30, 0.25, 15),
    "povray": _spec_app("povray", 120, 60, 0.0005, 8, 0.25, 0.20, 10),
    "hmmer": _spec_app("hmmer", 150, 80, 0.0006, 6, 0.50, 0.25, 12),
    "sjeng": _spec_app("sjeng", 170, 80, 0.0008, 5, 0.15, 0.30, 15),
    "gobmk": _spec_app("gobmk", 200, 90, 0.001, 5, 0.15, 0.30, 18),
    "perlbench": _spec_app("perlbench", 220, 110, 0.0012, 4, 0.20, 0.30, 20),
}


#: Number of mixes the paper evaluates.
NUM_MIXES = 80
#: Applications per mix (one per vCPU of the 16-vCPU VM).
APPS_PER_MIX = 16


def make_spec_mix(
    index: int, apps_per_mix: int = APPS_PER_MIX, seed: int = 2017
) -> MultiprogrammedWorkload:
    """Build multiprogrammed mix number ``index`` (0-based, deterministic).

    Applications are drawn with replacement from the sixteen templates
    so mixes range from memory-hungry to cache-friendly compositions,
    like the paper's 80 SPEC combinations.
    """
    if index < 0:
        raise ValueError("mix index must be non-negative")
    rng = np.random.default_rng(seed + index)
    names = list(SPEC_APP_SPECS)
    chosen = rng.choice(names, size=apps_per_mix, replace=True)
    specs: list[WorkloadSpec] = []
    for position, app_name in enumerate(chosen):
        base = SPEC_APP_SPECS[str(app_name)]
        # Give each instance a unique name so per-application results can
        # be reported even when the same template appears twice.
        specs.append(
            WorkloadSpec(
                name=f"{app_name}.{position}",
                description=base.description,
                footprint_pages=base.footprint_pages,
                hot_pages=base.hot_pages,
                cold_access_probability=base.cold_access_probability,
                drift_pages=base.drift_pages,
                phase_length_refs=base.phase_length_refs,
                page_reuse=base.page_reuse,
                sequential_fraction=base.sequential_fraction,
                write_fraction=base.write_fraction,
                refs_total=base.refs_total,
            )
        )
    return MultiprogrammedWorkload(name=f"mix{index:02d}", specs=specs)


def all_mixes(
    count: int = NUM_MIXES, apps_per_mix: int = APPS_PER_MIX, seed: int = 2017
) -> list[MultiprogrammedWorkload]:
    """Return the full list of multiprogrammed mixes."""
    return [make_spec_mix(i, apps_per_mix=apps_per_mix, seed=seed) for i in range(count)]


def spec_app_names() -> Sequence[str]:
    """Names of the sixteen SPEC-like templates."""
    return tuple(SPEC_APP_SPECS)
