"""Multi-VM workload composition: consolidated guests as one trace.

The paper's headline setting is a *consolidated* virtualized machine:
several guests share the physical CPUs and the die-stacked DRAM, and
hypervisor-induced remaps (migration, ballooning, compaction) aimed at
one guest interfere with the others.  This module composes any existing
workloads -- suite names, ``mixNN`` mixes, ``syn:`` scenarios -- into a
single :class:`~repro.workloads.base.WorkloadTrace` spanning N guest
VMs, described by a :class:`~repro.sim.config.VmTopology`.

Canonical names (``multi:``) make topologies flow through
:class:`~repro.api.request.RunRequest` / ``Session`` / ``Sweep`` with
stable cache keys::

    multi:<guest>[+<guest>...][+share=shared]
    guest := <workload>[@<vcpus>[:<mem_share>]]

Examples::

    multi:canneal@4+facesim@4                 # two pinned guests
    multi:syn:migration-daemon/seed=7@4+syn:migration-daemon/seed=8@4+share=shared
    multi:data_caching@4:0.25+graph500@4:0.75 # static memory partitioning

``@vcpus`` defaults to 1; ``:mem_share`` caps the guest's resident
die-stacked pages (see :class:`~repro.sim.config.GuestConfig`); the
trailing ``share=`` segment selects the vCPU placement model (default
``pinned``).  Workload names never contain ``+`` or ``@``, so the
grammar is unambiguous even for ``syn:`` names full of ``/`` and ``=``.

Per-guest traces are generated with independently mixed seeds, so two
guests running the *same* workload name still execute distinct (but
deterministic) reference streams -- the standard consolidation shape of
"N copies of the tenant workload".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.config import (
    GuestConfig,
    VM_SHARING_PINNED,
    VM_SHARING_SHARED,
    VmTopology,
)
from repro.workloads.base import WorkloadTrace

#: Prefix identifying multi-VM composed workload names.
MULTI_PREFIX = "multi:"


def parse_topology_name(name: str) -> VmTopology:
    """Parse a canonical ``multi:...`` name back into a :class:`VmTopology`."""
    if not name.startswith(MULTI_PREFIX):
        raise ValueError(f"topology names start with {MULTI_PREFIX!r}: {name!r}")
    body = name[len(MULTI_PREFIX):]
    if not body:
        raise ValueError("empty multi-VM workload name")
    segments = body.split("+")
    sharing = VM_SHARING_PINNED
    if segments and segments[-1].startswith("share="):
        sharing = segments.pop()[len("share="):]
    guests = []
    for segment in segments:
        if not segment:
            raise ValueError(f"empty guest segment in {name!r}")
        workload, sep, suffix = segment.rpartition("@")
        if not sep:
            guests.append(GuestConfig(workload=segment))
            continue
        vcpus_part, sep, share_part = suffix.partition(":")
        try:
            vcpus = int(vcpus_part)
            mem_share = float(share_part) if sep else None
        except ValueError:
            raise ValueError(
                f"bad guest suffix {suffix!r} in {name!r}; expected "
                f"@vcpus or @vcpus:mem_share"
            ) from None
        guests.append(
            GuestConfig(workload=workload, vcpus=vcpus, mem_share=mem_share)
        )
    return VmTopology(guests=tuple(guests), sharing=sharing)


class MultiVmWorkload:
    """A consolidated multi-guest workload, duck-compatible with the rest.

    Satisfies everything :class:`~repro.sim.simulator.Simulator` and
    :class:`~repro.api.scale.ExperimentScale` expect from a workload:
    ``name``, ``spec.refs_total``, ``multiprogrammed`` and
    ``generate(num_vcpus, seed, refs_total)``.
    """

    multiprogrammed = True

    def __init__(self, topology: VmTopology) -> None:
        self.topology = topology
        # Resolved lazily (and only once) so that constructing the
        # workload object never imports the registry at module load.
        self._guest_workloads = None

    @property
    def name(self) -> str:
        """Canonical ``multi:`` name."""
        return self.topology.name

    @property
    def spec(self):
        """Aggregate spec view: only ``refs_total`` is meaningful."""
        return _AggregateSpec(self._default_refs())

    def _resolve_guests(self):
        if self._guest_workloads is None:
            from repro.workloads import make_workload

            self._guest_workloads = [
                make_workload(guest.workload) for guest in self.topology.guests
            ]
        return self._guest_workloads

    def _default_refs(self) -> int:
        total = 0
        for workload in self._resolve_guests():
            specs = getattr(workload, "specs", None)
            if specs is not None:  # multiprogrammed mix guest
                total += sum(spec.refs_total for spec in specs)
            else:
                total += workload.spec.refs_total
        return total

    # ------------------------------------------------------------------
    def generate(
        self,
        num_vcpus: Optional[int] = None,
        seed: int = 42,
        refs_total: Optional[int] = None,
    ) -> WorkloadTrace:
        """Compose per-guest traces into one multi-VM trace.

        ``num_vcpus`` is the machine's physical CPU count.  Under
        ``pinned`` sharing the guests receive consecutive dedicated
        pCPU blocks (their total vCPU count must fit); under ``shared``
        sharing guest ``i``'s vCPU ``j`` runs on pCPU ``j % num_vcpus``,
        so guests overlap and time-share the machine.

        ``refs_total`` is split across guests proportionally to their
        vCPU counts; ``None`` lets each guest use its own default.
        Generation is fully deterministic given (topology, seed,
        num_vcpus, refs_total) and independent of generation order.
        """
        topology = self.topology
        num_pcpus = num_vcpus if num_vcpus is not None else topology.total_vcpus
        if num_pcpus <= 0:
            raise ValueError("num_vcpus must be positive")
        pcpu_blocks = self._placement(num_pcpus)

        guest_workloads = self._resolve_guests()
        total_vcpus = topology.total_vcpus
        entropy = seed % 2**32

        streams: list[np.ndarray] = []
        writes: list[np.ndarray] = []
        process_of_vcpu: list[int] = []
        vm_of_vcpu: list[int] = []
        pcpu_of_vcpu: list[int] = []
        app_names: list[str] = []
        process_base = 0
        for index, (guest, workload) in enumerate(
            zip(topology.guests, guest_workloads)
        ):
            guest_refs = None
            if refs_total is not None:
                guest_refs = max(1, refs_total * guest.vcpus // total_vcpus)
            guest_seed = int(
                np.random.default_rng((entropy, 311, index)).integers(
                    0, 2**63 - 1
                )
            )
            trace = workload.generate(
                num_vcpus=guest.vcpus, seed=guest_seed, refs_total=guest_refs
            )
            if trace.num_vcpus > guest.vcpus:
                raise ValueError(
                    f"guest {guest.workload!r} generated {trace.num_vcpus} "
                    f"streams for {guest.vcpus} vCPUs"
                )
            for vcpu, stream in enumerate(trace.streams):
                streams.append(stream)
                writes.append(trace.writes[vcpu])
                process_of_vcpu.append(
                    process_base + trace.process_of_vcpu[vcpu]
                )
                vm_of_vcpu.append(index)
                pcpu_of_vcpu.append(pcpu_blocks[index][vcpu])
                if trace.app_names is not None:
                    app_names.append(f"vm{index}.{trace.app_names[vcpu]}")
                else:
                    app_names.append(f"vm{index}.{trace.name}")
            process_base += trace.num_processes
        return WorkloadTrace(
            name=topology.name,
            streams=streams,
            writes=writes,
            process_of_vcpu=process_of_vcpu,
            num_processes=process_base,
            app_names=app_names,
            vm_of_vcpu=vm_of_vcpu,
            pcpu_of_vcpu=pcpu_of_vcpu,
            vm_names=[
                f"vm{index}:{guest.workload}"
                for index, guest in enumerate(topology.guests)
            ],
            topology=topology,
        )

    def _placement(self, num_pcpus: int) -> list[list[int]]:
        """Per-guest pCPU assignment lists, one pCPU per guest vCPU."""
        topology = self.topology
        if topology.sharing == VM_SHARING_SHARED:
            return [
                [vcpu % num_pcpus for vcpu in range(guest.vcpus)]
                for guest in topology.guests
            ]
        if topology.total_vcpus > num_pcpus:
            raise ValueError(
                f"pinned topology needs {topology.total_vcpus} pCPUs but "
                f"the machine has {num_pcpus}; use sharing='shared' to "
                f"oversubscribe"
            )
        blocks = []
        offset = 0
        for guest in topology.guests:
            blocks.append(list(range(offset, offset + guest.vcpus)))
            offset += guest.vcpus
        return blocks


class _AggregateSpec:
    """Minimal spec facade carrying the composed default trace length."""

    __slots__ = ("refs_total",)

    def __init__(self, refs_total: int) -> None:
        self.refs_total = refs_total


def make_multi_workload(name_or_topology: str | VmTopology) -> MultiVmWorkload:
    """Build a :class:`MultiVmWorkload` from a ``multi:`` name or topology."""
    if isinstance(name_or_topology, VmTopology):
        return MultiVmWorkload(name_or_topology)
    return MultiVmWorkload(parse_topology_name(name_or_topology))


__all__ = [
    "MULTI_PREFIX",
    "MultiVmWorkload",
    "make_multi_workload",
    "parse_topology_name",
]
