"""Synthetic workload trace generation.

The paper drives its simulator with Pin-collected instruction traces of
real workloads (50 billion references, months of collection time).
Those traces are not available, so this module substitutes parametric
synthetic generators.  Translation coherence cost is governed by a small
number of trace properties, which the generators control directly:

* the data footprint relative to die-stacked DRAM capacity (how much
  paging happens at all);
* the size and drift of the hot working set (the steady-state migration
  rate);
* the probability of touching the cold tail of the footprint (demand
  migrations off the critical path of phase changes);
* page-level reuse and sequentiality (TLB/MMU-cache hit rates, i.e. how
  much a full flush hurts);
* the read/write mix and the number of threads sharing an address space
  (how widely translations are shared across CPUs).

Each workload in :mod:`repro.workloads.suite` picks these parameters to
mimic the qualitative behaviour the paper reports for the corresponding
application.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.translation.address import PAGE_SHIFT, PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.config import VmTopology


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters describing one application's memory behaviour.

    Attributes:
        name: workload identifier.
        description: one-line description of what it mimics.
        footprint_pages: total distinct data pages the application touches.
        hot_pages: size of the hot working-set window within the footprint.
        cold_access_probability: probability that a page visit targets the
            whole footprint uniformly instead of the hot window (these are
            the accesses that cause steady-state demand migrations).
        drift_pages: how far the hot window slides at each phase boundary.
        phase_length_refs: per-thread references per phase.
        page_reuse: consecutive references issued to a page per visit.
        sequential_fraction: probability that the next page visit is the
            following page (streaming behaviour).
        write_fraction: fraction of references that are writes.
        refs_total: total references across all threads for a default run.
        base_page: first guest virtual page of the footprint.
    """

    name: str
    description: str
    footprint_pages: int
    hot_pages: int
    cold_access_probability: float
    drift_pages: int
    phase_length_refs: int
    page_reuse: int
    sequential_fraction: float
    write_fraction: float
    refs_total: int
    base_page: int = 0x40000

    def __post_init__(self) -> None:
        if self.footprint_pages <= 0:
            raise ValueError("footprint_pages must be positive")
        if not 0 < self.hot_pages <= self.footprint_pages:
            raise ValueError("hot_pages must be in 1..footprint_pages")
        if not 0.0 <= self.cold_access_probability <= 1.0:
            raise ValueError("cold_access_probability must be a probability")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be a probability")
        if self.page_reuse <= 0:
            raise ValueError("page_reuse must be positive")

    def scaled_refs(self, factor: float) -> "WorkloadSpec":
        """Return a copy with the total reference count scaled."""
        return replace(self, refs_total=max(1, int(self.refs_total * factor)))


@dataclass
class WorkloadTrace:
    """Generated per-vCPU reference streams ready to simulate.

    Attributes:
        name: workload name.
        streams: per-vCPU arrays of guest virtual addresses.
        writes: per-vCPU boolean arrays marking write references.
        process_of_vcpu: index of the guest process each vCPU belongs to
            (all zeros for a multithreaded workload; one process per vCPU
            for multiprogrammed mixes).
        num_processes: number of distinct guest processes.
        app_names: per-vCPU application names for multiprogrammed
            traces (None for multithreaded workloads, where every vCPU
            runs the same application).
        vm_of_vcpu: guest VM index of each vCPU stream (None = the
            legacy single-VM shape, where every stream belongs to one
            implicit VM).
        pcpu_of_vcpu: physical CPU each stream is pinned to (None =
            identity, stream ``i`` on pCPU ``i``).  Under consolidated
            sharing two streams may map to the same pCPU; the simulator
            time-multiplexes them in its round-robin chunks.
        vm_names: per-VM display names (aligned with VM indices).
        topology: the :class:`~repro.sim.config.VmTopology` the trace
            was composed from, when it came from a ``multi:`` workload.
    """

    name: str
    streams: list[np.ndarray]
    writes: list[np.ndarray]
    process_of_vcpu: list[int]
    num_processes: int
    app_names: Optional[list[str]] = None
    vm_of_vcpu: Optional[list[int]] = None
    pcpu_of_vcpu: Optional[list[int]] = None
    vm_names: Optional[list[str]] = None
    topology: Optional["VmTopology"] = None

    @property
    def num_vcpus(self) -> int:
        """Number of vCPU streams in the trace."""
        return len(self.streams)

    @property
    def num_vms(self) -> int:
        """Number of guest VMs the trace spans (1 for legacy traces)."""
        if self.vm_of_vcpu is None:
            return 1
        return max(self.vm_of_vcpu) + 1

    @property
    def total_references(self) -> int:
        """Total references across all streams."""
        return sum(len(s) for s in self.streams)

    def footprint_pages(self) -> int:
        """Number of distinct guest virtual pages across the whole trace."""
        pages: set[tuple[int, int]] = set()
        for process, stream in zip(self.process_of_vcpu, self.streams):
            pages.update(
                (process, int(page)) for page in np.unique(stream >> PAGE_SHIFT)
            )
        return len(pages)

    def prefix(self, refs_total: int, name: Optional[str] = None) -> "WorkloadTrace":
        """Return this trace truncated to ``refs_total`` references.

        Every stream is capped at ``max(1, refs_total // num_vcpus)``
        references (mirroring how the generators split a total across
        threads); streams shorter than the cap pass through whole.  The
        result shares the underlying arrays (numpy views), so prefixes
        of one trace are *literal* prefixes of each other -- the
        prefix-stability invariant checkpoint reuse depends on (see
        ``src/repro/workloads/README.md``).
        """
        if refs_total <= 0:
            raise ValueError("refs_total must be positive")
        cap = max(1, refs_total // max(1, self.num_vcpus))
        return WorkloadTrace(
            name=name if name is not None else self.name,
            streams=[stream[:cap] for stream in self.streams],
            writes=[writes[:cap] for writes in self.writes],
            process_of_vcpu=list(self.process_of_vcpu),
            num_processes=self.num_processes,
            app_names=list(self.app_names) if self.app_names else None,
            vm_of_vcpu=list(self.vm_of_vcpu) if self.vm_of_vcpu else None,
            pcpu_of_vcpu=list(self.pcpu_of_vcpu) if self.pcpu_of_vcpu else None,
            vm_names=list(self.vm_names) if self.vm_names else None,
            topology=self.topology,
        )


def generate_stream(
    spec: WorkloadSpec,
    num_refs: int,
    rng: np.random.Generator,
    phase_start: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate one thread's reference stream for ``spec``.

    ``phase_start`` selects where in the workload's phase schedule the
    thread begins.  Threads of the same process should share it so their
    hot windows coincide (they work on the same data), which is what
    keeps the aggregate resident set close to ``hot_pages`` instead of
    ``num_threads * hot_pages``.

    Returns ``(addresses, writes)`` arrays of length ``num_refs``.
    """
    if num_refs <= 0:
        return (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=bool))

    visits_needed = max(1, num_refs // spec.page_reuse + 1)
    visits_per_phase = max(1, spec.phase_length_refs // spec.page_reuse)
    pages = np.empty(visits_needed, dtype=np.int64)

    hot_span = max(1, spec.footprint_pages - spec.hot_pages)
    produced = 0
    phase_index = phase_start
    while produced < visits_needed:
        count = min(visits_per_phase, visits_needed - produced)
        hot_start = (phase_index * spec.drift_pages) % hot_span
        is_cold = rng.random(count) < spec.cold_access_probability
        hot_choice = hot_start + rng.integers(0, spec.hot_pages, count)
        cold_choice = rng.integers(0, spec.footprint_pages, count)
        chunk = np.where(is_cold, cold_choice, hot_choice)
        if spec.sequential_fraction > 0.0:
            sequential = rng.random(count) < spec.sequential_fraction
            # A sequential visit follows its predecessor within the
            # chunk: for a run of sequential visits anchored at the last
            # non-sequential position a, chunk[i] = min(chunk[a] + (i -
            # a), footprint - 1) — the scalar recurrence min(chunk[i-1]
            # + 1, cap) in closed form, computed with a prefix-maximum
            # over anchor indexes instead of a Python loop.
            sequential[0] = False
            indexes = np.arange(count, dtype=np.int64)
            anchors = np.where(sequential, 0, indexes)
            np.maximum.accumulate(anchors, out=anchors)
            chunk = np.minimum(
                chunk[anchors] + (indexes - anchors), spec.footprint_pages - 1
            )
        pages[produced : produced + count] = chunk
        produced += count
        phase_index += 1

    # Expand page visits into individual references with intra-page offsets.
    repeated = np.repeat(pages, spec.page_reuse)[:num_refs]
    offsets = rng.integers(0, PAGE_SIZE // 8, num_refs) * 8
    addresses = ((spec.base_page + repeated) << PAGE_SHIFT) | offsets
    writes = rng.random(num_refs) < spec.write_fraction
    return addresses.astype(np.int64), writes


class Workload:
    """A multithreaded workload: every vCPU is a thread of one process."""

    multiprogrammed = False

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec

    @property
    def name(self) -> str:
        """Workload name."""
        return self.spec.name

    def generate(
        self,
        num_vcpus: int,
        seed: int = 42,
        refs_total: Optional[int] = None,
    ) -> WorkloadTrace:
        """Generate per-vCPU streams for a run with ``num_vcpus`` threads."""
        if num_vcpus <= 0:
            raise ValueError("num_vcpus must be positive")
        total = refs_total if refs_total is not None else self.spec.refs_total
        per_thread = max(1, total // num_vcpus)
        rng = np.random.default_rng(seed)
        streams: list[np.ndarray] = []
        writes: list[np.ndarray] = []
        for _ in range(num_vcpus):
            thread_rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
            addresses, write_flags = generate_stream(
                self.spec, per_thread, thread_rng
            )
            streams.append(addresses)
            writes.append(write_flags)
        return WorkloadTrace(
            name=self.spec.name,
            streams=streams,
            writes=writes,
            process_of_vcpu=[0] * num_vcpus,
            num_processes=1,
        )


class MultiprogrammedWorkload:
    """A mix of single-threaded applications, one per vCPU (Figure 10)."""

    multiprogrammed = True

    def __init__(self, name: str, specs: Sequence[WorkloadSpec]) -> None:
        if not specs:
            raise ValueError("a multiprogrammed workload needs at least one spec")
        self.name = name
        self.specs = list(specs)

    def generate(
        self,
        num_vcpus: Optional[int] = None,
        seed: int = 42,
        refs_total: Optional[int] = None,
    ) -> WorkloadTrace:
        """Generate one stream per application.

        ``num_vcpus`` defaults to the number of applications; if smaller,
        only the first ``num_vcpus`` applications run.
        """
        count = num_vcpus if num_vcpus is not None else len(self.specs)
        if count <= 0:
            raise ValueError("num_vcpus must be positive")
        specs = self.specs[:count]
        rng = np.random.default_rng(seed)
        streams: list[np.ndarray] = []
        writes: list[np.ndarray] = []
        for spec in specs:
            per_app = (
                refs_total // len(specs) if refs_total is not None else spec.refs_total
            )
            app_rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
            addresses, write_flags = generate_stream(spec, per_app, app_rng)
            streams.append(addresses)
            writes.append(write_flags)
        return WorkloadTrace(
            name=self.name,
            streams=streams,
            writes=writes,
            process_of_vcpu=list(range(len(specs))),
            num_processes=len(specs),
            app_names=[spec.name for spec in specs],
        )

    @property
    def app_names(self) -> list[str]:
        """Names of the applications in the mix, in vCPU order."""
        return [spec.name for spec in self.specs]
