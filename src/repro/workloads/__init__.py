"""Workload generators: the paper's suite, small-footprint apps, SPEC mixes."""

from __future__ import annotations

from repro.workloads.base import (
    MultiprogrammedWorkload,
    Workload,
    WorkloadSpec,
    WorkloadTrace,
    generate_stream,
)
from repro.workloads.suite import (
    PAPER_WORKLOAD_SPECS,
    SMALL_WORKLOAD_SPECS,
    make_paper_workload,
    make_small_workload,
)
from repro.workloads.spec_mix import (
    APPS_PER_MIX,
    NUM_MIXES,
    SPEC_APP_SPECS,
    all_mixes,
    make_spec_mix,
    spec_app_names,
)

#: Registry of every named (non-mix) workload.
WORKLOADS: dict[str, WorkloadSpec] = {
    **PAPER_WORKLOAD_SPECS,
    **SMALL_WORKLOAD_SPECS,
}


def make_workload(name: str) -> Workload:
    """Build any named workload (paper suite or small-footprint suite)."""
    if name in WORKLOADS:
        return Workload(WORKLOADS[name])
    if name.startswith("mix"):
        index = int(name[3:])
        return make_spec_mix(index)
    known = ", ".join(sorted(WORKLOADS)) + ", mixNN"
    raise ValueError(f"unknown workload {name!r}; known: {known}")


__all__ = [
    "APPS_PER_MIX",
    "MultiprogrammedWorkload",
    "NUM_MIXES",
    "PAPER_WORKLOAD_SPECS",
    "SMALL_WORKLOAD_SPECS",
    "SPEC_APP_SPECS",
    "WORKLOADS",
    "Workload",
    "WorkloadSpec",
    "WorkloadTrace",
    "all_mixes",
    "generate_stream",
    "make_paper_workload",
    "make_small_workload",
    "make_spec_mix",
    "make_workload",
    "spec_app_names",
]
