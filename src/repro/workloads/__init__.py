"""Workload generators: the paper's suite, small-footprint apps, SPEC mixes."""

from __future__ import annotations

from repro.workloads.base import (
    MultiprogrammedWorkload,
    Workload,
    WorkloadSpec,
    WorkloadTrace,
    generate_stream,
)
from repro.workloads.suite import (
    PAPER_WORKLOAD_SPECS,
    SMALL_WORKLOAD_SPECS,
    make_paper_workload,
    make_small_workload,
)
from repro.workloads.spec_mix import (
    APPS_PER_MIX,
    NUM_MIXES,
    SPEC_APP_SPECS,
    all_mixes,
    make_spec_mix,
    spec_app_names,
)
from repro.workloads.synthetic import (
    SCENARIO_PREFIX,
    ScenarioSpec,
    SyntheticWorkload,
    make_scenario,
    parse_scenario_name,
    scenario_spec,
)
from repro.workloads.multi import (
    MULTI_PREFIX,
    MultiVmWorkload,
    make_multi_workload,
    parse_topology_name,
)
from repro.workloads.prefix import (
    PREFIX_PREFIX,
    PrefixCappedWorkload,
    make_prefix_workload,
    parse_prefix_name,
)

#: Registry of every named (non-mix) workload.
WORKLOADS: dict[str, WorkloadSpec] = {
    **PAPER_WORKLOAD_SPECS,
    **SMALL_WORKLOAD_SPECS,
}


def make_workload(name: str) -> Workload:
    """Build any named workload.

    Accepts the paper suite and small-footprint suite by name,
    multiprogrammed SPEC mixes as ``mixNN`` (16 applications, the
    paper's shape) or ``mixNNxM`` (``M`` applications, used by
    scaled-down runs), synthetic scenarios as canonical
    ``syn:family/key=value/...`` names (see
    :mod:`repro.workloads.synthetic`), and consolidated multi-VM
    compositions as ``multi:wl[@vcpus[:mem_share]]+...[+share=shared]``
    names (see :mod:`repro.workloads.multi`).
    """
    if name in WORKLOADS:
        return Workload(WORKLOADS[name])
    if name.startswith(SCENARIO_PREFIX):
        return make_scenario(name)
    if name.startswith(MULTI_PREFIX):
        return make_multi_workload(name)
    if name.startswith(PREFIX_PREFIX):
        return make_prefix_workload(name)
    if name.startswith("mix"):
        index_part, sep, apps_part = name[3:].partition("x")
        if not (sep and not apps_part):  # reject a trailing "x" with no count
            try:
                index = int(index_part)
                apps = int(apps_part) if apps_part else APPS_PER_MIX
            except ValueError:
                pass
            else:
                return make_spec_mix(index, apps_per_mix=apps)
    known = (
        ", ".join(sorted(WORKLOADS))
        + ", mixNN, mixNNxM, syn:..., multi:..., prefix:<refs>:..."
    )
    raise ValueError(f"unknown workload {name!r}; known: {known}")


__all__ = [
    "APPS_PER_MIX",
    "MULTI_PREFIX",
    "PREFIX_PREFIX",
    "PrefixCappedWorkload",
    "MultiVmWorkload",
    "MultiprogrammedWorkload",
    "NUM_MIXES",
    "PAPER_WORKLOAD_SPECS",
    "SCENARIO_PREFIX",
    "SMALL_WORKLOAD_SPECS",
    "SPEC_APP_SPECS",
    "ScenarioSpec",
    "SyntheticWorkload",
    "WORKLOADS",
    "Workload",
    "WorkloadSpec",
    "WorkloadTrace",
    "all_mixes",
    "generate_stream",
    "make_multi_workload",
    "make_paper_workload",
    "make_prefix_workload",
    "make_scenario",
    "make_small_workload",
    "make_spec_mix",
    "make_workload",
    "parse_prefix_name",
    "parse_scenario_name",
    "parse_topology_name",
    "scenario_spec",
    "spec_app_names",
]
