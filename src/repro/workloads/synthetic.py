"""Synthetic scenario engine: seeded, declarative workload generators.

The paper's conclusions hinge on *how* nested-page-table remaps arrive
-- page migration daemons, dirty-page logging during live migration,
memory compaction, NUMA balancing, ballooning -- yet the fixed workload
suite replays one point in that scenario space.  This module generates
:class:`~repro.workloads.base.WorkloadTrace` objects from three
composable, independently-seeded model families:

* **address-stream models** shaping the base reference stream:
  ``zipf`` (skewed stationary popularity), ``strided`` (streaming with
  occasional jumps), ``phased`` (a drifting hot window, like the suite
  workloads) and ``working-set-shift`` (the hot window jumps to random
  locations, graph500-style);
* **remap-pattern models** (the scenario *family*) overlaying the kind
  of access activity that provokes each real hypervisor remap source:
  ``migration-daemon`` (bursts of cold accesses that force demand
  migrations and background evictions), ``live-migration`` (periodic
  write sweeps, like dirty-page logging passes re-touching the working
  set), ``compaction`` (linear footprint sweeps; pair with the paging
  ``defrag_interval`` knob), ``numa-balancing`` (the hot set migrates
  between the two halves of the footprint), ``ballooning`` (the guest
  is periodically confined to half its footprint and then re-expands)
  and ``steady`` (no overlay);
* **sharing models** for vCPU placement: ``shared`` (every vCPU is a
  thread of one process), ``clustered`` (pairs of vCPUs share a
  process) and ``private`` (one single-threaded process per vCPU, a
  multiprogrammed mix).

A scenario is one frozen :class:`ScenarioSpec`.  Its canonical name
(``syn:family/key=value/...``, non-default fields only, fixed order)
round-trips through :func:`parse_scenario_name`, and
:func:`repro.workloads.make_workload` resolves any ``syn:`` name, so
scenarios flow through :class:`~repro.api.request.RunRequest` /
``Session`` / ``Sweep`` unchanged and get stable cache keys for free.

Generation is fully deterministic: the trace depends only on the spec,
the machine seed and the vCPU count, never on generation order.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Optional

import numpy as np

from repro.translation.address import PAGE_SHIFT, PAGE_SIZE
from repro.workloads.base import WorkloadTrace

#: Prefix identifying synthetic scenario workload names.
SCENARIO_PREFIX = "syn:"

#: vCPU placement / sharing models.
SHARING_MODELS = ("shared", "clustered", "private")

#: vCPUs per guest process under the ``clustered`` sharing model.
_CLUSTER_SIZE = 2


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one synthetic scenario.

    Attributes:
        family: remap-pattern model (see :data:`REMAP_MODELS`).
        address_model: base address-stream model (:data:`ADDRESS_MODELS`).
        sharing: vCPU placement model (:data:`SHARING_MODELS`).
        seed: scenario seed, mixed with the machine seed at generation.
        num_vcpus: streams to generate (None = match the machine).
        footprint_pages: distinct pages across the whole scenario; under
            ``clustered``/``private`` sharing it is split between the
            guest processes so the aggregate stays comparable.
        hot_fraction: fraction of the (per-process) footprint forming
            the hot working set.
        cold_probability: probability that a visit targets the whole
            footprint uniformly instead of the hot set.
        refs_total: total references across all vCPUs for a default run.
        page_reuse: consecutive references issued to a page per visit.
        write_fraction: base probability that a reference is a write.
        zipf_alpha: skew of the ``zipf`` address model.
        stride_pages: step of the ``strided`` address model.
        phase_length: visits per phase of the ``phased`` model.
        drift_pages: hot-window drift per phase of the ``phased`` model.
        shift_interval: visits between jumps of ``working-set-shift``.
        burst_interval: visits between remap-overlay episodes.
        burst_length: visits overwritten by each overlay episode.
        base_page: first guest virtual page of the footprint.
    """

    family: str = "steady"
    address_model: str = "phased"
    sharing: str = "shared"
    seed: int = 0
    num_vcpus: Optional[int] = None
    footprint_pages: int = 2800
    hot_fraction: float = 0.7
    cold_probability: float = 0.002
    refs_total: int = 64_000
    page_reuse: int = 3
    write_fraction: float = 0.25
    zipf_alpha: float = 0.7
    stride_pages: int = 1
    phase_length: int = 250
    drift_pages: int = 60
    shift_interval: int = 300
    burst_interval: int = 300
    burst_length: int = 60
    base_page: int = 0x40000

    def __post_init__(self) -> None:
        if self.family not in REMAP_MODELS:
            raise ValueError(
                f"unknown scenario family {self.family!r}; known: "
                f"{', '.join(sorted(REMAP_MODELS))}"
            )
        if self.address_model not in ADDRESS_MODELS:
            raise ValueError(
                f"unknown address model {self.address_model!r}; known: "
                f"{', '.join(sorted(ADDRESS_MODELS))}"
            )
        if self.sharing not in SHARING_MODELS:
            raise ValueError(
                f"unknown sharing model {self.sharing!r}; known: "
                f"{', '.join(SHARING_MODELS)}"
            )
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.num_vcpus is not None and self.num_vcpus <= 0:
            raise ValueError("num_vcpus must be positive when given")
        if self.footprint_pages <= 0:
            raise ValueError("footprint_pages must be positive")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 <= self.cold_probability <= 1.0:
            raise ValueError("cold_probability must be a probability")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be a probability")
        if self.refs_total <= 0:
            raise ValueError("refs_total must be positive")
        if self.page_reuse <= 0:
            raise ValueError("page_reuse must be positive")
        if self.zipf_alpha <= 0.0:
            raise ValueError("zipf_alpha must be positive")
        if self.stride_pages <= 0:
            raise ValueError("stride_pages must be positive")
        for knob in ("phase_length", "shift_interval", "burst_interval"):
            if getattr(self, knob) <= 0:
                raise ValueError(f"{knob} must be positive")
        if self.drift_pages < 0 or self.burst_length < 0 or self.base_page < 0:
            raise ValueError(
                "drift_pages, burst_length and base_page must be non-negative"
            )

    @property
    def name(self) -> str:
        """Canonical workload name; round-trips via :func:`parse_scenario_name`.

        Only fields differing from the defaults appear, in declaration
        order, so equal specs always produce equal names (and hence
        equal :class:`~repro.api.request.RunRequest` cache keys).
        """
        segments = [f"{SCENARIO_PREFIX}{self.family}"]
        for field in fields(self):
            if field.name == "family":
                continue
            value = getattr(self, field.name)
            if value == field.default:
                continue
            segments.append(f"{_NAME_KEYS[field.name]}={_format_value(value)}")
        return "/".join(segments)

    def replace(self, **changes: Any) -> "ScenarioSpec":
        """Return a copy with arbitrary fields replaced."""
        return replace(self, **changes)

    def scaled_refs(self, factor: float) -> "ScenarioSpec":
        """Return a copy with the total reference count scaled."""
        return replace(self, refs_total=max(1, int(self.refs_total * factor)))


#: Short, stable name-segment keys for every non-family spec field.
_NAME_KEYS: dict[str, str] = {
    "address_model": "addr",
    "sharing": "share",
    "seed": "seed",
    "num_vcpus": "vcpus",
    "footprint_pages": "fp",
    "hot_fraction": "hot",
    "cold_probability": "cold",
    "refs_total": "refs",
    "page_reuse": "reuse",
    "write_fraction": "wf",
    "zipf_alpha": "alpha",
    "stride_pages": "stride",
    "phase_length": "phase",
    "drift_pages": "drift",
    "shift_interval": "shift",
    "burst_interval": "burst",
    "burst_length": "blen",
    "base_page": "base",
}
_FIELD_OF_KEY = {key: name for name, key in _NAME_KEYS.items()}


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        raise TypeError("scenario specs have no boolean fields")
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _parse_value(field_name: str, raw: str) -> Any:
    try:
        if field_name in ("hot_fraction", "cold_probability", "write_fraction",
                          "zipf_alpha"):
            return float(raw)
        if field_name in ("address_model", "sharing"):
            return raw
        return int(raw, 0)
    except ValueError:
        raise ValueError(
            f"bad value {raw!r} for scenario field {field_name!r}"
        ) from None


def parse_scenario_name(name: str) -> ScenarioSpec:
    """Parse a canonical ``syn:...`` name back into a :class:`ScenarioSpec`."""
    if not name.startswith(SCENARIO_PREFIX):
        raise ValueError(f"scenario names start with {SCENARIO_PREFIX!r}: {name!r}")
    body = name[len(SCENARIO_PREFIX):]
    if not body:
        raise ValueError("empty scenario name")
    family, *segments = body.split("/")
    kwargs: dict[str, Any] = {"family": family}
    for segment in segments:
        key, sep, raw = segment.partition("=")
        if not sep or not key or not raw:
            raise ValueError(
                f"scenario name segment {segment!r} is not key=value"
            )
        field_name = _FIELD_OF_KEY.get(key)
        if field_name is None:
            known = ", ".join(sorted(_FIELD_OF_KEY))
            raise ValueError(f"unknown scenario key {key!r}; known: {known}")
        if field_name in kwargs:
            raise ValueError(f"duplicate scenario key {key!r}")
        kwargs[field_name] = _parse_value(field_name, raw)
    return ScenarioSpec(**kwargs)


# ----------------------------------------------------------------------
# address-stream models
# ----------------------------------------------------------------------
# Every model maps (geometry, spec, schedule, thread rng, visit count)
# to an int64 array of page indices in [0, footprint).  ``schedule`` is
# process-level state computed once per guest process so that threads of
# the same process work on the same data (shared hot windows, shared
# popularity ranking), which is what keeps the aggregate resident set at
# the intended size.

@dataclass(frozen=True)
class _Geometry:
    """Per-process footprint geometry after sharing-model scaling."""

    footprint: int
    hot: int
    drift: int

    @property
    def span(self) -> int:
        return max(1, self.footprint - self.hot)


def _mix_cold(
    pages: np.ndarray, geo: _Geometry, spec: ScenarioSpec, rng: np.random.Generator
) -> np.ndarray:
    """Replace a ``cold_probability`` fraction of visits with uniform ones."""
    if spec.cold_probability <= 0.0:
        return pages
    is_cold = rng.random(len(pages)) < spec.cold_probability
    cold = rng.integers(0, geo.footprint, len(pages))
    return np.where(is_cold, cold, pages)


def _addr_phased(geo, spec, schedule, rng, n):
    phase = np.arange(n) // spec.phase_length
    hot_start = (phase * geo.drift) % geo.span
    pages = hot_start + rng.integers(0, geo.hot, n)
    return _mix_cold(pages, geo, spec, rng)


def _addr_working_set_shift(geo, spec, schedule, rng, n):
    shift = np.arange(n) // spec.shift_interval
    starts = schedule["shift_starts"]
    pages = starts[shift] + rng.integers(0, geo.hot, n)
    return _mix_cold(pages, geo, spec, rng)


def _addr_zipf(geo, spec, schedule, rng, n):
    return rng.choice(geo.footprint, size=n, p=schedule["zipf_p"])


def _addr_strided(geo, spec, schedule, rng, n):
    start = int(rng.integers(0, geo.footprint))
    jumps = rng.random(n) < spec.cold_probability
    jump_targets = rng.integers(0, geo.footprint, n)
    idx = np.arange(n)
    jump_idx = np.flatnonzero(jumps)
    natural = start + spec.stride_pages * idx
    if len(jump_idx) == 0:
        return natural % geo.footprint
    last = np.searchsorted(jump_idx, idx, side="right") - 1
    anchor = jump_idx[np.maximum(last, 0)]
    resumed = jump_targets[anchor] + spec.stride_pages * (idx - anchor)
    return np.where(last >= 0, resumed, natural) % geo.footprint


ADDRESS_MODELS: dict[str, Callable[..., np.ndarray]] = {
    "phased": _addr_phased,
    "working-set-shift": _addr_working_set_shift,
    "zipf": _addr_zipf,
    "strided": _addr_strided,
}


# ----------------------------------------------------------------------
# remap-pattern models (scenario families)
# ----------------------------------------------------------------------
# Each overlay transforms the visit stream so the hypervisor's paging
# machinery produces the remap pattern of one real remap source.  The
# return value is ``(pages, forced_writes)`` where ``forced_writes`` is
# either None or a boolean mask marking visits that must be writes
# (dirty-page logging re-touches are writes by definition).

def _episode_slices(spec: ScenarioSpec, n: int):
    """Start offsets of each overlay episode within ``n`` visits."""
    period = spec.burst_interval
    return [
        (k, pos, min(spec.burst_length, n - pos))
        for k, pos in enumerate(range(period, n, period))
    ]


def _remap_steady(geo, spec, rng, pages):
    return pages, None


def _remap_migration_daemon(geo, spec, rng, pages):
    # Bursts of uniformly cold accesses: each one demand-migrates pages
    # into die-stacked DRAM and drives the migration daemon's background
    # evictions -- the paper's steady-state remap source.
    pages = pages.copy()
    for _, pos, length in _episode_slices(spec, len(pages)):
        pages[pos : pos + length] = rng.integers(0, geo.footprint, length)
    return pages, None


def _remap_live_migration(geo, spec, rng, pages):
    # Dirty-page logging passes: each episode write-sweeps a window of
    # the footprint, the way a pre-copy pass re-touches (and re-dirties)
    # the working set while the hypervisor logs writes.
    pages = pages.copy()
    forced = np.zeros(len(pages), dtype=bool)
    for k, pos, length in _episode_slices(spec, len(pages)):
        start = (k * spec.burst_length) % geo.footprint
        pages[pos : pos + length] = (start + np.arange(length)) % geo.footprint
        forced[pos : pos + length] = True
    return pages, forced


def _remap_compaction(geo, spec, rng, pages):
    # Compaction sweeps: linear scans across the whole footprint, the
    # access pattern a defragmenting hypervisor induces while it builds
    # superpage-sized contiguity.  Pair with a positive paging
    # ``defrag_interval`` so resident pages are also remapped in place.
    pages = pages.copy()
    for k, pos, length in _episode_slices(spec, len(pages)):
        start = (k * 4 * spec.burst_length) % geo.footprint
        pages[pos : pos + length] = (start + np.arange(length)) % geo.footprint
    return pages, None


def _remap_numa_balancing(geo, spec, rng, pages):
    # Automatic NUMA balancing: the hot set alternates between the two
    # halves of the footprint every epoch, so residency (and hence the
    # nested mappings) chase it back and forth.
    epoch = np.arange(len(pages)) // spec.burst_interval
    half = geo.footprint // 2
    if half == 0:
        return pages, None
    shifted = (pages + half) % geo.footprint
    return np.where(epoch % 2 == 1, shifted, pages), None


def _remap_ballooning(geo, spec, rng, pages):
    # Ballooning: odd epochs confine the guest to the lower half of its
    # footprint (the balloon holds the rest); on deflation the upper
    # half refaults and re-migrates.
    epoch = np.arange(len(pages)) // spec.burst_interval
    half = max(1, geo.footprint // 2)
    return np.where(epoch % 2 == 1, pages % half, pages), None


REMAP_MODELS: dict[str, Callable[..., tuple]] = {
    "steady": _remap_steady,
    "migration-daemon": _remap_migration_daemon,
    "live-migration": _remap_live_migration,
    "compaction": _remap_compaction,
    "numa-balancing": _remap_numa_balancing,
    "ballooning": _remap_ballooning,
}

#: Per-family spec defaults tuned so each family's remap source
#: dominates; ``scenario_spec`` applies them under explicit overrides.
FAMILY_PRESETS: dict[str, dict[str, Any]] = {
    "steady": {},
    "migration-daemon": {"address_model": "zipf", "burst_length": 80},
    "live-migration": {
        "write_fraction": 0.3,
        "burst_length": 100,
        "drift_pages": 150,
        "cold_probability": 0.004,
    },
    "compaction": {"burst_length": 120},
    "numa-balancing": {"address_model": "working-set-shift"},
    "ballooning": {"address_model": "zipf", "burst_interval": 450},
}


def scenario_spec(family: str, seed: int = 0, **overrides: Any) -> ScenarioSpec:
    """Build the preset :class:`ScenarioSpec` of a family.

    Explicit ``overrides`` win over the family preset, which wins over
    the dataclass defaults.
    """
    if family not in FAMILY_PRESETS:
        known = ", ".join(sorted(FAMILY_PRESETS))
        raise ValueError(f"unknown scenario family {family!r}; known: {known}")
    kwargs: dict[str, Any] = {**FAMILY_PRESETS[family], **overrides}
    return ScenarioSpec(family=family, seed=seed, **kwargs)


# ----------------------------------------------------------------------
# search domain: random specs, mutation, crossover
# ----------------------------------------------------------------------
#: Knob domains the adversarial search (:mod:`repro.search`) explores.
#: Categorical knobs map to their choice tuple; numeric knobs map to an
#: inclusive ``(lo, hi)`` range (float bounds mean a float knob).  The
#: fields *not* listed stay at their dataclass defaults inside the
#: search: ``num_vcpus`` (the machine shape decides), ``refs_total``
#: (the :class:`~repro.api.request.RunRequest` decides, so spec names —
#: and hence cache keys — are independent of run length) and
#: ``base_page`` (irrelevant to protocol behaviour).
SEARCH_DOMAIN: dict[str, tuple] = {
    "family": tuple(REMAP_MODELS),
    "address_model": tuple(ADDRESS_MODELS),
    "sharing": tuple(SHARING_MODELS),
    "seed": (0, 65535),
    "footprint_pages": (64, 8192),
    "hot_fraction": (0.05, 1.0),
    "cold_probability": (0.0, 0.05),
    "page_reuse": (1, 16),
    "write_fraction": (0.0, 1.0),
    "zipf_alpha": (0.3, 2.0),
    "stride_pages": (1, 64),
    "phase_length": (50, 1000),
    "drift_pages": (0, 400),
    "shift_interval": (50, 1000),
    "burst_interval": (50, 1000),
    "burst_length": (0, 200),
}

_CATEGORICAL_KNOBS = ("family", "address_model", "sharing")
_KNOB_ORDER = tuple(SEARCH_DOMAIN)

#: Knobs only read by specific address models (see the model functions
#: above): mutating e.g. ``zipf_alpha`` under ``strided`` produces a
#: bit-identical trace, which wastes search budget on duplicates.
_ADDRESS_KNOBS: dict[str, tuple[str, ...]] = {
    "phased": ("hot_fraction", "cold_probability", "phase_length",
               "drift_pages"),
    "working-set-shift": ("hot_fraction", "cold_probability",
                          "shift_interval"),
    "zipf": ("zipf_alpha",),
    "strided": ("stride_pages", "cold_probability"),
}

#: Knobs only read by specific remap families (the overlay episode
#: schedule): ``steady`` has no overlay at all, and the epoch-based
#: families ignore ``burst_length``.
_FAMILY_KNOBS: dict[str, tuple[str, ...]] = {
    "steady": (),
    "migration-daemon": ("burst_interval", "burst_length"),
    "live-migration": ("burst_interval", "burst_length"),
    "compaction": ("burst_interval", "burst_length"),
    "numa-balancing": ("burst_interval",),
    "ballooning": ("burst_interval",),
}

_CONDITIONAL_KNOBS = frozenset(
    knob for knobs in _ADDRESS_KNOBS.values() for knob in knobs
) | frozenset(knob for knobs in _FAMILY_KNOBS.values() for knob in knobs)


def active_knobs(spec: "ScenarioSpec") -> tuple[str, ...]:
    """The search knobs that can affect ``spec``'s generated trace.

    Unconditional knobs (family, address model, sharing, seed,
    footprint, reuse, write fraction) plus the knobs its current
    address model and remap family actually read.
    """
    live = set(_KNOB_ORDER) - _CONDITIONAL_KNOBS
    live.update(_ADDRESS_KNOBS[spec.address_model])
    live.update(_FAMILY_KNOBS[spec.family])
    return tuple(knob for knob in _KNOB_ORDER if knob in live)
#: Decimal places kept on mutated float knobs so every generated name
#: stays short and round-trips exactly through :func:`_parse_value`.
_FLOAT_DECIMALS = 4
_PINNED_FIELDS = ("num_vcpus", "refs_total", "base_page")


def spec_domain_violations(spec: ScenarioSpec) -> list[str]:
    """Explain how ``spec`` falls outside :data:`SEARCH_DOMAIN`.

    Returns one message per out-of-domain knob (empty = in-domain).
    Used as the property-test contract for :func:`random_spec`,
    :func:`mutate_spec` and :func:`crossover_specs`: every spec they
    produce must come back empty.
    """
    violations: list[str] = []
    for knob, domain in SEARCH_DOMAIN.items():
        value = getattr(spec, knob)
        if knob in _CATEGORICAL_KNOBS:
            if value not in domain:
                violations.append(f"{knob}={value!r} not in {domain}")
            continue
        lo, hi = domain
        if not lo <= value <= hi:
            violations.append(f"{knob}={value!r} outside [{lo}, {hi}]")
        if isinstance(lo, float) and round(value, _FLOAT_DECIMALS) != value:
            violations.append(f"{knob}={value!r} not rounded to "
                              f"{_FLOAT_DECIMALS} decimals")
    defaults = {f.name: f.default for f in fields(ScenarioSpec)}
    for field_name in _PINNED_FIELDS:
        value = getattr(spec, field_name)
        if value != defaults[field_name]:
            violations.append(
                f"{field_name}={value!r} must stay at its default "
                f"({defaults[field_name]!r}) inside the search domain"
            )
    return violations


def _draw_knob(knob: str, rng: np.random.Generator) -> Any:
    domain = SEARCH_DOMAIN[knob]
    if knob in _CATEGORICAL_KNOBS:
        return domain[int(rng.integers(len(domain)))]
    lo, hi = domain
    if isinstance(lo, float):
        return round(float(rng.uniform(lo, hi)), _FLOAT_DECIMALS)
    return int(rng.integers(lo, hi + 1))


def _neighbor_knob(knob: str, value: Any, rng: np.random.Generator) -> Any:
    """A local move for one knob, guaranteed to differ from ``value``."""
    domain = SEARCH_DOMAIN[knob]
    if knob in _CATEGORICAL_KNOBS:
        others = tuple(c for c in domain if c != value)
        return others[int(rng.integers(len(others)))]
    lo, hi = domain
    if isinstance(lo, float):
        new = value + float(rng.uniform(-0.2, 0.2)) * (hi - lo)
        new = round(min(hi, max(lo, new)), _FLOAT_DECIMALS)
        if new == value:
            new = round(float(rng.uniform(lo, hi)), _FLOAT_DECIMALS)
        if new == value:
            midpoint = (lo + hi) / 2.0
            new = round(hi if value < midpoint else lo, _FLOAT_DECIMALS)
        return new
    span = hi - lo
    step = 1 + int(rng.integers(max(1, span // 4)))
    new = value + (step if rng.random() < 0.5 else -step)
    new = min(hi, max(lo, new))
    if new == value:
        new = value + 1 if value < hi else value - 1
    return new


def random_spec(rng: np.random.Generator) -> ScenarioSpec:
    """Draw a uniform random spec from :data:`SEARCH_DOMAIN`."""
    return ScenarioSpec(**{knob: _draw_knob(knob, rng) for knob in _KNOB_ORDER})


def mutate_spec(
    spec: ScenarioSpec,
    rng: np.random.Generator,
    knobs: int = 1,
) -> ScenarioSpec:
    """Perturb ``knobs`` distinct knobs of ``spec`` with local moves.

    Numeric knobs step within roughly a quarter of their domain span
    (clipped to the domain); categorical knobs switch to a different
    choice.  Every perturbed knob is guaranteed to change, so a
    1-knob mutation never returns an equal spec.

    Only :func:`active_knobs` of ``spec`` are eligible: perturbing a
    knob the current address model / family never reads (say
    ``zipf_alpha`` under ``strided``) would yield a distinct name over
    a bit-identical trace, and a search would waste budget re-scoring
    duplicates.
    """
    eligible = active_knobs(spec)
    knobs = max(1, min(knobs, len(eligible)))
    chosen = rng.permutation(len(eligible))[:knobs]
    changes = {}
    for index in chosen:
        knob = eligible[int(index)]
        changes[knob] = _neighbor_knob(knob, getattr(spec, knob), rng)
    return spec.replace(**changes)


def crossover_specs(
    a: ScenarioSpec,
    b: ScenarioSpec,
    rng: np.random.Generator,
) -> ScenarioSpec:
    """Uniform field-wise crossover of two in-domain specs."""
    changes = {
        knob: getattr(b if rng.random() < 0.5 else a, knob)
        for knob in _KNOB_ORDER
    }
    return ScenarioSpec(**changes)


# ----------------------------------------------------------------------
# the workload
# ----------------------------------------------------------------------
class SyntheticWorkload:
    """A scenario as a workload: duck-compatible with the suite classes.

    Satisfies everything :class:`~repro.sim.simulator.Simulator` and
    :class:`~repro.api.scale.ExperimentScale` expect from a workload:
    ``name``, ``spec.refs_total``, ``multiprogrammed`` and
    ``generate(num_vcpus, seed, refs_total)``.
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec

    @property
    def name(self) -> str:
        """Canonical scenario name."""
        return self.spec.name

    @property
    def multiprogrammed(self) -> bool:
        """Whether vCPUs belong to more than one guest process."""
        return self.spec.sharing != "shared"

    # ------------------------------------------------------------------
    def generate(
        self,
        num_vcpus: Optional[int] = None,
        seed: int = 42,
        refs_total: Optional[int] = None,
    ) -> WorkloadTrace:
        """Generate the scenario's per-vCPU streams.

        ``num_vcpus`` is the machine's CPU count; the trace uses
        ``spec.num_vcpus`` capped to it (or all of it when the spec
        leaves the count open).  ``seed`` is the machine seed; it is
        mixed with the scenario seed, so equal (spec, seed, vcpus)
        triples yield bit-identical traces regardless of where or in
        what order generation happens.
        """
        spec = self.spec
        if num_vcpus is None:
            count = spec.num_vcpus or 8
        elif num_vcpus <= 0:
            raise ValueError("num_vcpus must be positive")
        else:
            count = min(spec.num_vcpus, num_vcpus) if spec.num_vcpus else num_vcpus

        process_of_vcpu, num_processes = self._placement(count)
        geo = self._geometry(num_processes)
        total = refs_total if refs_total is not None else spec.refs_total
        per_thread = max(1, total // count)
        n_visits = per_thread // spec.page_reuse + 1

        entropy = (spec.seed % 2**32, seed % 2**32)
        schedules = [
            self._process_schedule(geo, n_visits, np.random.default_rng(
                (*entropy, 101, proc)
            ))
            for proc in range(num_processes)
        ]

        streams: list[np.ndarray] = []
        writes: list[np.ndarray] = []
        address_model = ADDRESS_MODELS[spec.address_model]
        remap_model = REMAP_MODELS[spec.family]
        for cpu in range(count):
            rng = np.random.default_rng((*entropy, 202, cpu))
            schedule = schedules[process_of_vcpu[cpu]]
            pages = address_model(geo, spec, schedule, rng, n_visits)
            pages, forced = remap_model(geo, spec, rng, pages.astype(np.int64))
            addresses, write_flags = self._expand(
                geo, pages, forced, per_thread, rng
            )
            streams.append(addresses)
            writes.append(write_flags)

        app_names = None
        if num_processes > 1:
            app_names = [
                f"v{cpu:02d}.p{proc}"
                for cpu, proc in enumerate(process_of_vcpu)
            ]
        return WorkloadTrace(
            name=spec.name,
            streams=streams,
            writes=writes,
            process_of_vcpu=process_of_vcpu,
            num_processes=num_processes,
            app_names=app_names,
        )

    # ------------------------------------------------------------------
    def _placement(self, count: int) -> tuple[list[int], int]:
        sharing = self.spec.sharing
        if sharing == "shared":
            return [0] * count, 1
        if sharing == "clustered":
            procs = [cpu // _CLUSTER_SIZE for cpu in range(count)]
            return procs, procs[-1] + 1
        return list(range(count)), count

    def _geometry(self, num_processes: int) -> _Geometry:
        # Split the footprint between processes so the aggregate stays
        # at the declared size instead of multiplying with the vCPUs.
        spec = self.spec
        footprint = (
            spec.footprint_pages
            if num_processes == 1
            else max(64, spec.footprint_pages // num_processes)
        )
        hot = max(1, min(footprint, int(footprint * spec.hot_fraction)))
        # drift_pages=0 means a stationary hot window and must stay 0;
        # any positive drift survives the per-process scaling as >= 1.
        drift = (
            0
            if spec.drift_pages == 0
            else max(1, round(spec.drift_pages * footprint / spec.footprint_pages))
        )
        return _Geometry(footprint=footprint, hot=hot, drift=drift)

    def _process_schedule(
        self, geo: _Geometry, n_visits: int, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        """Process-level state shared by every thread of one process."""
        spec = self.spec
        schedule: dict[str, np.ndarray] = {}
        if spec.address_model == "working-set-shift":
            n_shifts = n_visits // spec.shift_interval + 1
            schedule["shift_starts"] = rng.integers(0, geo.span, n_shifts)
        elif spec.address_model == "zipf":
            ranks = rng.permutation(geo.footprint)
            weights = (ranks + 1.0) ** -spec.zipf_alpha
            schedule["zipf_p"] = weights / weights.sum()
        return schedule

    def _expand(
        self,
        geo: _Geometry,
        pages: np.ndarray,
        forced_writes: Optional[np.ndarray],
        per_thread: int,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Expand page visits into addressed references with write flags."""
        spec = self.spec
        repeated = np.repeat(pages, spec.page_reuse)[:per_thread]
        offsets = rng.integers(0, PAGE_SIZE // 8, per_thread) * 8
        addresses = ((spec.base_page + repeated) << PAGE_SHIFT) | offsets
        write_flags = rng.random(per_thread) < spec.write_fraction
        if forced_writes is not None:
            write_flags |= np.repeat(forced_writes, spec.page_reuse)[:per_thread]
        return addresses.astype(np.int64), write_flags


def make_scenario(name_or_spec: str | ScenarioSpec) -> SyntheticWorkload:
    """Build a :class:`SyntheticWorkload` from a ``syn:`` name or a spec."""
    if isinstance(name_or_spec, ScenarioSpec):
        return SyntheticWorkload(name_or_spec)
    return SyntheticWorkload(parse_scenario_name(name_or_spec))


def summarize_trace(trace: WorkloadTrace) -> dict[str, Any]:
    """JSON-compatible summary of a generated trace (for the CLI)."""
    total = trace.total_references
    write_refs = int(sum(int(w.sum()) for w in trace.writes))
    return {
        "name": trace.name,
        "num_vcpus": trace.num_vcpus,
        "num_processes": trace.num_processes,
        "total_references": total,
        "references_per_vcpu": [len(s) for s in trace.streams],
        "distinct_pages": trace.footprint_pages(),
        "write_fraction": round(write_refs / max(1, total), 4),
    }


__all__ = [
    "ADDRESS_MODELS",
    "FAMILY_PRESETS",
    "REMAP_MODELS",
    "SCENARIO_PREFIX",
    "SEARCH_DOMAIN",
    "SHARING_MODELS",
    "ScenarioSpec",
    "SyntheticWorkload",
    "active_knobs",
    "crossover_specs",
    "make_scenario",
    "mutate_spec",
    "parse_scenario_name",
    "random_spec",
    "scenario_spec",
    "spec_domain_violations",
    "summarize_trace",
]
