"""Prefix-stable workload wrapper: ``prefix:<base_refs>:<workload>``.

The raw trace generators are **not** prefix-stable in ``refs_total``:
they draw addresses, offsets and write flags from one sequential RNG
stream whose consumption depends on the requested length, so a
10k-reference trace is *not* the first 10k references of the 20k-
reference trace of the same workload (``tests/test_prefix_stability.py``
pins this down; ``README.md`` in this package explains why it cannot be
fixed without changing every committed result).

Checkpointed incremental sweeps need the opposite property: when a
``refs_total`` sweep reuses a checkpoint from a shorter run, the longer
run's stream prefix must equal the shorter run's stream bit-for-bit.
This wrapper provides it by construction: the inner workload is always
generated at one fixed ``base_refs`` length, and the requested
``refs_total`` merely truncates the streams
(:meth:`~repro.workloads.base.WorkloadTrace.prefix`).  Truncations of
one fixed trace are trivially prefixes of each other.

Names round-trip through :func:`repro.workloads.make_workload`::

    prefix:64000:syn:migration-daemon/seed=7
    prefix:120000:canneal
    prefix:48000:multi:syn:steady@2+syn:steady@2

so prefix-capped runs flow through ``RunRequest`` / ``Session`` /
``Sweep`` unchanged and get stable cache keys for free.
"""

from __future__ import annotations

from typing import Optional

from repro.workloads.base import MultiprogrammedWorkload, WorkloadTrace

#: Prefix identifying prefix-capped workload names.
PREFIX_PREFIX = "prefix:"


def parse_prefix_name(name: str) -> tuple[int, str]:
    """Split ``prefix:<base_refs>:<inner>`` into its two parts."""
    if not name.startswith(PREFIX_PREFIX):
        raise ValueError(
            f"prefix-capped names start with {PREFIX_PREFIX!r}: {name!r}"
        )
    body = name[len(PREFIX_PREFIX):]
    base_part, sep, inner = body.partition(":")
    if not sep or not inner:
        raise ValueError(
            f"prefix-capped names look like prefix:<base_refs>:<workload>, "
            f"got {name!r}"
        )
    try:
        base_refs = int(base_part)
    except ValueError:
        raise ValueError(
            f"bad base reference count {base_part!r} in {name!r}"
        ) from None
    if base_refs <= 0:
        raise ValueError("prefix base_refs must be positive")
    return base_refs, inner


class _PrefixSpec:
    """Minimal spec facade: the base length is the default trace length."""

    __slots__ = ("refs_total",)

    def __init__(self, refs_total: int) -> None:
        self.refs_total = refs_total


class PrefixCappedWorkload:
    """A workload whose traces are prefixes of one fixed base trace.

    Duck-compatible with the other workload classes (``name``, ``spec``,
    ``multiprogrammed``, ``generate(num_vcpus, seed, refs_total)``).
    ``generate`` always materializes the inner workload at ``base_refs``
    total references and truncates to the requested ``refs_total``, so
    for any two lengths the shorter trace is a literal prefix of the
    longer one -- the invariant checkpointed sweeps rely on.
    """

    def __init__(self, inner, base_refs: int) -> None:
        if base_refs <= 0:
            raise ValueError("base_refs must be positive")
        self.inner = inner
        self.base_refs = base_refs

    @property
    def name(self) -> str:
        """Canonical ``prefix:`` name."""
        return f"{PREFIX_PREFIX}{self.base_refs}:{self.inner.name}"

    @property
    def spec(self):
        """Spec facade: a default run uses the full base-length trace."""
        return _PrefixSpec(self.base_refs)

    @property
    def multiprogrammed(self) -> bool:
        """Whether the inner workload spans several guest processes."""
        return bool(getattr(self.inner, "multiprogrammed", False))

    def generate(
        self,
        num_vcpus: Optional[int] = None,
        seed: int = 42,
        refs_total: Optional[int] = None,
    ) -> WorkloadTrace:
        """Generate the base trace and truncate it to ``refs_total``.

        ``refs_total`` must not exceed ``base_refs`` -- a longer request
        could not be a prefix of the base trace, which would silently
        break the one property this wrapper exists to provide.
        """
        inner = self.inner
        if isinstance(inner, MultiprogrammedWorkload) and num_vcpus is not None:
            # mirror resolve_trace's one-vCPU-per-application capping
            num_vcpus = min(num_vcpus, len(inner.specs))
        total = refs_total if refs_total is not None else self.base_refs
        if total > self.base_refs:
            raise ValueError(
                f"refs_total {total} exceeds the prefix base "
                f"{self.base_refs}; a prefix-capped workload cannot grow "
                f"past its base trace"
            )
        trace = inner.generate(
            num_vcpus=num_vcpus, seed=seed, refs_total=self.base_refs
        )
        return trace.prefix(total, name=self.name)


def make_prefix_workload(name: str) -> PrefixCappedWorkload:
    """Build a :class:`PrefixCappedWorkload` from a ``prefix:`` name."""
    from repro.workloads import make_workload

    base_refs, inner_name = parse_prefix_name(name)
    return PrefixCappedWorkload(make_workload(inner_name), base_refs)


__all__ = [
    "PREFIX_PREFIX",
    "PrefixCappedWorkload",
    "make_prefix_workload",
    "parse_prefix_name",
]
