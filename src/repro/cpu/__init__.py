"""CPU and chip models: per-CPU translation/caching structures and their assembly."""

from repro.cpu.core import CpuCore, TranslationOutcome
from repro.cpu.chip import Chip

__all__ = ["Chip", "CpuCore", "TranslationOutcome"]
