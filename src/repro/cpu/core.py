"""One CPU core: translation structures, private caches, and the walker.

A core exposes the two operations the simulator needs per memory
reference -- translate a guest virtual page and access the resulting
system physical address -- plus the invalidation entry points the
translation coherence protocols call into (full flush for the software
baseline, co-tag matched invalidation for HATRIC, and so on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.cotag import CoTagScheme
from repro.mem.cache import Cache
from repro.mem.hierarchy import CacheHierarchy
from repro.sim.config import SystemConfig
from repro.sim.costs import CostModel
from repro.translation.structures import MMUCache, NestedTLB, TLB
from repro.translation.walker import AddressSpaceContext, PageTableWalker


@dataclass(slots=True)
class TranslationOutcome:
    """Result of translating one guest virtual page on a core.

    Attributes:
        spp: the system physical page (valid when ``fault`` is None).
        cycles: cycles spent on translation (TLB lookups and any walk).
        fault: None, ``"guest"`` or ``"nested"``.
        source: ``"l1-tlb"``, ``"l2-tlb"`` or ``"walk"``.
    """

    spp: int
    cycles: int
    fault: Optional[str] = None
    source: str = "l1-tlb"


@dataclass
class InvalidationReport:
    """What a coherence action removed from one core's structures."""

    tlb_entries: int = 0
    mmu_entries: int = 0
    ntlb_entries: int = 0
    cache_lines: int = 0

    @property
    def translation_entries(self) -> int:
        """Total translation structure entries invalidated."""
        return self.tlb_entries + self.mmu_entries + self.ntlb_entries

    @property
    def anything(self) -> bool:
        """True if the action removed anything at all."""
        return self.translation_entries > 0 or self.cache_lines > 0


class CpuCore:
    """A single CPU with its private translation and cache structures."""

    def __init__(
        self,
        cpu_id: int,
        config: SystemConfig,
        llc: Cache,
        memory,
        cotag_scheme: Optional[CoTagScheme],
        coherence_listener=None,
        fill_listener=None,
    ) -> None:
        self.cpu_id = cpu_id
        self.config = config
        self.costs: CostModel = config.costs
        tr = config.translation
        self.tlb_l1 = TLB(f"cpu{cpu_id}.l1tlb", tr.effective_l1_tlb)
        self.tlb_l2 = TLB(f"cpu{cpu_id}.l2tlb", tr.effective_l2_tlb)
        self.mmu_cache = MMUCache(f"cpu{cpu_id}.mmu", tr.effective_mmu_cache)
        self.ntlb = NestedTLB(f"cpu{cpu_id}.ntlb", tr.effective_ntlb)
        cache_cfg = config.cache
        self.l1 = Cache(
            f"cpu{cpu_id}.l1",
            cache_cfg.l1_size,
            cache_cfg.l1_associativity,
            cache_cfg.l1_latency,
        )
        self.l2 = Cache(
            f"cpu{cpu_id}.l2",
            cache_cfg.l2_size,
            cache_cfg.l2_associativity,
            cache_cfg.l2_latency,
        )
        self.hierarchy = CacheHierarchy(
            cpu_id, self.l1, self.l2, llc, memory, listener=coherence_listener
        )
        self.walker = PageTableWalker(
            hierarchy=self.hierarchy,
            tlb_l1=self.tlb_l1,
            tlb_l2=self.tlb_l2,
            mmu_cache=self.mmu_cache,
            ntlb=self.ntlb,
            cotag_scheme=cotag_scheme,
            fill_listener=fill_listener,
            l2_tlb_latency=self.costs.l2_tlb_latency,
        )

    # ------------------------------------------------------------------
    # translation and data access
    # ------------------------------------------------------------------
    def translate(
        self, ctx: AddressSpaceContext, gvp: int, is_write: bool = False
    ) -> TranslationOutcome:
        """Translate ``gvp`` in the given address space."""
        key = TLB.key_for(ctx.vm_id, gvp)
        cycles = self.costs.l1_tlb_latency
        hit = self.tlb_l1.lookup(key)
        if hit is not None:
            return TranslationOutcome(spp=hit.value, cycles=cycles, source="l1-tlb")

        cycles += self.costs.l2_tlb_latency
        hit = self.tlb_l2.lookup(key)
        if hit is not None:
            self.tlb_l1.insert(key, hit.value, cotag=hit.cotag, pt_line=hit.pt_line)
            return TranslationOutcome(spp=hit.value, cycles=cycles, source="l2-tlb")

        walk = self.walker.walk(ctx, gvp, is_write=is_write)
        cycles += walk.cycles
        return TranslationOutcome(
            spp=walk.spp, cycles=cycles, fault=walk.fault, source="walk"
        )

    def access_data(self, spa: int, is_write: bool = False) -> int:
        """Access data at a system physical address; return cycles."""
        return self.hierarchy.access(spa, is_write=is_write).cycles

    # ------------------------------------------------------------------
    # translation coherence entry points
    # ------------------------------------------------------------------
    def flush_translation_structures(self) -> InvalidationReport:
        """Flush TLBs, MMU cache and nTLB (the software baseline's action)."""
        report = InvalidationReport()
        report.tlb_entries += self.tlb_l1.flush()
        report.tlb_entries += self.tlb_l2.flush()
        report.mmu_entries += self.mmu_cache.flush()
        report.ntlb_entries += self.ntlb.flush()
        return report

    def invalidate_by_cotag(self, cotag: int) -> InvalidationReport:
        """Invalidate all translation entries whose co-tag matches (HATRIC)."""
        report = InvalidationReport()
        report.tlb_entries += self.tlb_l1.invalidate_matching_cotag(cotag)
        report.tlb_entries += self.tlb_l2.invalidate_matching_cotag(cotag)
        report.mmu_entries += self.mmu_cache.invalidate_matching_cotag(cotag)
        report.ntlb_entries += self.ntlb.invalidate_matching_cotag(cotag)
        return report

    def invalidate_tlb_by_line(self, pt_line: int) -> InvalidationReport:
        """Invalidate only TLB entries filled from ``pt_line`` (UNITD++)."""
        report = InvalidationReport()
        report.tlb_entries += self.tlb_l1.invalidate_matching_line(pt_line)
        report.tlb_entries += self.tlb_l2.invalidate_matching_line(pt_line)
        return report

    def invalidate_by_pt_line(self, pt_line: int) -> InvalidationReport:
        """Precisely invalidate every translation filled from ``pt_line``."""
        report = InvalidationReport()
        report.tlb_entries += self.tlb_l1.invalidate_matching_line(pt_line)
        report.tlb_entries += self.tlb_l2.invalidate_matching_line(pt_line)
        report.mmu_entries += self.mmu_cache.invalidate_matching_line(pt_line)
        report.ntlb_entries += self.ntlb.invalidate_matching_line(pt_line)
        return report

    def flush_mmu_and_ntlb(self) -> InvalidationReport:
        """Flush only the MMU cache and nTLB (UNITD++ cannot keep them coherent)."""
        report = InvalidationReport()
        report.mmu_entries += self.mmu_cache.flush()
        report.ntlb_entries += self.ntlb.flush()
        return report

    def invalidate_private_line(self, line: int) -> bool:
        """Invalidate one line from the private data caches."""
        return self.hierarchy.invalidate_line(line)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def translation_structures(self):
        """Return the four translation structures (for stats / energy)."""
        return (self.tlb_l1, self.tlb_l2, self.mmu_cache, self.ntlb)

    def resident_translation_entries(self) -> int:
        """Total entries currently cached across translation structures."""
        return sum(len(s) for s in self.translation_structures())
