"""Chip-level assembly: cores, shared LLC, coherence directory, memory.

The chip wires the per-core cache hierarchies and page table walkers to
the shared coherence directory, and offers the primitives translation
coherence protocols build on:

* :meth:`Chip.page_table_write` -- propagate a hypervisor store to a page
  table line through the cache coherence protocol (returning the sharer
  set so HATRIC can piggyback translation invalidations on it);
* back-invalidation handling when directory entries are evicted;
* lazy sharer demotion when spurious invalidations are observed.
"""

from __future__ import annotations

from typing import Optional

from repro.coherence.directory import (
    BackInvalidation,
    CoherenceDirectory,
    SharerKind,
    WriteOutcome,
)
from repro.core.cotag import CoTagScheme
from repro.cpu.core import CpuCore
from repro.mem.cache import Cache
from repro.mem.memory import TwoTierMemory
from repro.sim.config import (
    PLACEMENT_FAST_ONLY,
    SystemConfig,
)
from repro.sim.stats import MachineStats


class Chip:
    """The simulated multi-core chip."""

    def __init__(
        self,
        config: SystemConfig,
        stats: MachineStats,
        cotag_scheme: Optional[CoTagScheme] = None,
        track_translation_sharers: bool = True,
    ) -> None:
        self.config = config
        self.stats = stats
        self.cotag_scheme = cotag_scheme
        self.track_translation_sharers = track_translation_sharers

        mem_cfg = config.memory
        fast_frames = mem_cfg.fast_frames
        if config.placement == PLACEMENT_FAST_ONLY:
            # "Infinite" die-stacked DRAM: make the fast tier large enough
            # to hold everything so no paging is ever needed.
            fast_frames = mem_cfg.fast_frames + mem_cfg.slow_frames
        self.memory = TwoTierMemory(
            fast_frames=fast_frames,
            slow_frames=mem_cfg.slow_frames,
            fast_latency=mem_cfg.fast_latency,
            slow_latency=mem_cfg.slow_latency,
        )

        cache_cfg = config.cache
        self.llc = Cache(
            "llc",
            cache_cfg.llc_size,
            cache_cfg.llc_associativity,
            cache_cfg.llc_latency,
        )
        dir_cfg = config.directory
        self.directory = CoherenceDirectory(
            num_cpus=config.num_cpus,
            capacity=dir_cfg.capacity,
            lazy_pt_sharer_updates=dir_cfg.lazy_pt_sharer_updates,
            fine_grained=dir_cfg.fine_grained,
        )

        self.cores: list[CpuCore] = []
        for cpu_id in range(config.num_cpus):
            core = CpuCore(
                cpu_id=cpu_id,
                config=config,
                llc=self.llc,
                memory=self.memory,
                cotag_scheme=cotag_scheme,
                coherence_listener=_CacheListener(self, cpu_id),
                fill_listener=self._make_fill_listener(cpu_id),
            )
            self.cores.append(core)

    # ------------------------------------------------------------------
    # directory bookkeeping (driven by core activity)
    # ------------------------------------------------------------------
    def _make_fill_listener(self, cpu_id: int):
        def listener(kind: SharerKind, line: int, nested: bool, guest: bool) -> None:
            if kind is SharerKind.CACHE:
                # The walker found the accessed bit clear: mark the line's
                # page-table bits in the directory.
                back_invs = self.directory.mark_page_table_line(
                    line, nested=nested, guest=guest
                )
            elif self.track_translation_sharers:
                back_invs = self.directory.record_fill(
                    line, cpu_id, kind=kind, is_nested_pt=nested, is_guest_pt=guest
                )
            else:
                # Without hardware translation coherence the directory does
                # not know about translation structure contents; it still
                # learns the nPT/gPT bits so software can be compared fairly.
                back_invs = self.directory.mark_page_table_line(
                    line, nested=nested, guest=guest
                )
            self._apply_back_invalidations(back_invs)

        return listener

    def on_cache_fill(self, cpu_id: int, line: int, is_page_table: bool) -> None:
        """A line entered a CPU's private caches."""
        back_invs = self.directory.record_fill(
            line, cpu_id, kind=SharerKind.CACHE
        )
        self._apply_back_invalidations(back_invs)

    def on_cache_eviction(self, cpu_id: int, line: int, is_page_table: bool) -> None:
        """A line left a CPU's private caches.

        Under eager directory updates (the ``EGR-dir-update`` ablation of
        Figure 12) an eviction of a page-table line also probes the CPU's
        translation structures: the sharer may only be dropped when no
        cached translation from that line remains, which costs extra
        structure lookups.
        """
        if (
            is_page_table
            and not self.directory.lazy_pt_sharer_updates
            and self.track_translation_sharers
        ):
            self.stats.count("coherence.eager_structure_lookups", 4)
            core = self.cores[cpu_id]
            still_cached = any(
                entry.pt_line == line
                for structure in core.translation_structures()
                for entry in structure.entries()
            )
            if still_cached:
                return
        self.directory.record_eviction(line, cpu_id, kind=SharerKind.CACHE)

    def _apply_back_invalidations(
        self, back_invs: list[BackInvalidation]
    ) -> None:
        for back_inv in back_invs:
            self.stats.count("directory.back_invalidations")
            for cpu in back_inv.cpus:
                core = self.cores[cpu]
                core.invalidate_private_line(back_inv.line)
                if back_inv.is_page_table:
                    core.invalidate_by_pt_line(back_inv.line)

    # ------------------------------------------------------------------
    # the path protocols build on
    # ------------------------------------------------------------------
    def page_table_write(self, line: int, writer_cpu: int) -> WriteOutcome:
        """Propagate a store to a page-table line through cache coherence.

        Returns the directory's view of which other CPUs share the line
        and whether it is marked as nested / guest page table data.  The
        caller (a translation coherence protocol) decides what to do with
        the sharer set.
        """
        self.stats.count("directory.pt_writes")
        outcome = self.directory.record_write(line, writer_cpu)
        return outcome

    def invalidate_private_caches(self, line: int, cpus) -> int:
        """Invalidate ``line`` from the private caches of ``cpus``.

        Returns how many CPUs actually held the line (the rest received
        spurious messages, which are reported to the directory for lazy
        sharer demotion).
        """
        held = 0
        for cpu in cpus:
            if self.cores[cpu].invalidate_private_line(line):
                held += 1
        return held

    def note_spurious(self, line: int, cpu: int) -> None:
        """Report a spurious invalidation so the sharer list can be trimmed."""
        self.directory.note_spurious_invalidation(line, cpu)
        self.stats.count("coherence.spurious_invalidations")

    # ------------------------------------------------------------------
    # statistics management
    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        """Zero all hardware counters without touching simulated state.

        Used at the end of the warmup phase: cache, TLB and directory
        *contents* are preserved, only the statistics are discarded.
        """
        from repro.coherence.directory import DirectoryStats
        from repro.mem.cache import CacheStats
        from repro.translation.structures import TranslationStructureStats
        from repro.translation.walker import WalkStats

        for core in self.cores:
            core.l1.stats = CacheStats()
            core.l2.stats = CacheStats()
            core.walker.stats = WalkStats()
            for structure in core.translation_structures():
                structure.stats = TranslationStructureStats()
        self.llc.stats = CacheStats()
        self.directory.stats = DirectoryStats()
        self.memory.fast.accesses = 0
        self.memory.slow.accesses = 0

    # ------------------------------------------------------------------
    # introspection helpers
    # ------------------------------------------------------------------
    def core(self, cpu_id: int) -> CpuCore:
        """Return the core with the given id."""
        return self.cores[cpu_id]

    def all_translation_structures(self):
        """Yield every translation structure on the chip."""
        for core in self.cores:
            yield from core.translation_structures()

    def total_resident_translations(self) -> int:
        """Total cached translation entries across all cores."""
        return sum(core.resident_translation_entries() for core in self.cores)


class _CacheListener:
    """Adapter wiring a core's cache hierarchy callbacks to the chip."""

    def __init__(self, chip: Chip, cpu_id: int) -> None:
        self._chip = chip
        self._cpu_id = cpu_id

    def on_private_fill(self, cpu_id: int, line: int, is_page_table: bool) -> None:
        self._chip.on_cache_fill(self._cpu_id, line, is_page_table)

    def on_private_eviction(
        self, cpu_id: int, line: int, is_page_table: bool
    ) -> None:
        self._chip.on_cache_eviction(self._cpu_id, line, is_page_table)
