"""Adversarial scenario search: find HATRIC's worst (and best) cases.

The scenario engine (:mod:`repro.workloads.synthetic`) spans a large
parameter space; the experiment layer so far only *enumerates* fixed
grids of it.  This package *searches* the space: a deterministic,
seeded evolutionary loop (:func:`repro.search.engine.run_hunt`) mutates
and crosses :class:`~repro.workloads.synthetic.ScenarioSpec` knobs —
including multi-VM ``multi:`` topologies — to optimize a pluggable
objective (:mod:`repro.search.objectives`), e.g. maximizing the
software-shootdown-vs-ideal overhead.

Every evaluated candidate runs through the shared
:class:`~repro.api.session.Session` (content-addressed dedup, disk
cache, checkpoint reuse, process fan-out), and every result is checked
against the cross-protocol differential invariants
(:func:`repro.experiments.scenarios.check_invariants`).  A violation
does not score the candidate — it aborts the hunt with a
:class:`~repro.search.engine.HuntViolationError` carrying a reproducer
(the exact ``RunRequest`` payloads plus the hunt seed), because a
candidate that breaks an invariant is a simulator bug, not a search
result.

Front-end: ``python -m repro hunt``.  The discovered frontier is
committed as ``tests/golden/hunt_corpus.json`` so the worst cases found
become permanent regression inputs.
"""

from repro.search.engine import (
    CandidateEval,
    HuntResult,
    HuntSettings,
    HuntViolationError,
    run_hunt,
)
from repro.search.objectives import DEFAULT_OBJECTIVE, OBJECTIVES, Objective
from repro.search.report import corpus_from_result, format_hunt
from repro.search.space import (
    Candidate,
    candidate_domain_violations,
    crossover_candidates,
    mutate_candidate,
    random_candidate,
    seed_candidates,
)

__all__ = [
    "Candidate",
    "CandidateEval",
    "DEFAULT_OBJECTIVE",
    "HuntResult",
    "HuntSettings",
    "HuntViolationError",
    "OBJECTIVES",
    "Objective",
    "candidate_domain_violations",
    "corpus_from_result",
    "crossover_candidates",
    "format_hunt",
    "mutate_candidate",
    "random_candidate",
    "run_hunt",
    "seed_candidates",
]
