"""Hunt output: the frontier table and the committed scenario corpus.

The corpus file (``tests/golden/hunt_corpus.json``) snapshots the worst
cases a pinned hunt found, together with everything needed to replay
them: the full hunt settings and, per entry, the workload name plus its
recorded per-protocol runtimes and overhead ratios.  The regression
suite re-simulates every entry (across all three engines, via
``REPRO_VALIDATE_FASTPATH``) and checks the recorded protocol ordering
and ratios within :data:`CORPUS_TOLERANCE`; :func:`corpus_requests`
rebuilds an entry's exact :class:`~repro.api.request.RunRequest` list
so tests and stress harnesses share one replay path.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.api import RunRequest
from repro.experiments.output import render_table, violations_footer
from repro.experiments.scenarios import family_config
from repro.search.engine import HuntResult, hunt_base_config
from repro.search.objectives import OBJECTIVES
from repro.workloads.multi import MULTI_PREFIX, parse_topology_name
from repro.workloads.synthetic import parse_scenario_name

#: Corpus file schema version (bump on incompatible layout changes).
CORPUS_SCHEMA = 1

#: Relative tolerance on re-simulated overhead ratios.  Replays are
#: bit-identical today (all engines agree and the corpus records the
#: replay scale), so this is slack for deliberate future cost-model
#: retunes — within it, corpus entries survive; beyond it, regenerate.
CORPUS_TOLERANCE = 0.05


def format_hunt(result: HuntResult) -> str:
    """Render a finished hunt as the frontier table plus a verdict."""
    objective = OBJECTIVES[result.settings.objective]
    columns = [
        "rank",
        "workload",
        objective.key,
        "sw/ideal",
        "hatric/ideal",
        "sw/hatric",
        "gen",
    ]
    rows = []
    for rank, entry in enumerate(result.frontier, start=1):
        metrics = entry.metrics
        rows.append(
            [
                rank,
                entry.workload,
                f"{entry.metric:.4f}",
                _cell(metrics.get("software_over_ideal")),
                _cell(metrics.get("hatric_over_ideal")),
                _cell(metrics.get("software_over_hatric")),
                entry.generation,
            ]
        )
    lines = [
        f"hunt: {len(result.evaluations)} evaluations over "
        f"{result.generations} generations, objective {objective.key} "
        f"({objective.description})",
        "",
        render_table(columns, rows),
        "",
    ]
    lines.extend(
        violations_footer({entry.workload: [] for entry in result.frontier})
    )
    return "\n".join(lines)


def _cell(value: Optional[float]) -> str:
    return f"{value:.4f}" if value is not None else "-"


def corpus_from_result(
    result: HuntResult,
    entries: Optional[int] = None,
) -> dict[str, Any]:
    """Serialize a hunt's frontier as a corpus payload (JSON-ready)."""
    frontier = result.frontier[: entries if entries else len(result.frontier)]
    return {
        "schema": CORPUS_SCHEMA,
        "tolerance": CORPUS_TOLERANCE,
        "settings": result.settings.to_dict(),
        "entries": [
            {
                "workload": entry.workload,
                "metric": entry.metric,
                "metrics": dict(entry.metrics),
                "runtime_cycles": dict(entry.runtime_cycles),
            }
            for entry in frontier
        ],
    }


def workload_families(workload: str) -> list[str]:
    """The distinct scenario families a hunt workload name touches."""
    if workload.startswith(MULTI_PREFIX):
        topology = parse_topology_name(workload)
        return sorted(
            {
                parse_scenario_name(guest.workload).family
                for guest in topology.guests
            }
        )
    return [parse_scenario_name(workload).family]


def corpus_requests(
    corpus: Mapping[str, Any],
    entry: Mapping[str, Any],
    engine: str = "",
) -> list[RunRequest]:
    """Rebuild one corpus entry's exact per-protocol requests.

    Reconstructs the machine the hunt evaluated the entry on from the
    corpus settings (baseline config at the recorded CPU count, plus
    the per-family paging knobs its workload name implies).
    """
    settings = corpus["settings"]
    config = hunt_base_config(settings["num_cpus"])
    for family in workload_families(entry["workload"]):
        config = family_config(config, family)
    return [
        RunRequest(
            config=config.with_protocol(protocol),
            workload=entry["workload"],
            refs_total=settings["refs_total"],
            warmup_refs=settings["warmup_refs"],
            engine=engine,
        )
        for protocol in settings["protocols"]
    ]


__all__ = [
    "CORPUS_SCHEMA",
    "CORPUS_TOLERANCE",
    "corpus_from_result",
    "corpus_requests",
    "format_hunt",
    "workload_families",
]
