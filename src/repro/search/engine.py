"""The hunt loop: seeded evolutionary search over scenario candidates.

Determinism story (load-bearing — the CLI and tests assert it):

* every random decision flows through one ``numpy`` generator seeded
  from :attr:`HuntSettings.seed`;
* selection depends only on simulation results, which are bit-identical
  across engines, serial vs. ProcessPool sessions, and cache-hit vs.
  cold runs;
* ranking ties break on the candidate's canonical workload name.

So a hunt is a pure function of (settings, base config): repeating it
replays the exact same request sequence, which also makes hunts
*cache-resumable* — an interrupted or re-run hunt turns into pure disk
cache hits up to the point it previously reached.  Candidates issue
absolute ``warmup_refs`` (never a warmup fraction) so their requests
fall into checkpoint families that neighboring ``refs_total`` points
can reuse.

Every evaluated candidate is validated with
:func:`repro.experiments.scenarios.check_invariants`; a violation
raises :class:`HuntViolationError` with a reproducer instead of scoring
the candidate, because an invariant-breaking scenario is a simulator
bug the hunt just found.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Optional

import numpy as np

from repro.api import RunRequest, Session
from repro.experiments.runner import baseline_config
from repro.obs.trace import active_tracer
from repro.experiments.scenarios import InvariantViolation, check_invariants
from repro.search.objectives import DEFAULT_OBJECTIVE, OBJECTIVES, Objective
from repro.search.space import (
    Candidate,
    crossover_candidates,
    mutate_candidate,
    random_candidate,
    seed_candidates,
)
from repro.sim.config import MemoryConfig, PagingConfig, SystemConfig

#: Ratio columns reported for every evaluation (numerator, denominator).
_METRIC_PAIRS = (
    ("software", "ideal"),
    ("hatric", "ideal"),
    ("software", "hatric"),
)

#: Salt mixed with the user seed so hunt streams are unrelated to the
#: workload-generation streams that consume the same small seeds.
_HUNT_SEED_SALT = 0x48554E54  # "HUNT"


def hunt_base_config(num_cpus: int) -> SystemConfig:
    """The default hunt machine: the baseline under real memory pressure.

    Translation coherence only costs anything when remaps hit *live*
    translations, which needs the die-stacked tier to be smaller than
    the working sets the search explores (on the unpressured baseline
    most of the scenario domain scores a flat 1.0x and the hunt has no
    gradient).  So the hunt machine keeps the baseline cores, caches
    and TLBs but shrinks the fast tier well below the footprint domain
    and runs the eager migration daemon without prefetch — the same
    pressured shape as the differential matrix machine, which keeps
    hunt scores comparable to the fixed-matrix scenarios.
    """
    return baseline_config(
        num_cpus=num_cpus,
        memory=MemoryConfig(fast_frames=256, slow_frames=8192),
        paging=PagingConfig(
            policy="lru",
            migration_daemon=True,
            daemon_free_target=16,
            prefetch_pages=0,
        ),
    )


@dataclass(frozen=True)
class HuntSettings:
    """Everything that determines a hunt (and hence its result).

    Attributes:
        objective: key into :data:`repro.search.objectives.OBJECTIVES`.
        budget: unique candidate evaluations before stopping.
        seed: hunt seed; same settings + same seed = bit-identical hunt.
        protocols: protocols simulated per candidate (must cover the
            objective's ratio and ``ideal``/``hatric``/``software`` for
            the invariant oracle to have teeth).
        num_cpus: pCPUs of the simulated machine.
        refs_total: total references per simulation.
        warmup_refs: absolute per-stream warmup (keeps requests in
            reusable checkpoint families; see module docstring).
        population: candidates bred per generation.
        parents: top-ranked evaluations breeding the next generation.
        fresh_fraction: probability a child is a fresh random immigrant.
        crossover_fraction: probability a child is a parent crossover.
        max_guests: guest ceiling for ``multi:`` candidates.
        multi_probability: probability a random immigrant is multi-VM.
        frontier_size: evaluations kept in the reported frontier.
    """

    objective: str = DEFAULT_OBJECTIVE
    budget: int = 50
    seed: int = 0
    protocols: tuple[str, ...] = ("software", "hatric", "ideal")
    num_cpus: int = 8
    refs_total: int = 12_000
    warmup_refs: int = 192
    population: int = 8
    parents: int = 4
    fresh_fraction: float = 0.15
    crossover_fraction: float = 0.25
    max_guests: int = 2
    multi_probability: float = 0.2
    frontier_size: int = 8

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            known = ", ".join(OBJECTIVES)
            raise ValueError(
                f"unknown objective {self.objective!r}; known: {known}"
            )
        missing = [
            protocol
            for protocol in OBJECTIVES[self.objective].protocols
            if protocol not in self.protocols
        ]
        if missing:
            raise ValueError(
                f"objective {self.objective!r} needs protocols "
                f"{missing} in the hunt's protocol set {self.protocols}"
            )
        if self.budget <= 0:
            raise ValueError("budget must be positive")
        if self.population <= 0 or self.parents <= 0:
            raise ValueError("population and parents must be positive")
        if self.num_cpus <= 0:
            raise ValueError("num_cpus must be positive")
        if self.refs_total <= 0 or self.warmup_refs < 0:
            raise ValueError("refs_total must be positive, warmup_refs >= 0")
        if self.frontier_size <= 0:
            raise ValueError("frontier_size must be positive")

    def scaled(self, factor: float) -> "HuntSettings":
        """Scale simulation length (refs and warmup) by ``factor``."""
        if factor == 1.0:
            return self
        changes = {
            "refs_total": max(256, int(self.refs_total * factor)),
            "warmup_refs": max(16, int(self.warmup_refs * factor)),
        }
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values.update(changes)
        return HuntSettings(**values)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form (stable key order)."""
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["protocols"] = list(self.protocols)
        return payload


@dataclass(frozen=True)
class CandidateEval:
    """One scored candidate evaluation.

    ``metric`` is the objective's raw ratio; ``fitness`` is the signed
    ranking value (bigger always better).  ``metrics`` holds every
    standard protocol ratio computable from the hunt's protocol set.
    """

    workload: str
    generation: int
    order: int
    metric: float
    fitness: float
    metrics: dict[str, float]
    runtime_cycles: dict[str, int]
    coherence_cycles: dict[str, int]

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {
            "workload": self.workload,
            "generation": self.generation,
            "order": self.order,
            "metric": self.metric,
            "metrics": dict(self.metrics),
            "runtime_cycles": dict(self.runtime_cycles),
            "coherence_cycles": dict(self.coherence_cycles),
        }


@dataclass
class HuntResult:
    """A completed hunt: every evaluation plus the ranked frontier."""

    settings: HuntSettings
    generations: int = 0
    evaluations: list[CandidateEval] = field(default_factory=list)
    frontier: list[CandidateEval] = field(default_factory=list)

    @property
    def best(self) -> Optional[CandidateEval]:
        """The frontier head (None for an empty hunt)."""
        return self.frontier[0] if self.frontier else None

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {
            "settings": self.settings.to_dict(),
            "generations": self.generations,
            "evaluated": len(self.evaluations),
            "best": self.best.to_dict() if self.best else None,
            "frontier": [entry.to_dict() for entry in self.frontier],
            "evaluations": [entry.to_dict() for entry in self.evaluations],
        }


class HuntViolationError(RuntimeError):
    """A candidate broke a cross-protocol invariant: simulator bug found.

    Carries the structured violations and a self-contained reproducer:
    the candidate's exact :class:`RunRequest` payloads (serialized via
    ``to_dict``) plus the hunt seed, so the failure replays without
    re-running the search.
    """

    def __init__(
        self,
        workload: str,
        violations: list[InvariantViolation],
        reproducer: dict[str, Any],
    ) -> None:
        summary = "; ".join(str(violation) for violation in violations)
        super().__init__(
            f"invariant violation on candidate {workload!r}: {summary}"
        )
        self.workload = workload
        self.violations = violations
        self.reproducer = reproducer


def candidate_requests(
    candidate: Candidate,
    settings: HuntSettings,
    base: Optional[SystemConfig] = None,
) -> list[RunRequest]:
    """The per-protocol requests evaluating one candidate."""
    if base is None:
        base = hunt_base_config(settings.num_cpus)
    config = candidate.configure(base.replace(num_cpus=settings.num_cpus))
    workload = candidate.workload_name(settings.num_cpus)
    return [
        RunRequest(
            config=config.with_protocol(protocol),
            workload=workload,
            refs_total=settings.refs_total,
            warmup_refs=settings.warmup_refs,
        )
        for protocol in settings.protocols
    ]


def _ratios(results: dict[str, Any]) -> dict[str, float]:
    out: dict[str, float] = {}
    for numerator, denominator in _METRIC_PAIRS:
        if numerator in results and denominator in results:
            out[f"{numerator}_over_{denominator}"] = (
                results[numerator].runtime_cycles
                / max(1, results[denominator].runtime_cycles)
            )
    return out


def _evaluate(
    name: str,
    candidate: Candidate,
    results: dict[str, Any],
    objective: Objective,
    settings: HuntSettings,
    base: Optional[SystemConfig],
    generation: int,
    order: int,
) -> CandidateEval:
    violations = check_invariants(results)
    if violations:
        raise HuntViolationError(
            name,
            violations,
            reproducer={
                "workload": name,
                "hunt_seed": settings.seed,
                "objective": settings.objective,
                "violations": [v.to_dict() for v in violations],
                "requests": [
                    request.to_dict()
                    for request in candidate_requests(candidate, settings, base)
                ],
            },
        )
    metric = objective.metric(results)
    return CandidateEval(
        workload=name,
        generation=generation,
        order=order,
        metric=metric,
        fitness=objective.fitness(metric),
        metrics=_ratios(results),
        runtime_cycles={
            protocol: result.runtime_cycles
            for protocol, result in results.items()
        },
        coherence_cycles={
            protocol: result.coherence_cycles
            for protocol, result in results.items()
        },
    )


def _breed(
    parents: list[Candidate],
    rng: np.random.Generator,
    settings: HuntSettings,
    taken: set[str],
) -> list[Candidate]:
    """The next generation; every child's name is new to the hunt."""
    children: list[Candidate] = []
    names: set[str] = set()
    attempts = 0
    while len(children) < settings.population and attempts < 20 * settings.population:
        attempts += 1
        roll = float(rng.random())
        if not parents or roll < settings.fresh_fraction:
            child = random_candidate(
                rng, settings.max_guests, settings.multi_probability
            )
        elif (
            len(parents) >= 2
            and roll < settings.fresh_fraction + settings.crossover_fraction
        ):
            first = int(rng.integers(len(parents)))
            second = int(rng.integers(len(parents) - 1))
            second += second >= first
            child = crossover_candidates(parents[first], parents[second], rng)
        else:
            parent = parents[int(rng.integers(len(parents)))]
            child = mutate_candidate(parent, rng, settings.max_guests)
        name = child.workload_name(settings.num_cpus)
        if name in taken or name in names:
            continue
        names.add(name)
        children.append(child)
    return children


def run_hunt(
    settings: HuntSettings,
    session: Session,
    base: Optional[SystemConfig] = None,
) -> HuntResult:
    """Run one budgeted hunt through ``session``.

    ``base`` overrides the machine template (its ``num_cpus`` is forced
    to ``settings.num_cpus``; per-family paging knobs are applied per
    candidate).  Each generation's candidates are evaluated as a single
    deduplicated :meth:`~repro.api.session.Session.run_matrix` batch, so
    a parallel session fans the whole generation out at once.

    Raises :class:`HuntViolationError` on the first invariant-breaking
    candidate.
    """
    objective = OBJECTIVES[settings.objective]
    rng = np.random.default_rng((_HUNT_SEED_SALT, settings.seed))

    evaluated: dict[str, CandidateEval] = {}
    candidates: dict[str, Candidate] = {}
    evaluations: list[CandidateEval] = []

    population = seed_candidates(settings.seed)
    while len(population) < settings.population:
        population.append(
            random_candidate(rng, settings.max_guests, settings.multi_probability)
        )

    generation = 0
    stalls = 0
    while len(evaluated) < settings.budget and stalls < 10:
        batch: list[tuple[str, Candidate]] = []
        for candidate in population:
            name = candidate.workload_name(settings.num_cpus)
            if name in evaluated or any(name == seen for seen, _ in batch):
                continue
            batch.append((name, candidate))
            if len(evaluated) + len(batch) >= settings.budget:
                break
        if not batch:
            # The whole generation collided with already-evaluated
            # names; re-seed with random immigrants (bounded by stalls).
            stalls += 1
            population = [
                random_candidate(
                    rng, settings.max_guests, settings.multi_probability
                )
                for _ in range(settings.population)
            ]
            continue
        stalls = 0

        tracer = active_tracer()
        generation_start = tracer.now() if tracer else 0.0
        groups = session.run_matrix(
            [
                candidate_requests(candidate, settings, base)
                for _, candidate in batch
            ]
        )
        for (name, candidate), group in zip(batch, groups):
            results = dict(zip(settings.protocols, group))
            entry = _evaluate(
                name,
                candidate,
                results,
                objective,
                settings,
                base,
                generation,
                order=len(evaluations),
            )
            evaluated[name] = entry
            candidates[name] = candidate
            evaluations.append(entry)

        if tracer:
            tracer.complete(
                "hunt.generation", "hunt", generation_start,
                generation=generation,
                candidates=len(batch),
                evaluated=len(evaluated),
            )
        generation += 1
        ranked = sorted(
            evaluated.values(), key=lambda e: (-e.fitness, e.workload)
        )
        parents = [
            candidates[entry.workload]
            for entry in ranked[: settings.parents]
        ]
        population = _breed(parents, rng, settings, set(evaluated))

    ranked = sorted(evaluated.values(), key=lambda e: (-e.fitness, e.workload))
    return HuntResult(
        settings=settings,
        generations=generation,
        evaluations=evaluations,
        frontier=ranked[: settings.frontier_size],
    )


__all__ = [
    "CandidateEval",
    "HuntResult",
    "HuntSettings",
    "HuntViolationError",
    "candidate_requests",
    "hunt_base_config",
    "run_hunt",
]
