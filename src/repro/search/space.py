"""The candidate space of the adversarial search.

A :class:`Candidate` is one *machine-shaped* scenario: a tuple of guest
:class:`~repro.workloads.synthetic.ScenarioSpec` values plus a VM
sharing model.  A single guest materializes as its plain ``syn:`` name;
multiple guests compose into a canonical ``multi:`` topology name whose
per-guest vCPU counts are derived from the machine's pCPU count (all
pCPUs per guest under ``shared`` consolidation, an even split under
``pinned``).  Names are the dedup/cache identity of a candidate, so
equal candidates always hit the same Session cache entry.

The spec-level moves (domain table, mutation, crossover) live in
:mod:`repro.workloads.synthetic` (`SEARCH_DOMAIN`, `mutate_spec`,
`crossover_specs`, `random_spec`); this module lifts them to whole
candidates and adds the topology-level moves: add/drop a guest and flip
the sharing model.

All randomness flows through an explicit :class:`numpy.random.Generator`
so hunts are deterministic functions of their seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.scenarios import SCENARIO_FAMILIES, family_config
from repro.sim.config import SystemConfig
from repro.workloads.multi import MULTI_PREFIX
from repro.workloads.synthetic import (
    ScenarioSpec,
    crossover_specs,
    mutate_spec,
    random_spec,
    scenario_spec,
    spec_domain_violations,
)

#: VM-level sharing models a multi-guest candidate may use (the
#: process-level sharing inside each guest is a spec knob).
CANDIDATE_SHARINGS = ("pinned", "shared")

#: Ceiling on guests per candidate (the search never consolidates
#: further than this; the CLI can lower it).
MAX_GUESTS = 3


@dataclass(frozen=True)
class Candidate:
    """One point of the search space: guest specs plus VM sharing.

    ``sharing`` only matters for multi-guest candidates; single-guest
    candidates are normalized to ``pinned`` so equal scenarios always
    carry equal names.
    """

    guests: tuple[ScenarioSpec, ...]
    sharing: str = "pinned"

    def __post_init__(self) -> None:
        if not self.guests:
            raise ValueError("a candidate needs at least one guest")
        if len(self.guests) > MAX_GUESTS:
            raise ValueError(f"at most {MAX_GUESTS} guests per candidate")
        if self.sharing not in CANDIDATE_SHARINGS:
            raise ValueError(
                f"unknown candidate sharing {self.sharing!r}; known: "
                f"{', '.join(CANDIDATE_SHARINGS)}"
            )
        if len(self.guests) == 1 and self.sharing != "pinned":
            raise ValueError("single-guest candidates are always pinned")

    def workload_name(self, num_cpus: int) -> str:
        """Canonical workload name on a ``num_cpus``-pCPU machine.

        Round-trips through :func:`repro.workloads.make_workload`: a
        plain ``syn:`` name for one guest, a ``multi:`` topology name
        otherwise.
        """
        if len(self.guests) == 1:
            return self.guests[0].name
        vcpus = self.guest_vcpus(num_cpus)
        # ``@1`` is the topology-name default and must stay implicit,
        # or the name would not be canonical (cache keys would differ
        # from the equal name-built topology).
        suffix = f"@{vcpus}" if vcpus != 1 else ""
        parts = [f"{guest.name}{suffix}" for guest in self.guests]
        if self.sharing == "shared":
            parts.append("share=shared")
        return MULTI_PREFIX + "+".join(parts)

    def guest_vcpus(self, num_cpus: int) -> int:
        """vCPUs per guest: all pCPUs when shared, an even split pinned."""
        if self.sharing == "shared":
            return num_cpus
        return max(1, num_cpus // len(self.guests))

    def configure(self, base: SystemConfig) -> SystemConfig:
        """Apply every guest family's config knobs to a base system."""
        for family in sorted({guest.family for guest in self.guests}):
            base = family_config(base, family)
        return base


def candidate_domain_violations(candidate: Candidate) -> list[str]:
    """Explain how ``candidate`` falls outside the search domain."""
    violations: list[str] = []
    for index, guest in enumerate(candidate.guests):
        violations.extend(
            f"guest {index}: {violation}"
            for violation in spec_domain_violations(guest)
        )
    return violations


def seed_candidates(seed: int = 0) -> list[Candidate]:
    """The deterministic starting points of a hunt.

    One preset per scenario family, plus three deliberately hostile
    shapes — a tight-burst migration-daemon guest with a working set
    well past the fast tier (alone and as a shared two-guest
    consolidation) and a private-sharing strided compaction grinder at
    the tightest burst cadence — so the search starts at the
    known-adversarial regions of the space instead of having to
    rediscover them from the mild family presets.
    """
    base = seed & 0xFFFF
    candidates = [
        Candidate(guests=(scenario_spec(family, seed=base),))
        for family in SCENARIO_FAMILIES
    ]
    hostile = scenario_spec(
        "migration-daemon",
        seed=base,
        footprint_pages=420,
        hot_fraction=0.5,
        burst_interval=100,
        burst_length=30,
    )
    candidates.append(Candidate(guests=(hostile,)))
    candidates.append(
        Candidate(
            guests=(hostile, hostile.replace(seed=(base + 1) & 0xFFFF)),
            sharing="shared",
        )
    )
    grinder = scenario_spec(
        "compaction",
        seed=base,
        address_model="strided",
        sharing="private",
        footprint_pages=420,
        hot_fraction=0.5,
        burst_interval=50,
    )
    candidates.append(Candidate(guests=(grinder,)))
    return candidates


def random_candidate(
    rng: np.random.Generator,
    max_guests: int = 2,
    multi_probability: float = 0.2,
) -> Candidate:
    """Draw a random candidate; multi-guest with ``multi_probability``."""
    max_guests = max(1, min(max_guests, MAX_GUESTS))
    count = 1
    if max_guests > 1 and float(rng.random()) < multi_probability:
        count = 2 + int(rng.integers(max_guests - 1))
    guests = tuple(random_spec(rng) for _ in range(count))
    sharing = "pinned"
    if count > 1 and float(rng.random()) < 0.5:
        sharing = "shared"
    return Candidate(guests=guests, sharing=sharing)


def mutate_candidate(
    candidate: Candidate,
    rng: np.random.Generator,
    max_guests: int = 2,
) -> Candidate:
    """One local move: usually a spec mutation, sometimes a topology move.

    Moves, by decreasing probability: mutate 1–2 knobs of one guest
    (70%), add a mutated clone of an existing guest (10%, below the
    guest ceiling), flip the VM sharing model (10%, multi-guest only),
    drop one guest (10%, multi-guest only).  Probability mass of
    inapplicable moves falls through to the spec mutation.
    """
    max_guests = max(1, min(max_guests, MAX_GUESTS))
    guests = list(candidate.guests)
    sharing = candidate.sharing
    roll = float(rng.random())
    if roll < 0.10 and len(guests) < max_guests:
        source = guests[int(rng.integers(len(guests)))]
        guests.insert(
            int(rng.integers(len(guests) + 1)),
            mutate_spec(source, rng, knobs=2),
        )
    elif roll < 0.20 and len(guests) > 1:
        del guests[int(rng.integers(len(guests)))]
    elif roll < 0.30 and len(guests) > 1:
        sharing = "shared" if sharing == "pinned" else "pinned"
    else:
        index = int(rng.integers(len(guests)))
        knobs = 2 if float(rng.random()) < 0.3 else 1
        guests[index] = mutate_spec(guests[index], rng, knobs=knobs)
    if len(guests) == 1:
        sharing = "pinned"
    return Candidate(guests=tuple(guests), sharing=sharing)


def crossover_candidates(
    a: Candidate,
    b: Candidate,
    rng: np.random.Generator,
) -> Candidate:
    """Cross two candidates: ``a``'s shape, guests crossed with ``b``'s."""
    guests = tuple(
        crossover_specs(guest, b.guests[index % len(b.guests)], rng)
        for index, guest in enumerate(a.guests)
    )
    donor = b if float(rng.random()) < 0.5 else a
    sharing = donor.sharing if len(guests) > 1 else "pinned"
    return Candidate(guests=guests, sharing=sharing)


__all__ = [
    "CANDIDATE_SHARINGS",
    "Candidate",
    "MAX_GUESTS",
    "candidate_domain_violations",
    "crossover_candidates",
    "mutate_candidate",
    "random_candidate",
    "seed_candidates",
]
