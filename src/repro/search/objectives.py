"""Pluggable search objectives: which protocol gap the hunt optimizes.

Every objective is a runtime ratio between two protocols, maximized or
minimized.  The engine turns the raw metric into a signed *fitness*
(bigger is always better) so ranking code never branches on direction.

The default objective maximizes the software-shootdown-vs-ideal
overhead — the paper's headline gap — because scenarios that blow it up
are exactly the consolidation shapes where HATRIC's hardware coherence
pays off most.  ``hatric-parity`` inverts the software-vs-HATRIC gap to
hunt for shapes where HATRIC stops paying off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.sim.simulator import SimulationResult


@dataclass(frozen=True)
class Objective:
    """One search objective: a runtime ratio and a direction.

    Attributes:
        key: CLI/corpus identifier.
        description: one-line human description.
        numerator / denominator: the protocols whose runtime ratio is
            the raw metric; both must be part of the hunt's protocol
            set.
        maximize: whether bigger metrics are better.
    """

    key: str
    description: str
    numerator: str
    denominator: str
    maximize: bool = True

    @property
    def protocols(self) -> tuple[str, str]:
        """Protocols this objective needs simulated."""
        return (self.numerator, self.denominator)

    def metric(self, results: Mapping[str, SimulationResult]) -> float:
        """The raw metric: numerator runtime over denominator runtime."""
        numerator = results[self.numerator].runtime_cycles
        denominator = max(1, results[self.denominator].runtime_cycles)
        return numerator / denominator

    def fitness(self, metric: float) -> float:
        """Signed ranking value — bigger is always better."""
        return metric if self.maximize else -metric


#: Registry of objectives, keyed for the CLI (declaration order is the
#: ``--objective`` choice order).
OBJECTIVES: dict[str, Objective] = {
    objective.key: objective
    for objective in (
        Objective(
            key="software-overhead",
            description="maximize software-shootdown runtime over ideal",
            numerator="software",
            denominator="ideal",
        ),
        Objective(
            key="hatric-overhead",
            description="maximize HATRIC runtime over ideal",
            numerator="hatric",
            denominator="ideal",
        ),
        Objective(
            key="protocol-gap",
            description="maximize software runtime over HATRIC",
            numerator="software",
            denominator="hatric",
        ),
        Objective(
            key="hatric-parity",
            description=(
                "minimize software runtime over HATRIC — find where "
                "HATRIC stops paying off"
            ),
            numerator="software",
            denominator="hatric",
            maximize=False,
        ),
    )
}

DEFAULT_OBJECTIVE = "software-overhead"

__all__ = ["DEFAULT_OBJECTIVE", "OBJECTIVES", "Objective"]
