"""Figure 13: HATRIC versus UNITD++.

UNITD++ is UNITD upgraded with virtualization support and coherence
directory integration.  Both hardware mechanisms beat software
coherence, but HATRIC adds another 5-10% of performance by also keeping
MMU caches and nTLBs coherent (UNITD++ must flush them on every remap),
and it is more energy-efficient because its narrow co-tags replace
UNITD's reverse-lookup CAM.  Runtime and energy are normalized to the
system without die-stacked DRAM, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.api import ExperimentScale, Session, Sweep
from repro.experiments._grid import indexed_lookup
from repro.experiments.runner import PAPER_WORKLOADS, baseline_config
from repro.sim.config import PLACEMENT_PAGED, PLACEMENT_SLOW_ONLY, SystemConfig

FIGURE13_SERIES = ("sw", "unitd++", "hatric")
_PROTOCOL_OF_SERIES = {"sw": "software", "unitd++": "unitd", "hatric": "hatric"}


def _configure(config: SystemConfig, coords: Mapping[str, Any]) -> SystemConfig:
    series = coords["series"]
    if series == "no-hbm":
        protocol, placement = "ideal", PLACEMENT_SLOW_ONLY
    else:
        protocol, placement = _PROTOCOL_OF_SERIES[series], PLACEMENT_PAGED
    return config.replace(protocol=protocol, placement=placement)


@dataclass
class Figure13Cell:
    """One workload under one mechanism."""

    workload: str
    series: str
    normalized_runtime: float
    normalized_energy: float


@dataclass
class Figure13Result:
    """All bars of Figure 13."""

    cells: list[Figure13Cell] = field(default_factory=list)

    def value(self, workload: str, series: str) -> Figure13Cell:
        """Return the cell for one workload/mechanism pair (O(1))."""
        return indexed_lookup(
            self,
            self.cells,
            lambda c: (c.workload, c.series),
            (workload, series),
        )


def sweep_figure13(
    workloads: Sequence[str] = PAPER_WORKLOADS, num_cpus: int = 16
) -> Sweep:
    """The declarative sweep behind Figure 13."""
    return Sweep(
        axes={"workload": tuple(workloads), "series": FIGURE13_SERIES},
        base=baseline_config(num_cpus),
        configure=_configure,
    ).normalize_to(series="no-hbm")


def run_figure13(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    num_cpus: int = 16,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
) -> Figure13Result:
    """Regenerate Figure 13."""
    grid = sweep_figure13(workloads, num_cpus).run(session=session, scale=scale)
    result = Figure13Result()
    for cell in grid:
        result.cells.append(
            Figure13Cell(
                workload=cell.coords["workload"],
                series=cell.coords["series"],
                normalized_runtime=cell.normalized_runtime,
                normalized_energy=cell.normalized_energy,
            )
        )
    return result


def format_figure13(result: Figure13Result) -> str:
    """Render the comparison as a table."""
    header = f"{'workload':<14}{'series':>9}{'runtime':>10}{'energy':>10}"
    lines = [header, "-" * len(header)]
    for cell in result.cells:
        lines.append(
            f"{cell.workload:<14}{cell.series:>9}"
            f"{cell.normalized_runtime:>10.3f}{cell.normalized_energy:>10.3f}"
        )
    return "\n".join(lines)
