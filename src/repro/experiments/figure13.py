"""Figure 13: HATRIC versus UNITD++.

UNITD++ is UNITD upgraded with virtualization support and coherence
directory integration.  Both hardware mechanisms beat software
coherence, but HATRIC adds another 5-10% of performance by also keeping
MMU caches and nTLBs coherent (UNITD++ must flush them on every remap),
and it is more energy-efficient because its narrow co-tags replace
UNITD's reverse-lookup CAM.  Runtime and energy are normalized to the
system without die-stacked DRAM, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.runner import (
    PAPER_WORKLOADS,
    ExperimentScale,
    baseline_config,
    no_hbm_config,
    run_configuration,
)

FIGURE13_SERIES = ("sw", "unitd++", "hatric")
_PROTOCOL_OF_SERIES = {"sw": "software", "unitd++": "unitd", "hatric": "hatric"}


@dataclass
class Figure13Cell:
    """One workload under one mechanism."""

    workload: str
    series: str
    normalized_runtime: float
    normalized_energy: float


@dataclass
class Figure13Result:
    """All bars of Figure 13."""

    cells: list[Figure13Cell] = field(default_factory=list)

    def value(self, workload: str, series: str) -> Figure13Cell:
        """Return the cell for one workload/mechanism pair."""
        for cell in self.cells:
            if cell.workload == workload and cell.series == series:
                return cell
        raise KeyError((workload, series))


def run_figure13(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    num_cpus: int = 16,
    scale: Optional[ExperimentScale] = None,
) -> Figure13Result:
    """Regenerate Figure 13."""
    scale = scale or ExperimentScale.from_environment()
    result = Figure13Result()
    for name in workloads:
        baseline = run_configuration(no_hbm_config(num_cpus), name, scale)
        for series in FIGURE13_SERIES:
            run = run_configuration(
                baseline_config(num_cpus, protocol=_PROTOCOL_OF_SERIES[series]),
                name,
                scale,
            )
            result.cells.append(
                Figure13Cell(
                    workload=name,
                    series=series,
                    normalized_runtime=run.normalized_runtime(baseline),
                    normalized_energy=run.normalized_energy(baseline),
                )
            )
    return result


def format_figure13(result: Figure13Result) -> str:
    """Render the comparison as a table."""
    header = f"{'workload':<14}{'series':>9}{'runtime':>10}{'energy':>10}"
    lines = [header, "-" * len(header)]
    for cell in result.cells:
        lines.append(
            f"{cell.workload:<14}{cell.series:>9}"
            f"{cell.normalized_runtime:>10.3f}{cell.normalized_energy:>10.3f}"
        )
    return "\n".join(lines)
