"""Consolidation study: protocol x guest-count x sharing-model sweep.

The paper's headline claim is about *consolidated* virtualized systems:
several guests share one machine, the hypervisor remaps pages under
them, and software translation coherence pays cross-VM shootdowns that
HATRIC's precise, co-tag-directed invalidation avoids.  This experiment
makes that axis explicit.  Each grid point is one ``multi:`` workload
(N copies of a tenant workload, composed by
:mod:`repro.workloads.multi`) under one vCPU placement model:

* ``pinned`` -- guests get dedicated pCPU blocks; a shootdown aimed at
  one guest only lands on its own CPUs;
* ``shared`` -- every guest spans the whole machine, so each pCPU's
  translation structures serve several guests and a software shootdown
  for one guest flushes the others' cached translations too.

The sweep runs through the shared :class:`~repro.api.session.Session`,
normalizes to the ideal protocol when present, and validates the
differential invariants (ideal <= all, hatric <= software, identical
retired references) for every consolidated shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.api import ExperimentScale, Session, Sweep
from repro.experiments.output import render_table, violations_footer
from repro.experiments.runner import baseline_config
from repro.experiments.scenarios import differential_violations
from repro.sim.config import (
    GuestConfig,
    SystemConfig,
    VM_SHARING_MODELS,
    VM_SHARING_SHARED,
    VmTopology,
)
from repro.workloads.multi import parse_topology_name
from repro.workloads.synthetic import scenario_spec

#: Protocols the consolidation study compares by default.
CONSOLIDATION_PROTOCOLS = ("software", "hatric", "ideal")

#: Guest counts swept by default.
DEFAULT_GUEST_COUNTS = (1, 2)

#: Default per-guest tenant workload: the migration-daemon scenario is
#: the paper's steady-state remap source and separates the protocols at
#: modest trace lengths.
def default_guest_workload(seed: int = 7) -> str:
    """Canonical name of the default tenant workload."""
    return scenario_spec("migration-daemon", seed=seed).name


def consolidation_topology(
    guests: int,
    sharing: str,
    num_cpus: int,
    guest_workload: str,
    mem_share: Optional[float] = None,
) -> VmTopology:
    """The topology of one consolidation grid point.

    Pinned guests split the machine evenly (``num_cpus // guests`` vCPUs
    each); shared guests each span the whole machine, oversubscribing
    every pCPU ``guests``-fold -- the classic consolidation shapes.
    """
    if guests <= 0:
        raise ValueError("guests must be positive")
    if sharing == VM_SHARING_SHARED:
        vcpus = num_cpus
    else:
        vcpus = max(1, num_cpus // guests)
    return VmTopology(
        guests=tuple(
            GuestConfig(workload=guest_workload, vcpus=vcpus, mem_share=mem_share)
            for _ in range(guests)
        ),
        sharing=sharing,
    )


@dataclass
class ConsolidationCell:
    """One consolidated shape under one protocol."""

    workload: str
    guests: int
    sharing: str
    protocol: str
    runtime_cycles: int
    coherence_cycles: int
    normalized_runtime: Optional[float] = None
    #: per-VM breakdown (instructions, cycles, coherence, events).
    per_vm: list[dict] = field(default_factory=list)


@dataclass
class ConsolidationResult:
    """The full grid plus its differential-invariant verdict."""

    cells: list[ConsolidationCell] = field(default_factory=list)
    #: workload name -> invariant violations (empty list = shape OK).
    violations: dict[str, list[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every consolidated shape satisfied every invariant."""
        return not any(self.violations.values())

    def value(self, guests: int, sharing: str, protocol: str) -> float:
        """Headline metric of one cell (normalized when available)."""
        for cell in self.cells:
            if (
                cell.guests == guests
                and cell.sharing == sharing
                and cell.protocol == protocol
            ):
                if cell.normalized_runtime is not None:
                    return cell.normalized_runtime
                return float(cell.runtime_cycles)
        raise KeyError((guests, sharing, protocol))


def sweep_consolidation(
    topologies: Sequence[VmTopology],
    protocols: Sequence[str] = CONSOLIDATION_PROTOCOLS,
    base: Optional[SystemConfig] = None,
) -> Sweep:
    """The declarative sweep: every topology under every protocol."""
    sweep = Sweep(
        axes={
            "workload": tuple(topology.name for topology in topologies),
            "protocol": tuple(protocols),
        },
        base=base if base is not None else baseline_config(num_cpus=8),
    )
    if "ideal" in protocols:
        sweep = sweep.normalize_to(protocol="ideal")
    return sweep


def run_consolidation(
    guest_counts: Sequence[int] = DEFAULT_GUEST_COUNTS,
    sharing_models: Sequence[str] = VM_SHARING_MODELS,
    protocols: Sequence[str] = CONSOLIDATION_PROTOCOLS,
    guest_workload: Optional[str] = None,
    num_cpus: int = 8,
    seed: int = 7,
    mem_share: Optional[float] = None,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
    base: Optional[SystemConfig] = None,
) -> ConsolidationResult:
    """Run the consolidation grid and validate every shape's invariants.

    ``guest_workload`` names the tenant every guest runs (default: the
    seeded migration-daemon scenario); ``mem_share`` optionally gives
    every guest an equal static partition of die-stacked DRAM instead of
    the shared pool.  With a single guest the placement models produce
    identical machines (one guest spanning every pCPU either way), so
    1-guest shapes run under the first sharing model only.
    """
    workload = (
        guest_workload if guest_workload else default_guest_workload(seed)
    )
    if base is None:
        base = baseline_config(num_cpus=num_cpus)
    else:
        num_cpus = base.num_cpus
    topologies = [
        consolidation_topology(
            guests, sharing, num_cpus, workload, mem_share=mem_share
        )
        for guests in guest_counts
        for sharing in (
            sharing_models if guests > 1 else tuple(sharing_models)[:1]
        )
    ]
    grid = sweep_consolidation(topologies, protocols, base=base).run(
        session=session, scale=scale
    )
    result = ConsolidationResult()
    per_shape: dict[str, dict[str, Any]] = {}
    for cell in grid:
        name = cell.coords["workload"]
        protocol = cell.coords["protocol"]
        topology = parse_topology_name(name)
        per_shape.setdefault(name, {})[protocol] = cell.result
        result.cells.append(
            ConsolidationCell(
                workload=name,
                guests=topology.num_guests,
                sharing=topology.sharing,
                protocol=protocol,
                runtime_cycles=cell.result.runtime_cycles,
                coherence_cycles=cell.result.coherence_cycles,
                normalized_runtime=(
                    cell.normalized_runtime
                    if cell.baseline is not None
                    else None
                ),
                per_vm=cell.result.per_vm_summary(),
            )
        )
    for name, results in per_shape.items():
        result.violations[name] = differential_violations(results)
    return result


def format_consolidation(result: ConsolidationResult) -> str:
    """Render the grid: one row per consolidated shape.

    Values are runtimes normalized to the ideal protocol when it was in
    the sweep (raw cycles otherwise); the footer is the invariant
    verdict.
    """
    protocols = list(dict.fromkeys(cell.protocol for cell in result.cells))
    shapes = list(
        dict.fromkeys((cell.guests, cell.sharing) for cell in result.cells)
    )
    rows = []
    for shape in shapes:
        row = [f"{shape[0]} guest(s), {shape[1]}"]
        for protocol in protocols:
            value = result.value(shape[0], shape[1], protocol)
            row.append(f"{value:.3f}" if value < 1e6 else f"{value:.3e}")
        rows.append(row)
    lines = [render_table(["shape"] + protocols, rows)]
    lines.extend(violations_footer(result.violations))
    return "\n".join(lines)
