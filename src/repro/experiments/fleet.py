"""Fleet study: protocol x migration-intensity sweep over a datacenter.

The paper's motivating pathology is translation coherence under *churn*:
live migration ships guest page tables between hosts and then replays a
dirty-logging write storm on both ends, and every remap the storm
triggers costs the software baseline a fleet-visible shootdown while
HATRIC pays a co-tagged invalidation.  This experiment makes churn the
swept axis.  One :class:`~repro.fleet.spec.FleetSpec` per migration
intensity (VMs moved per epoch wave) runs under every protocol through
:meth:`~repro.api.session.Session.run_fleet`, and the fleet-level
differential invariants (:func:`~repro.fleet.metrics.fleet_violations`)
are the correctness oracle: identical per-VM work across protocols,
``ideal <= all``, ``hatric <= software``, matching transport counts.

The headline table shows fleet makespan normalized to the ideal
protocol growing with intensity under software coherence while HATRIC
stays within a few percent of ideal, plus the operator-facing tail
metrics: each VM's p99 cycles-per-reference epoch and its SLO-violation
count (epochs :data:`~repro.fleet.metrics.SLO_FACTOR` x slower than the
VM's own median).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.api.session import Session, default_session
from repro.experiments.output import render_table, violations_footer
from repro.fleet.metrics import FleetResult, fleet_violations
from repro.fleet.spec import FleetRequest, FleetSpec, HostSpec
from repro.sim.config import GuestConfig

#: Protocols the fleet study compares by default.
FLEET_PROTOCOLS = ("software", "hatric", "ideal")

#: Migration intensities (VMs moved per wave) swept by default.
DEFAULT_INTENSITIES = (1, 2, 3)

#: Default tenant workload: the steady-state remap source; its paging
#: pressure is what separates the protocols at fleet scale.
DEFAULT_FLEET_WORKLOAD = "syn:migration-daemon"


def fleet_spec(
    hosts: int = 2,
    vms_per_host: int = 2,
    workload: str = DEFAULT_FLEET_WORKLOAD,
    vcpus: int = 1,
    num_cpus: int = 8,
    seed: int = 42,
    policy: str = "round-robin",
    epochs: int = 4,
    epoch_refs: int = 2048,
    storm_refs: int = 512,
    intensity: int = 1,
) -> FleetSpec:
    """A homogeneous fleet: ``hosts`` hosts x ``vms_per_host`` guests."""
    if hosts < 2:
        raise ValueError("a fleet needs at least two hosts")
    if vms_per_host < 1:
        raise ValueError("vms_per_host must be positive")
    host = HostSpec(
        guests=tuple(
            GuestConfig(workload=workload, vcpus=vcpus)
            for _ in range(vms_per_host)
        )
    )
    return FleetSpec(
        hosts=tuple(host for _ in range(hosts)),
        num_cpus=num_cpus,
        seed=seed,
        policy=policy,
        epochs=epochs,
        epoch_refs=epoch_refs,
        storm_refs=storm_refs,
        intensity=intensity,
    )


@dataclass
class FleetStudyCell:
    """One (intensity, protocol) grid point's headline numbers."""

    intensity: int
    protocol: str
    makespan_cycles: int
    #: makespan / ideal makespan at the same intensity (None w/o ideal).
    normalized_makespan: Optional[float]
    #: fleet-wide busy cycles / ideal busy cycles: aggregate slowdown,
    #: insensitive to which host happens to be the makespan straggler.
    normalized_busy: Optional[float]
    coherence_cycles: int
    shootdown_messages: int
    remaps: int
    #: worst per-VM p99 cycles-per-reference epoch.
    worst_p99: float
    slo_violations: int
    migrations: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "intensity": self.intensity,
            "protocol": self.protocol,
            "makespan_cycles": self.makespan_cycles,
            "normalized_makespan": self.normalized_makespan,
            "normalized_busy": self.normalized_busy,
            "coherence_cycles": self.coherence_cycles,
            "shootdown_messages": self.shootdown_messages,
            "remaps": self.remaps,
            "worst_p99": self.worst_p99,
            "slo_violations": self.slo_violations,
            "migrations": self.migrations,
        }


@dataclass
class FleetStudyResult:
    """The full intensity sweep plus its invariant verdict."""

    policy: str
    num_hosts: int
    num_vms: int
    epochs: int
    epoch_refs: int
    storm_refs: int
    workloads: list[str] = field(default_factory=list)
    intensities: list[int] = field(default_factory=list)
    protocols: list[str] = field(default_factory=list)
    cells: list[FleetStudyCell] = field(default_factory=list)
    #: intensity -> protocol -> the full FleetResult.
    results: dict[int, dict[str, FleetResult]] = field(default_factory=dict)
    #: fleet name -> invariant violations (empty list = shape OK).
    violations: dict[str, list[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every intensity point satisfied every invariant."""
        return not any(self.violations.values())

    def cell(self, intensity: int, protocol: str) -> FleetStudyCell:
        """The grid cell of one (intensity, protocol) point."""
        for cell in self.cells:
            if cell.intensity == intensity and cell.protocol == protocol:
                return cell
        raise KeyError((intensity, protocol))

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible payload (the CLI's ``--json`` output)."""
        return {
            "policy": self.policy,
            "num_hosts": self.num_hosts,
            "num_vms": self.num_vms,
            "epochs": self.epochs,
            "epoch_refs": self.epoch_refs,
            "storm_refs": self.storm_refs,
            "workloads": list(self.workloads),
            "intensities": list(self.intensities),
            "protocols": list(self.protocols),
            "cells": [cell.to_dict() for cell in self.cells],
            "results": {
                str(intensity): {
                    protocol: result.to_dict()
                    for protocol, result in by_protocol.items()
                }
                for intensity, by_protocol in self.results.items()
            },
            "violations": self.violations,
            "ok": self.ok,
        }


def run_fleet_experiment(
    hosts: int = 2,
    vms_per_host: int = 2,
    workload: str = DEFAULT_FLEET_WORKLOAD,
    vcpus: int = 1,
    num_cpus: int = 8,
    seed: int = 42,
    policy: str = "round-robin",
    epochs: int = 4,
    epoch_refs: int = 2048,
    storm_refs: int = 512,
    intensities: Sequence[int] = DEFAULT_INTENSITIES,
    protocols: Sequence[str] = FLEET_PROTOCOLS,
    engine: str = "",
    session: Optional[Session] = None,
) -> FleetStudyResult:
    """Sweep protocol x migration intensity over one fleet shape.

    Every (intensity, protocol) point is one cacheable
    :class:`~repro.fleet.spec.FleetRequest`; the whole grid goes through
    :meth:`Session.run_fleet` in a single batch, so ``--jobs`` fans the
    points out across processes and re-runs are answered from the
    result cache.  Each intensity's protocols are then checked against
    the fleet differential invariants.
    """
    if not intensities:
        raise ValueError("need at least one migration intensity")
    if not protocols:
        raise ValueError("need at least one protocol")
    # NOT ``session or default_session()``: an empty Session is falsy
    # (it has __len__), which would silently discard the caller's cache.
    session = session if session is not None else default_session()
    intensities = list(dict.fromkeys(int(x) for x in intensities))
    protocols = list(dict.fromkeys(protocols))

    specs = {
        intensity: fleet_spec(
            hosts=hosts,
            vms_per_host=vms_per_host,
            workload=workload,
            vcpus=vcpus,
            num_cpus=num_cpus,
            seed=seed,
            policy=policy,
            epochs=epochs,
            epoch_refs=epoch_refs,
            storm_refs=storm_refs,
            intensity=intensity,
        )
        for intensity in intensities
    }
    requests = [
        FleetRequest(spec=specs[intensity], protocol=protocol, engine=engine)
        for intensity in intensities
        for protocol in protocols
    ]
    outcomes = session.run_fleet(requests)

    study = FleetStudyResult(
        policy=policy,
        num_hosts=hosts,
        num_vms=hosts * vms_per_host,
        epochs=epochs,
        epoch_refs=epoch_refs,
        storm_refs=storm_refs,
        workloads=[workload],
        intensities=list(intensities),
        protocols=list(protocols),
    )
    position = 0
    for intensity in intensities:
        by_protocol: dict[str, FleetResult] = {}
        for protocol in protocols:
            by_protocol[protocol] = outcomes[position]
            position += 1
        study.results[intensity] = by_protocol
        ideal = by_protocol.get("ideal")
        for protocol, result in by_protocol.items():
            study.cells.append(
                FleetStudyCell(
                    intensity=intensity,
                    protocol=protocol,
                    makespan_cycles=result.makespan_cycles,
                    normalized_makespan=(
                        result.makespan_cycles / ideal.makespan_cycles
                        if ideal is not None and ideal.makespan_cycles
                        else None
                    ),
                    normalized_busy=(
                        result.totals["busy_cycles"]
                        / ideal.totals["busy_cycles"]
                        if ideal is not None and ideal.totals["busy_cycles"]
                        else None
                    ),
                    coherence_cycles=result.totals["coherence_cycles"],
                    shootdown_messages=sum(
                        result.totals["shootdown_messages"].values()
                    ),
                    remaps=result.totals["remaps"],
                    worst_p99=max(
                        (vm["tail"].get("p99", 0.0) for vm in result.vms),
                        default=0.0,
                    ),
                    slo_violations=result.totals["slo_violations"],
                    migrations=result.totals["migrations"],
                )
            )
        study.violations[specs[intensity].name] = fleet_violations(by_protocol)
    return study


def format_fleet(study: FleetStudyResult) -> str:
    """Render the study: the intensity grid plus per-VM tail tables.

    The grid's ``norm`` column is makespan normalized to the ideal
    protocol at the same intensity and ``slowdown`` is fleet-wide busy
    cycles over ideal's; the per-VM block (one per intensity)
    carries each VM's p99 cycles-per-reference and SLO-violation count
    under every protocol.  The footer is the invariant verdict.
    """
    lines = [
        f"fleet: {study.num_hosts} hosts x {study.num_vms} VMs, "
        f"policy={study.policy}, epochs={study.epochs}",
        f"  workload={'+'.join(study.workloads)}  "
        f"epoch_refs={study.epoch_refs}  storm_refs={study.storm_refs}",
        "",
    ]
    rows = []
    for cell in study.cells:
        rows.append(
            [
                cell.intensity,
                cell.protocol,
                cell.makespan_cycles,
                (
                    f"{cell.normalized_makespan:.3f}"
                    if cell.normalized_makespan is not None
                    else "-"
                ),
                (
                    f"{cell.normalized_busy:.3f}"
                    if cell.normalized_busy is not None
                    else "-"
                ),
                cell.coherence_cycles,
                cell.shootdown_messages,
                cell.remaps,
                f"{cell.worst_p99:.2f}",
                cell.slo_violations,
                cell.migrations,
            ]
        )
    lines.append(
        render_table(
            [
                "intensity",
                "protocol",
                "makespan",
                "norm",
                "slowdown",
                "coh.cycles",
                "shootdowns",
                "remaps",
                "p99 cyc/ref",
                "slo",
                "migrations",
            ],
            rows,
            aligns=["right", "left"] + ["right"] * 9,
        )
    )
    for intensity in study.intensities:
        by_protocol = study.results[intensity]
        columns = ["vm", "migrations"]
        for protocol in study.protocols:
            columns += [f"{protocol}.p99", f"{protocol}.slo"]
        vm_rows = []
        any_result = next(iter(by_protocol.values()))
        for vm_index in range(len(any_result.vms)):
            row: list[Any] = [
                any_result.vms[vm_index]["name"],
                any_result.vms[vm_index]["migrations"],
            ]
            for protocol in study.protocols:
                vm = by_protocol[protocol].vms[vm_index]
                row.append(f"{vm['tail'].get('p99', 0.0):.2f}")
                row.append(vm["slo_violations"])
            vm_rows.append(row)
        lines.append("")
        lines.append(f"per-VM tails, intensity={intensity}:")
        lines.append(render_table(columns, vm_rows))
    lines.append("")
    lines.extend(violations_footer(study.violations))
    return "\n".join(lines)


__all__ = [
    "DEFAULT_FLEET_WORKLOAD",
    "DEFAULT_INTENSITIES",
    "FLEET_PROTOCOLS",
    "FleetStudyCell",
    "FleetStudyResult",
    "fleet_spec",
    "format_fleet",
    "run_fleet_experiment",
]
