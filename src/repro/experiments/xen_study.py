"""Xen case study (Section 6, "Xen results").

The paper validates HATRIC's generality by repeating the canneal and
data caching experiments on Xen with 16 vCPUs, reporting 21% and 33%
runtime improvements over the best software paging policy.  The Xen
model differs from KVM only in the cost profile of its software
shootdown path (hypercalls, heavier exits); HATRIC's hardware path is
hypervisor-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.runner import (
    ExperimentScale,
    baseline_config,
    run_configuration,
)

#: Workloads the paper evaluated on Xen.
XEN_WORKLOADS = ("canneal", "data_caching")


@dataclass
class XenRow:
    """HATRIC's improvement on Xen for one workload."""

    workload: str
    software_runtime: int
    hatric_runtime: int

    @property
    def improvement(self) -> float:
        """Fractional runtime improvement of HATRIC over software coherence."""
        if self.software_runtime == 0:
            return 0.0
        return 1.0 - self.hatric_runtime / self.software_runtime


@dataclass
class XenStudyResult:
    """All rows of the Xen case study."""

    rows: list[XenRow] = field(default_factory=list)

    def row(self, workload: str) -> XenRow:
        """Return the row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise KeyError(workload)


def run_xen_study(
    workloads: Sequence[str] = XEN_WORKLOADS,
    num_cpus: int = 16,
    scale: Optional[ExperimentScale] = None,
) -> XenStudyResult:
    """Regenerate the Xen case study."""
    scale = scale or ExperimentScale.from_environment()
    result = XenStudyResult()
    for name in workloads:
        software = run_configuration(
            baseline_config(num_cpus, protocol="software", hypervisor="xen"),
            name,
            scale,
        )
        hatric = run_configuration(
            baseline_config(num_cpus, protocol="hatric", hypervisor="xen"),
            name,
            scale,
        )
        result.rows.append(
            XenRow(
                workload=name,
                software_runtime=software.runtime_cycles,
                hatric_runtime=hatric.runtime_cycles,
            )
        )
    return result


def format_xen_study(result: XenStudyResult) -> str:
    """Render the study as a table of improvements."""
    header = f"{'workload':<14}{'improvement':>13}"
    lines = [header, "-" * len(header)]
    for row in result.rows:
        lines.append(f"{row.workload:<14}{100 * row.improvement:>12.1f}%")
    return "\n".join(lines)
