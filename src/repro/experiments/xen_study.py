"""Xen case study (Section 6, "Xen results").

The paper validates HATRIC's generality by repeating the canneal and
data caching experiments on Xen with 16 vCPUs, reporting 21% and 33%
runtime improvements over the best software paging policy.  The Xen
model differs from KVM only in the cost profile of its software
shootdown path (hypercalls, heavier exits); HATRIC's hardware path is
hypervisor-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.api import ExperimentScale, Session, Sweep
from repro.experiments._grid import indexed_lookup
from repro.experiments.runner import baseline_config
from repro.sim.config import SystemConfig

#: Workloads the paper evaluated on Xen.
XEN_WORKLOADS = ("canneal", "data_caching")

XEN_SERIES = ("sw", "hatric")
_PROTOCOL_OF_SERIES = {"sw": "software", "hatric": "hatric"}


def _configure(config: SystemConfig, coords: Mapping[str, Any]) -> SystemConfig:
    return config.replace(protocol=_PROTOCOL_OF_SERIES[coords["series"]])


@dataclass
class XenRow:
    """HATRIC's improvement on Xen for one workload."""

    workload: str
    software_runtime: int
    hatric_runtime: int

    @property
    def improvement(self) -> float:
        """Fractional runtime improvement of HATRIC over software coherence."""
        if self.software_runtime == 0:
            return 0.0
        return 1.0 - self.hatric_runtime / self.software_runtime


@dataclass
class XenStudyResult:
    """All rows of the Xen case study."""

    rows: list[XenRow] = field(default_factory=list)

    def row(self, workload: str) -> XenRow:
        """Return the row for one workload (dict-indexed)."""
        return indexed_lookup(self, self.rows, lambda r: r.workload, workload)


def sweep_xen_study(
    workloads: Sequence[str] = XEN_WORKLOADS, num_cpus: int = 16
) -> Sweep:
    """The declarative sweep behind the Xen case study (raw runtimes)."""
    return Sweep(
        axes={"workload": tuple(workloads), "series": XEN_SERIES},
        base=baseline_config(num_cpus, hypervisor="xen"),
        configure=_configure,
    )


def run_xen_study(
    workloads: Sequence[str] = XEN_WORKLOADS,
    num_cpus: int = 16,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
) -> XenStudyResult:
    """Regenerate the Xen case study."""
    grid = sweep_xen_study(workloads, num_cpus).run(session=session, scale=scale)
    result = XenStudyResult()
    for name in workloads:
        result.rows.append(
            XenRow(
                workload=name,
                software_runtime=grid.result(
                    workload=name, series="sw"
                ).runtime_cycles,
                hatric_runtime=grid.result(
                    workload=name, series="hatric"
                ).runtime_cycles,
            )
        )
    return result


def format_xen_study(result: XenStudyResult) -> str:
    """Render the study as a table of improvements."""
    header = f"{'workload':<14}{'improvement':>13}"
    lines = [header, "-" * len(header)]
    for row in result.rows:
        lines.append(f"{row.workload:<14}{100 * row.improvement:>12.1f}%")
    return "\n".join(lines)
