"""Figure 7: runtime versus vCPU count.

For 4, 8 and 16 vCPUs per VM, the best KVM paging policy is run with
software coherence (``sw``), with HATRIC, and with zero-overhead
coherence (``ideal``), all normalized to the no-die-stacked-DRAM
baseline at the same vCPU count.  The paper's findings: HATRIC lands
within 2-4% of ideal everywhere, and it flattens the curves -- software
coherence gets *worse* with more vCPUs for IPI-heavy workloads and worse
with fewer vCPUs for flush-sensitive ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.api import ExperimentScale, Session, Sweep
from repro.experiments._grid import indexed_lookup
from repro.experiments.runner import PAPER_WORKLOADS, baseline_config
from repro.sim.config import PLACEMENT_PAGED, PLACEMENT_SLOW_ONLY, SystemConfig

#: vCPU counts swept by the figure.
VCPU_COUNTS = (4, 8, 16)
#: series per vCPU count.
FIGURE7_SERIES = ("sw", "hatric", "ideal")

_PROTOCOL_OF_SERIES = {"sw": "software", "hatric": "hatric", "ideal": "ideal"}


def _configure(config: SystemConfig, coords: Mapping[str, Any]) -> SystemConfig:
    series = coords["series"]
    if series == "no-hbm":
        protocol, placement = "ideal", PLACEMENT_SLOW_ONLY
    else:
        protocol, placement = _PROTOCOL_OF_SERIES[series], PLACEMENT_PAGED
    return config.replace(
        num_cpus=coords["vcpus"], protocol=protocol, placement=placement
    )


@dataclass
class Figure7Cell:
    """One bar: a workload at a vCPU count under one mechanism."""

    workload: str
    vcpus: int
    series: str
    normalized_runtime: float


@dataclass
class Figure7Result:
    """All bars of Figure 7."""

    cells: list[Figure7Cell] = field(default_factory=list)

    def value(self, workload: str, vcpus: int, series: str) -> float:
        """Normalized runtime of one bar (dict-indexed, O(1))."""
        cell = indexed_lookup(
            self,
            self.cells,
            lambda c: (c.workload, c.vcpus, c.series),
            (workload, vcpus, series),
        )
        return cell.normalized_runtime


def sweep_figure7(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    vcpu_counts: Sequence[int] = VCPU_COUNTS,
) -> Sweep:
    """The declarative sweep behind Figure 7."""
    return Sweep(
        axes={
            "workload": tuple(workloads),
            "vcpus": tuple(vcpu_counts),
            "series": FIGURE7_SERIES,
        },
        base=baseline_config(),
        configure=_configure,
    ).normalize_to(series="no-hbm")


def run_figure7(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    vcpu_counts: Sequence[int] = VCPU_COUNTS,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
) -> Figure7Result:
    """Regenerate Figure 7."""
    grid = sweep_figure7(workloads, vcpu_counts).run(session=session, scale=scale)
    result = Figure7Result()
    for cell in grid:
        result.cells.append(
            Figure7Cell(
                workload=cell.coords["workload"],
                vcpus=cell.coords["vcpus"],
                series=cell.coords["series"],
                normalized_runtime=cell.normalized_runtime,
            )
        )
    return result


def format_figure7(result: Figure7Result) -> str:
    """Render the figure as a table: one row per workload x vCPU count."""
    header = f"{'workload':<14}{'vcpus':>6}" + "".join(
        f"{s:>10}" for s in FIGURE7_SERIES
    )
    lines = [header, "-" * len(header)]
    seen = []
    for cell in result.cells:
        key = (cell.workload, cell.vcpus)
        if key in seen:
            continue
        seen.append(key)
        values = "".join(
            f"{result.value(cell.workload, cell.vcpus, s):>10.2f}"
            for s in FIGURE7_SERIES
        )
        lines.append(f"{cell.workload:<14}{cell.vcpus:>6}{values}")
    return "\n".join(lines)
