"""Figure 7: runtime versus vCPU count.

For 4, 8 and 16 vCPUs per VM, the best KVM paging policy is run with
software coherence (``sw``), with HATRIC, and with zero-overhead
coherence (``ideal``), all normalized to the no-die-stacked-DRAM
baseline at the same vCPU count.  The paper's findings: HATRIC lands
within 2-4% of ideal everywhere, and it flattens the curves -- software
coherence gets *worse* with more vCPUs for IPI-heavy workloads and worse
with fewer vCPUs for flush-sensitive ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.runner import (
    PAPER_WORKLOADS,
    ExperimentScale,
    baseline_config,
    no_hbm_config,
    run_configuration,
)

#: vCPU counts swept by the figure.
VCPU_COUNTS = (4, 8, 16)
#: series per vCPU count.
FIGURE7_SERIES = ("sw", "hatric", "ideal")

_PROTOCOL_OF_SERIES = {"sw": "software", "hatric": "hatric", "ideal": "ideal"}


@dataclass
class Figure7Cell:
    """One bar: a workload at a vCPU count under one mechanism."""

    workload: str
    vcpus: int
    series: str
    normalized_runtime: float


@dataclass
class Figure7Result:
    """All bars of Figure 7."""

    cells: list[Figure7Cell] = field(default_factory=list)

    def value(self, workload: str, vcpus: int, series: str) -> float:
        """Normalized runtime of one bar."""
        for cell in self.cells:
            if (
                cell.workload == workload
                and cell.vcpus == vcpus
                and cell.series == series
            ):
                return cell.normalized_runtime
        raise KeyError((workload, vcpus, series))


def run_figure7(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    vcpu_counts: Sequence[int] = VCPU_COUNTS,
    scale: Optional[ExperimentScale] = None,
) -> Figure7Result:
    """Regenerate Figure 7."""
    scale = scale or ExperimentScale.from_environment()
    result = Figure7Result()
    for name in workloads:
        for vcpus in vcpu_counts:
            baseline = run_configuration(no_hbm_config(vcpus), name, scale)
            for series in FIGURE7_SERIES:
                run = run_configuration(
                    baseline_config(vcpus, protocol=_PROTOCOL_OF_SERIES[series]),
                    name,
                    scale,
                )
                result.cells.append(
                    Figure7Cell(
                        workload=name,
                        vcpus=vcpus,
                        series=series,
                        normalized_runtime=run.normalized_runtime(baseline),
                    )
                )
    return result


def format_figure7(result: Figure7Result) -> str:
    """Render the figure as a table: one row per workload x vCPU count."""
    header = f"{'workload':<14}{'vcpus':>6}" + "".join(
        f"{s:>10}" for s in FIGURE7_SERIES
    )
    lines = [header, "-" * len(header)]
    seen = []
    for cell in result.cells:
        key = (cell.workload, cell.vcpus)
        if key in seen:
            continue
        seen.append(key)
        values = "".join(
            f"{result.value(cell.workload, cell.vcpus, s):>10.2f}"
            for s in FIGURE7_SERIES
        )
        lines.append(f"{cell.workload:<14}{cell.vcpus:>6}{values}")
    return "\n".join(lines)
