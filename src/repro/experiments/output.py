"""Shared rendering helpers for experiment CLI output.

Every experiment subcommand answers the same two questions -- "print a
table or JSON?" and "what exit code reflects the invariant verdict?" --
and the tables themselves are all fixed-width column grids with a
dashed rule under the header.  This module is the single place those
conventions live: ``consolidation``, ``timeline`` and ``fleet`` all
render through it, so their output stays structurally identical and a
new experiment gets the house style for free.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Mapping, Optional, Sequence

#: Column alignments :func:`render_table` accepts.
ALIGNMENTS = ("left", "right")


def render_table(
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    aligns: Optional[Sequence[str]] = None,
    gap: str = "  ",
) -> str:
    """Render a fixed-width text table with a dashed header rule.

    ``columns`` are the header titles; every row needs one cell per
    column (cells are rendered with ``str``).  ``aligns`` gives one of
    ``"left"`` / ``"right"`` per column; the default -- first column
    left, the rest right -- is the label-plus-metrics shape every
    experiment table here has.  Trailing whitespace is stripped so a
    left-aligned last column (e.g. a sparkline bar) does not pad lines.
    """
    if aligns is None:
        aligns = ["left"] + ["right"] * (len(columns) - 1)
    if len(aligns) != len(columns):
        raise ValueError(
            f"got {len(aligns)} alignments for {len(columns)} columns"
        )
    for align in aligns:
        if align not in ALIGNMENTS:
            raise ValueError(f"unknown alignment {align!r}")
    cells = [[str(cell) for cell in row] for row in rows]
    for row in cells:
        if len(row) != len(columns):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(columns)}"
            )
    widths = [
        max(len(title), max((len(row[i]) for row in cells), default=0))
        for i, title in enumerate(columns)
    ]

    def _line(row: Sequence[str]) -> str:
        parts = [
            cell.ljust(width) if align == "left" else cell.rjust(width)
            for cell, width, align in zip(row, widths, aligns)
        ]
        return gap.join(parts).rstrip()

    header = _line(list(columns))
    lines = [header, "-" * len(header)]
    lines.extend(_line(row) for row in cells)
    return "\n".join(lines)


def violations_footer(violations: Mapping[str, Sequence[str]]) -> list[str]:
    """The invariant-verdict footer every differential table ends with.

    ``violations`` maps a shape name to its violation descriptions; an
    all-empty mapping renders the single OK line, anything else renders
    one ``VIOLATION`` line per offense.
    """
    flat = [
        (name, violation)
        for name, offenses in violations.items()
        for violation in offenses
    ]
    if not flat:
        return ["differential invariants: OK"]
    return [f"VIOLATION {name}: {violation}" for name, violation in flat]


def experiment_output(
    as_json: bool,
    payload: Callable[[], Mapping[str, Any]],
    table: Callable[[], str],
    ok: bool = True,
) -> tuple[str, int]:
    """The ``--json``/table contract shared by experiment subcommands.

    Returns ``(text, exit_code)``: the JSON payload (indent 2) when the
    user asked for it, the formatted table otherwise, and exit code 0
    only when the run's invariants held.  ``payload`` and ``table`` are
    thunks so neither rendering is built unless chosen.
    """
    text = json.dumps(payload(), indent=2) if as_json else table()
    return text, 0 if ok else 1


__all__ = [
    "ALIGNMENTS",
    "experiment_output",
    "render_table",
    "violations_footer",
]
