"""Figure 10: multiprogrammed SPEC mixes.

Each mix runs sixteen single-threaded applications inside one 16-vCPU
VM.  Because the hypervisor can only identify translation coherence
targets at VM granularity, one application's page migration flushes the
translation structures -- and VM-exits the vCPUs -- of all the others
under software coherence.  HATRIC tracks the true sharers, so unrelated
applications are left alone.

Two metrics per mix, both normalized per application against the same
application's runtime without die-stacked DRAM:

* **weighted runtime** -- the mean normalized runtime (overall system
  performance; lower is better);
* **slowest application** -- the maximum normalized runtime (fairness).

The paper reports that with software coherence more than 70% of the
mixes lose performance from die-stacking and the slowest application
often runs 2x slower, while HATRIC improves every single mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.api import ExperimentScale, Session, Sweep
from repro.experiments.runner import baseline_config
from repro.sim.config import PLACEMENT_PAGED, PLACEMENT_SLOW_ONLY, SystemConfig
from repro.sim.simulator import SimulationResult
from repro.workloads.spec_mix import APPS_PER_MIX, NUM_MIXES

FIGURE10_SERIES = ("sw", "hatric")
_PROTOCOL_OF_SERIES = {"sw": "software", "hatric": "hatric"}


def _mix_name(index: int, apps_per_mix: int) -> str:
    """Workload name of one mix, resolvable by ``make_workload``."""
    if apps_per_mix == APPS_PER_MIX:
        return f"mix{index:02d}"
    return f"mix{index}x{apps_per_mix}"


def _configure(config: SystemConfig, coords: Mapping[str, Any]) -> SystemConfig:
    series = coords["series"]
    if series == "no-hbm":
        return config.replace(protocol="ideal", placement=PLACEMENT_SLOW_ONLY)
    return config.replace(
        protocol=_PROTOCOL_OF_SERIES[series], placement=PLACEMENT_PAGED
    )


@dataclass
class MixOutcome:
    """Both metrics for one mix under one mechanism."""

    mix: str
    series: str
    weighted_runtime: float
    slowest_runtime: float


@dataclass
class Figure10Result:
    """All mixes of Figure 10."""

    outcomes: list[MixOutcome] = field(default_factory=list)

    def series(self, series: str) -> list[MixOutcome]:
        """Outcomes of one mechanism, sorted by weighted runtime."""
        picked = [o for o in self.outcomes if o.series == series]
        return sorted(picked, key=lambda o: o.weighted_runtime)

    def fraction_regressing(self, series: str) -> float:
        """Fraction of mixes whose weighted runtime exceeds no-hbm (1.0)."""
        picked = [o for o in self.outcomes if o.series == series]
        if not picked:
            return 0.0
        return sum(o.weighted_runtime > 1.0 for o in picked) / len(picked)

    def fraction_slowest_over(self, series: str, threshold: float = 2.0) -> float:
        """Fraction of mixes whose slowest app exceeds ``threshold``x."""
        picked = [o for o in self.outcomes if o.series == series]
        if not picked:
            return 0.0
        return sum(o.slowest_runtime > threshold for o in picked) / len(picked)


def _per_app_normalized(
    run: SimulationResult, baseline: SimulationResult
) -> list[float]:
    ratios = []
    for app, cycles in run.per_app_cycles.items():
        base = baseline.per_app_cycles.get(app, 0)
        if base > 0:
            ratios.append(cycles / base)
    return ratios


def sweep_figure10(
    num_mixes: int = NUM_MIXES, apps_per_mix: int = APPS_PER_MIX
) -> Sweep:
    """The declarative sweep behind Figure 10."""
    return Sweep(
        axes={
            "workload": tuple(
                _mix_name(index, apps_per_mix) for index in range(num_mixes)
            ),
            "series": FIGURE10_SERIES,
        },
        base=baseline_config(apps_per_mix),
        configure=_configure,
    ).normalize_to(series="no-hbm")


def run_figure10(
    num_mixes: int = NUM_MIXES,
    apps_per_mix: int = APPS_PER_MIX,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
) -> Figure10Result:
    """Regenerate Figure 10 over ``num_mixes`` mixes."""
    grid = sweep_figure10(num_mixes, apps_per_mix).run(session=session, scale=scale)
    result = Figure10Result()
    for cell in grid:
        ratios = _per_app_normalized(cell.result, cell.baseline)
        result.outcomes.append(
            MixOutcome(
                mix=cell.result.workload,
                series=cell.coords["series"],
                weighted_runtime=sum(ratios) / len(ratios),
                slowest_runtime=max(ratios),
            )
        )
    return result


def format_figure10(result: Figure10Result) -> str:
    """Summarise both panels of Figure 10."""
    lines = [
        f"{'mix':<8}{'sw weighted':>12}{'sw slowest':>12}"
        f"{'hatric weighted':>17}{'hatric slowest':>16}"
    ]
    lines.append("-" * len(lines[0]))
    by_mix: dict[str, dict[str, MixOutcome]] = {}
    for outcome in result.outcomes:
        by_mix.setdefault(outcome.mix, {})[outcome.series] = outcome
    for mix, series in sorted(by_mix.items()):
        sw, hatric = series.get("sw"), series.get("hatric")
        lines.append(
            f"{mix:<8}{sw.weighted_runtime:>12.2f}{sw.slowest_runtime:>12.2f}"
            f"{hatric.weighted_runtime:>17.2f}{hatric.slowest_runtime:>16.2f}"
        )
    lines.append("")
    lines.append(
        "mixes regressing under sw: "
        f"{100 * result.fraction_regressing('sw'):.0f}%  |  under hatric: "
        f"{100 * result.fraction_regressing('hatric'):.0f}%"
    )
    lines.append(
        "mixes with slowest app >2x under sw: "
        f"{100 * result.fraction_slowest_over('sw'):.0f}%  |  under hatric: "
        f"{100 * result.fraction_slowest_over('hatric'):.0f}%"
    )
    return "\n".join(lines)
