"""Per-component profiling report: ``python -m repro profile``.

Runs one workload under several protocols with interval telemetry and
renders where the cycles went: exact measured splits (translate+memory
vs translation coherence vs background paging daemon), modeled
attribution *within* those buckets (events multiplied by the
:class:`~repro.sim.costs.CostModel` -- shootdown initiator/target,
directory traffic, CAM searches, page copies), the energy model's exact
per-structure breakdown, per-VM splits for consolidated workloads, and
an ASCII activity sparkline per protocol.

The attribution math lives in :mod:`repro.obs.profile`; this module
only drives runs through the shared session and renders tables, exactly
like :mod:`repro.experiments.timeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.api.scale import ExperimentScale
from repro.api.session import Session
from repro.experiments.output import render_table
from repro.experiments.timeline import (
    DEFAULT_TIMELINE_REFS,
    DEFAULT_TIMELINE_VCPUS,
    DEFAULT_TIMELINE_WORKLOAD,
    TIMELINE_PROTOCOLS,
    TimelineResult,
    run_timeline,
)
from repro.obs.profile import (
    AttributionRow,
    cycle_attribution,
    energy_components,
    interval_series,
    sparkline,
)
from repro.sim.simulator import SimulationResult

#: How many energy components the table shows before folding the tail
#: into an "other" row.
ENERGY_COMPONENT_LIMIT = 8

#: Sparkline width of the per-protocol activity row.
ACTIVITY_WIDTH = 48


@dataclass
class ProfileResult:
    """A profile study: the underlying timeline plus attribution rows."""

    timeline: TimelineResult
    protocols: tuple[str, ...] = ()
    attributions: dict[str, list[AttributionRow]] = field(default_factory=dict)

    def result_for(self, protocol: str) -> SimulationResult:
        return self.timeline.series_for(protocol).result

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible payload (the CLI's ``--json`` output)."""
        payload = {
            "workload": self.timeline.workload,
            "refs_total": self.timeline.refs_total,
            "interval_refs": self.timeline.interval_refs,
            "num_cpus": self.timeline.num_cpus,
            "protocols": {},
        }
        for protocol in self.protocols:
            result = self.result_for(protocol)
            payload["protocols"][protocol] = {
                "runtime_cycles": result.runtime_cycles,
                "coherence_cycles": result.coherence_cycles,
                "background_cycles": result.stats.background_cycles,
                "instructions": result.stats.total_instructions,
                "energy": result.energy_total,
                "attribution": [
                    {
                        "component": row.component,
                        "cycles": row.cycles,
                        "basis": row.basis,
                    }
                    for row in self.attributions[protocol]
                ],
                "energy_components": [
                    {"component": name, "joules": value, "share": share}
                    for name, value, share in energy_components(
                        result.energy.components
                    )
                ],
                "per_vm": [
                    dict(summary) for summary in result.per_vm_summary()
                ],
            }
        return payload


def run_profile(
    workload: str = DEFAULT_TIMELINE_WORKLOAD,
    protocols: Sequence[str] = TIMELINE_PROTOCOLS,
    num_cpus: int = DEFAULT_TIMELINE_VCPUS,
    refs_total: Optional[int] = DEFAULT_TIMELINE_REFS,
    intervals: int = 16,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
    **config_overrides: Any,
) -> ProfileResult:
    """Run (or recall) the profile study for one workload.

    Identical request shape to :func:`~repro.experiments.timeline.
    run_timeline` -- a timeline and a profile of the same workload share
    cached results.
    """
    timeline = run_timeline(
        workload=workload,
        protocols=protocols,
        num_cpus=num_cpus,
        refs_total=refs_total,
        intervals=intervals,
        scale=scale,
        session=session,
        **config_overrides,
    )
    attributions = {}
    for protocol in protocols:
        result = timeline.series_for(protocol).result
        stats = result.stats
        attributions[protocol] = cycle_attribution(
            dict(stats.events),
            busy_cycles=sum(cpu.busy_cycles for cpu in stats.cpus),
            coherence_cycles=sum(cpu.coherence_cycles for cpu in stats.cpus),
            background_cycles=stats.background_cycles,
            costs=result.config.costs,
        )
    return ProfileResult(
        timeline=timeline,
        protocols=tuple(protocols),
        attributions=attributions,
    )


def _share(cycles: float, total: float) -> str:
    return f"{(cycles / total * 100.0):.1f}%" if total else "-"


def format_profile(profile: ProfileResult) -> str:
    """Render the profile as per-protocol attribution + energy tables."""
    timeline = profile.timeline
    lines = [
        f"profile: {timeline.workload}",
        f"  refs={timeline.refs_total} interval={timeline.interval_refs} "
        f"cpus={timeline.num_cpus}",
    ]
    activity_peak = max(
        (
            value
            for protocol in profile.protocols
            for value in interval_series(
                profile.timeline.series_for(protocol).samples,
                "coherence_cycles",
            )
        ),
        default=0.0,
    )
    for protocol in profile.protocols:
        result = profile.result_for(protocol)
        stats = result.stats
        busy = sum(cpu.busy_cycles for cpu in stats.cpus)
        background = stats.background_cycles
        lines.append("")
        lines.append(
            f"{protocol}: runtime={result.runtime_cycles} "
            f"busy={busy} background={background} "
            f"energy={result.energy_total:.0f}"
        )

        rows = []
        for row in profile.attributions[protocol]:
            total = background if "daemon" in row.component and row.depth == 0 else busy
            rows.append(
                [
                    ("  " * row.depth) + row.component,
                    int(row.cycles),
                    _share(row.cycles, busy if row.depth else total),
                    row.basis,
                ]
            )
        table = render_table(
            ["component", "cycles", "share", "basis"],
            rows,
            aligns=["left", "right", "right", "left"],
        )
        lines.extend(f"  {line}".rstrip() for line in table.splitlines())

        components = energy_components(result.energy.components)
        shown = components[:ENERGY_COMPONENT_LIMIT]
        folded = components[ENERGY_COMPONENT_LIMIT:]
        energy_rows = [
            [name, f"{value:.3f}", f"{share * 100.0:.1f}%"]
            for name, value, share in shown
        ]
        if folded:
            other = sum(value for _, value, _ in folded)
            other_share = sum(share for _, _, share in folded)
            energy_rows.append(
                ["other", f"{other:.3f}", f"{other_share * 100.0:.1f}%"]
            )
        lines.append("")
        table = render_table(
            ["energy component", "joules", "share"],
            energy_rows,
            aligns=["left", "right", "right"],
        )
        lines.extend(f"  {line}".rstrip() for line in table.splitlines())

        summaries = result.per_vm_summary()
        if len(summaries) > 1:
            vm_rows = [
                [
                    summary["vm"],
                    summary["busy_cycles"],
                    summary["coherence_cycles"],
                    summary["instructions"],
                ]
                for summary in summaries
            ]
            lines.append("")
            table = render_table(
                ["vm", "busy", "coherence", "instructions"],
                vm_rows,
                aligns=["left", "right", "right", "right"],
            )
            lines.extend(f"  {line}".rstrip() for line in table.splitlines())

        activity = interval_series(
            profile.timeline.series_for(protocol).samples, "coherence_cycles"
        )
        if activity:
            row = sparkline(
                activity,
                min(ACTIVITY_WIDTH, len(activity)),
                peak=activity_peak,
            )
            lines.append(f"  coherence activity |{row}|")
    lines.append("")
    lines.append(
        "  basis: measured rows are exact simulator charges; modeled rows "
        "attribute within them (events x cost model) and may overlap."
    )
    return "\n".join(lines)


__all__ = [
    "ProfileResult",
    "format_profile",
    "run_profile",
]
