"""Experiment harnesses regenerating every figure of the paper.

Each module declares its figure as a :class:`repro.api.Sweep` (or, for
the remap anatomy, a batch of :class:`repro.api.RunRequest`) and exposes
a ``run_*`` function returning a result dataclass with the same
rows/series the corresponding figure reports, plus a ``format_*`` helper
producing the table printed by the benchmarks and examples.  All
experiments accept a ``scale`` parameter that shrinks the trace length
so they can run quickly in CI, and a ``session`` parameter so figures
sharing configurations (notably the ``no-hbm`` baselines) reuse each
other's runs; by default they share the process-global session.
"""

from repro.experiments.runner import (
    ExperimentScale,
    baseline_config,
    run_configuration,
)
from repro.experiments.figure2 import run_figure2, format_figure2, sweep_figure2
from repro.experiments.figure7 import run_figure7, format_figure7, sweep_figure7
from repro.experiments.figure8 import run_figure8, format_figure8, sweep_figure8
from repro.experiments.figure9 import run_figure9, format_figure9, sweep_figure9
from repro.experiments.figure10 import run_figure10, format_figure10, sweep_figure10
from repro.experiments.figure11 import (
    run_figure11_left,
    run_figure11_right,
    format_figure11_left,
    format_figure11_right,
    sweep_figure11_left,
    sweep_figure11_right,
)
from repro.experiments.figure12 import run_figure12, format_figure12, sweep_figure12
from repro.experiments.figure13 import run_figure13, format_figure13, sweep_figure13
from repro.experiments.xen_study import run_xen_study, format_xen_study, sweep_xen_study
from repro.experiments.anatomy import anatomy_requests, run_anatomy, format_anatomy
from repro.experiments.scenarios import (
    SCENARIO_FAMILIES,
    SCENARIO_PROTOCOLS,
    InvariantViolation,
    check_invariants,
    differential_violations,
    format_differential,
    format_scenarios,
    run_differential,
    run_scenarios,
    sweep_scenarios,
)
from repro.experiments.consolidation import (
    CONSOLIDATION_PROTOCOLS,
    consolidation_topology,
    format_consolidation,
    run_consolidation,
    sweep_consolidation,
)
from repro.experiments.timeline import (
    TIMELINE_PROTOCOLS,
    TimelineResult,
    TimelineSeries,
    format_timeline,
    run_timeline,
)
from repro.experiments.fleet import (
    FLEET_PROTOCOLS,
    FleetStudyResult,
    fleet_spec,
    format_fleet,
    run_fleet_experiment,
)
from repro.experiments.output import (
    experiment_output,
    render_table,
    violations_footer,
)

__all__ = [
    "CONSOLIDATION_PROTOCOLS",
    "ExperimentScale",
    "FLEET_PROTOCOLS",
    "FleetStudyResult",
    "experiment_output",
    "fleet_spec",
    "format_fleet",
    "render_table",
    "run_fleet_experiment",
    "violations_footer",
    "anatomy_requests",
    "baseline_config",
    "consolidation_topology",
    "format_anatomy",
    "format_consolidation",
    "format_figure10",
    "format_figure11_left",
    "format_figure11_right",
    "SCENARIO_FAMILIES",
    "SCENARIO_PROTOCOLS",
    "TIMELINE_PROTOCOLS",
    "TimelineResult",
    "TimelineSeries",
    "InvariantViolation",
    "check_invariants",
    "differential_violations",
    "format_figure12",
    "format_figure13",
    "format_figure2",
    "format_figure7",
    "format_figure8",
    "format_figure9",
    "format_scenarios",
    "format_differential",
    "format_timeline",
    "format_xen_study",
    "run_anatomy",
    "run_configuration",
    "run_consolidation",
    "run_differential",
    "run_scenarios",
    "run_figure10",
    "run_figure11_left",
    "run_figure11_right",
    "run_figure12",
    "run_figure13",
    "run_figure2",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_timeline",
    "run_xen_study",
    "sweep_figure10",
    "sweep_figure11_left",
    "sweep_figure11_right",
    "sweep_figure12",
    "sweep_figure13",
    "sweep_consolidation",
    "sweep_figure2",
    "sweep_figure7",
    "sweep_figure8",
    "sweep_figure9",
    "sweep_scenarios",
    "sweep_xen_study",
]
