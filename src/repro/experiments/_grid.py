"""Shared dict-indexed lookup for the per-figure result dataclasses.

Every figure result holds an append-only list of row/cell objects and
offers a keyed accessor.  This helper backs those accessors with a
lazily built dict index (O(1) lookups instead of linear scans) that is
rebuilt whenever rows were appended since the last build or the
requested key is absent, so a stale index can never hide a row.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, TypeVar

Row = TypeVar("Row")


def indexed_lookup(
    owner: Any,
    rows: Sequence[Row],
    key_of: Callable[[Row], Any],
    key: Any,
) -> Row:
    """Return the row of ``rows`` whose ``key_of(row)`` equals ``key``.

    The index is cached on ``owner`` (a plain attribute, invisible to
    ``dataclasses.asdict``).  Rows are expected to be append-only;
    replacing a row in place with another carrying the same key keeps
    serving the old object until rows are appended.

    Raises ``KeyError(key)`` when no row matches.
    """
    index = owner.__dict__.get("_index")
    if index is None or len(index) != len(rows) or key not in index:
        index = {key_of(row): row for row in rows}
        owner._index = index
    try:
        return index[key]
    except KeyError:
        raise KeyError(key) from None
