"""Figure 9: sensitivity to translation structure sizes.

TLBs, nTLBs and MMU caches are scaled to 1x, 2x and 4x their default
sizes.  Under software coherence the bigger structures barely help --
the constant full flushes throw their contents away -- whereas with
HATRIC (and ideal coherence) the extra capacity is actually usable.
Everything is normalized to the no-die-stacked-DRAM baseline with 1x
structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.runner import (
    PAPER_WORKLOADS,
    ExperimentScale,
    baseline_config,
    no_hbm_config,
    run_configuration,
)
from repro.sim.config import TranslationConfig

#: Structure size multipliers swept by the figure.
SIZE_SCALES = (1, 2, 4)
FIGURE9_SERIES = ("sw", "hatric", "ideal")

_PROTOCOL_OF_SERIES = {"sw": "software", "hatric": "hatric", "ideal": "ideal"}


@dataclass
class Figure9Cell:
    """One bar: workload x structure scale x mechanism."""

    workload: str
    size_scale: int
    series: str
    normalized_runtime: float


@dataclass
class Figure9Result:
    """All bars of Figure 9."""

    cells: list[Figure9Cell] = field(default_factory=list)

    def value(self, workload: str, size_scale: int, series: str) -> float:
        """Normalized runtime of one bar."""
        for cell in self.cells:
            if (
                cell.workload == workload
                and cell.size_scale == size_scale
                and cell.series == series
            ):
                return cell.normalized_runtime
        raise KeyError((workload, size_scale, series))


def run_figure9(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    size_scales: Sequence[int] = SIZE_SCALES,
    num_cpus: int = 16,
    scale: Optional[ExperimentScale] = None,
) -> Figure9Result:
    """Regenerate Figure 9."""
    scale = scale or ExperimentScale.from_environment()
    result = Figure9Result()
    for name in workloads:
        baseline = run_configuration(no_hbm_config(num_cpus), name, scale)
        for size_scale in size_scales:
            translation = TranslationConfig().scaled(size_scale)
            for series in FIGURE9_SERIES:
                config = baseline_config(
                    num_cpus,
                    protocol=_PROTOCOL_OF_SERIES[series],
                    translation=translation,
                )
                run = run_configuration(config, name, scale)
                result.cells.append(
                    Figure9Cell(
                        workload=name,
                        size_scale=size_scale,
                        series=series,
                        normalized_runtime=run.normalized_runtime(baseline),
                    )
                )
    return result


def format_figure9(result: Figure9Result) -> str:
    """Render the figure as a table: one row per workload x size scale."""
    header = f"{'workload':<14}{'size':>6}" + "".join(
        f"{s:>10}" for s in FIGURE9_SERIES
    )
    lines = [header, "-" * len(header)]
    seen = []
    for cell in result.cells:
        key = (cell.workload, cell.size_scale)
        if key in seen:
            continue
        seen.append(key)
        values = "".join(
            f"{result.value(cell.workload, cell.size_scale, s):>10.2f}"
            for s in FIGURE9_SERIES
        )
        lines.append(f"{cell.workload:<14}{cell.size_scale:>5}x{values}")
    return "\n".join(lines)
