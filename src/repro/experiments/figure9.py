"""Figure 9: sensitivity to translation structure sizes.

TLBs, nTLBs and MMU caches are scaled to 1x, 2x and 4x their default
sizes.  Under software coherence the bigger structures barely help --
the constant full flushes throw their contents away -- whereas with
HATRIC (and ideal coherence) the extra capacity is actually usable.
Everything is normalized to the no-die-stacked-DRAM baseline with 1x
structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.api import ExperimentScale, Session, Sweep
from repro.experiments._grid import indexed_lookup
from repro.experiments.runner import PAPER_WORKLOADS, baseline_config
from repro.sim.config import (
    PLACEMENT_PAGED,
    PLACEMENT_SLOW_ONLY,
    SystemConfig,
    TranslationConfig,
)

#: Structure size multipliers swept by the figure.
SIZE_SCALES = (1, 2, 4)
FIGURE9_SERIES = ("sw", "hatric", "ideal")

_PROTOCOL_OF_SERIES = {"sw": "software", "hatric": "hatric", "ideal": "ideal"}


def _configure(config: SystemConfig, coords: Mapping[str, Any]) -> SystemConfig:
    series = coords["series"]
    if series == "no-hbm":
        protocol, placement = "ideal", PLACEMENT_SLOW_ONLY
    else:
        protocol, placement = _PROTOCOL_OF_SERIES[series], PLACEMENT_PAGED
    return config.replace(
        protocol=protocol,
        placement=placement,
        translation=TranslationConfig().scaled(coords["size_scale"]),
    )


@dataclass
class Figure9Cell:
    """One bar: workload x structure scale x mechanism."""

    workload: str
    size_scale: int
    series: str
    normalized_runtime: float


@dataclass
class Figure9Result:
    """All bars of Figure 9."""

    cells: list[Figure9Cell] = field(default_factory=list)

    def value(self, workload: str, size_scale: int, series: str) -> float:
        """Normalized runtime of one bar (dict-indexed, O(1))."""
        cell = indexed_lookup(
            self,
            self.cells,
            lambda c: (c.workload, c.size_scale, c.series),
            (workload, size_scale, series),
        )
        return cell.normalized_runtime


def sweep_figure9(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    size_scales: Sequence[int] = SIZE_SCALES,
    num_cpus: int = 16,
) -> Sweep:
    """The declarative sweep behind Figure 9 (baseline: no-hbm at 1x)."""
    return Sweep(
        axes={
            "workload": tuple(workloads),
            "size_scale": tuple(size_scales),
            "series": FIGURE9_SERIES,
        },
        base=baseline_config(num_cpus),
        configure=_configure,
    ).normalize_to(series="no-hbm", size_scale=1)


def run_figure9(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    size_scales: Sequence[int] = SIZE_SCALES,
    num_cpus: int = 16,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
) -> Figure9Result:
    """Regenerate Figure 9."""
    grid = sweep_figure9(workloads, size_scales, num_cpus).run(
        session=session, scale=scale
    )
    result = Figure9Result()
    for cell in grid:
        result.cells.append(
            Figure9Cell(
                workload=cell.coords["workload"],
                size_scale=cell.coords["size_scale"],
                series=cell.coords["series"],
                normalized_runtime=cell.normalized_runtime,
            )
        )
    return result


def format_figure9(result: Figure9Result) -> str:
    """Render the figure as a table: one row per workload x size scale."""
    header = f"{'workload':<14}{'size':>6}" + "".join(
        f"{s:>10}" for s in FIGURE9_SERIES
    )
    lines = [header, "-" * len(header)]
    seen = []
    for cell in result.cells:
        key = (cell.workload, cell.size_scale)
        if key in seen:
            continue
        seen.append(key)
        values = "".join(
            f"{result.value(cell.workload, cell.size_scale, s):>10.2f}"
            for s in FIGURE9_SERIES
        )
        lines.append(f"{cell.workload:<14}{cell.size_scale:>5}x{values}")
    return "\n".join(lines)
