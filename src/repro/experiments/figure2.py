"""Figure 2: the cost of software translation coherence (motivation).

For each big-memory workload, four configurations are compared, all
normalized to ``no-hbm`` (no die-stacked DRAM at all):

* ``no-hbm``     -- only off-chip DRAM;
* ``inf-hbm``    -- an unachievable upper bound where everything fits in
                    die-stacked DRAM;
* ``curr-best``  -- the best paging policy with today's software
                    translation coherence;
* ``achievable`` -- the same paging policy with zero-overhead (ideal)
                    translation coherence.

The paper's headline observations: ``curr-best`` falls far short of
``achievable``; for data caching and tunkrank it is even *slower* than
``no-hbm``; with ideal coherence the paging policy lands within a few
percent of the infinite-capacity bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.runner import (
    PAPER_WORKLOADS,
    ExperimentScale,
    baseline_config,
    inf_hbm_config,
    no_hbm_config,
    run_configuration,
)

#: Bars plotted per workload, in figure order.
FIGURE2_SERIES = ("no-hbm", "inf-hbm", "curr-best", "achievable")


@dataclass
class Figure2Row:
    """Normalized runtimes of one workload (no-hbm == 1.0)."""

    workload: str
    normalized_runtime: dict[str, float] = field(default_factory=dict)
    evictions: int = 0

    def regression_with_software(self) -> bool:
        """True when die-stacking plus software coherence loses to no-hbm."""
        return self.normalized_runtime["curr-best"] > 1.0


@dataclass
class Figure2Result:
    """All rows of Figure 2."""

    rows: list[Figure2Row] = field(default_factory=list)

    def row(self, workload: str) -> Figure2Row:
        """Return the row for a workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise KeyError(workload)


def run_figure2(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    num_cpus: int = 16,
    scale: Optional[ExperimentScale] = None,
) -> Figure2Result:
    """Regenerate Figure 2."""
    scale = scale or ExperimentScale.from_environment()
    result = Figure2Result()
    for name in workloads:
        baseline = run_configuration(no_hbm_config(num_cpus), name, scale)
        infinite = run_configuration(inf_hbm_config(num_cpus), name, scale)
        current = run_configuration(
            baseline_config(num_cpus, protocol="software"), name, scale
        )
        achievable = run_configuration(
            baseline_config(num_cpus, protocol="ideal"), name, scale
        )
        row = Figure2Row(workload=name)
        row.normalized_runtime = {
            "no-hbm": 1.0,
            "inf-hbm": infinite.normalized_runtime(baseline),
            "curr-best": current.normalized_runtime(baseline),
            "achievable": achievable.normalized_runtime(baseline),
        }
        row.evictions = current.events.get("paging.evictions", 0)
        result.rows.append(row)
    return result


def format_figure2(result: Figure2Result) -> str:
    """Render the figure as the table the paper's bar chart encodes."""
    header = f"{'workload':<14}" + "".join(f"{s:>12}" for s in FIGURE2_SERIES)
    lines = [header, "-" * len(header)]
    for row in result.rows:
        cells = "".join(
            f"{row.normalized_runtime[s]:>12.2f}" for s in FIGURE2_SERIES
        )
        lines.append(f"{row.workload:<14}{cells}")
    return "\n".join(lines)
