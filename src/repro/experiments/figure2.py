"""Figure 2: the cost of software translation coherence (motivation).

For each big-memory workload, four configurations are compared, all
normalized to ``no-hbm`` (no die-stacked DRAM at all):

* ``no-hbm``     -- only off-chip DRAM;
* ``inf-hbm``    -- an unachievable upper bound where everything fits in
                    die-stacked DRAM;
* ``curr-best``  -- the best paging policy with today's software
                    translation coherence;
* ``achievable`` -- the same paging policy with zero-overhead (ideal)
                    translation coherence.

The paper's headline observations: ``curr-best`` falls far short of
``achievable``; for data caching and tunkrank it is even *slower* than
``no-hbm``; with ideal coherence the paging policy lands within a few
percent of the infinite-capacity bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.api import ExperimentScale, Session, Sweep
from repro.experiments._grid import indexed_lookup
from repro.experiments.runner import PAPER_WORKLOADS, baseline_config
from repro.sim.config import (
    PLACEMENT_FAST_ONLY,
    PLACEMENT_PAGED,
    PLACEMENT_SLOW_ONLY,
    SystemConfig,
)

#: Bars plotted per workload, in figure order.
FIGURE2_SERIES = ("no-hbm", "inf-hbm", "curr-best", "achievable")

#: (protocol, placement) of each bar.
_SERIES_CONFIG = {
    "no-hbm": ("ideal", PLACEMENT_SLOW_ONLY),
    "inf-hbm": ("ideal", PLACEMENT_FAST_ONLY),
    "curr-best": ("software", PLACEMENT_PAGED),
    "achievable": ("ideal", PLACEMENT_PAGED),
}


def _configure(config: SystemConfig, coords: Mapping[str, Any]) -> SystemConfig:
    protocol, placement = _SERIES_CONFIG[coords["series"]]
    return config.replace(protocol=protocol, placement=placement)


@dataclass
class Figure2Row:
    """Normalized runtimes of one workload (no-hbm == 1.0)."""

    workload: str
    normalized_runtime: dict[str, float] = field(default_factory=dict)
    evictions: int = 0

    def regression_with_software(self) -> bool:
        """True when die-stacking plus software coherence loses to no-hbm."""
        return self.normalized_runtime["curr-best"] > 1.0


@dataclass
class Figure2Result:
    """All rows of Figure 2."""

    rows: list[Figure2Row] = field(default_factory=list)

    def row(self, workload: str) -> Figure2Row:
        """Return the row for a workload."""
        return indexed_lookup(self, self.rows, lambda r: r.workload, workload)


def sweep_figure2(
    workloads: Sequence[str] = PAPER_WORKLOADS, num_cpus: int = 16
) -> Sweep:
    """The declarative sweep behind Figure 2."""
    return Sweep(
        axes={"workload": tuple(workloads), "series": FIGURE2_SERIES},
        base=baseline_config(num_cpus),
        configure=_configure,
    ).normalize_to(series="no-hbm")


def run_figure2(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    num_cpus: int = 16,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
) -> Figure2Result:
    """Regenerate Figure 2."""
    grid = sweep_figure2(workloads, num_cpus).run(session=session, scale=scale)
    result = Figure2Result()
    for name in workloads:
        row = Figure2Row(workload=name)
        row.normalized_runtime = {
            series: grid.value(workload=name, series=series)
            for series in FIGURE2_SERIES
        }
        row.evictions = grid.result(workload=name, series="curr-best").events.get(
            "paging.evictions", 0
        )
        result.rows.append(row)
    return result


def format_figure2(result: Figure2Result) -> str:
    """Render the figure as the table the paper's bar chart encodes."""
    header = f"{'workload':<14}" + "".join(f"{s:>12}" for s in FIGURE2_SERIES)
    lines = [header, "-" * len(header)]
    for row in result.rows:
        cells = "".join(
            f"{row.normalized_runtime[s]:>12.2f}" for s in FIGURE2_SERIES
        )
        lines.append(f"{row.workload:<14}{cells}")
    return "\n".join(lines)
