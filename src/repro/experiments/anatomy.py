"""Anatomy of a page remap (Figure 3 and Section 3.2/3.3).

A microbenchmark that triggers exactly one nested page table remap after
every CPU has cached the victim page's translation, and reports what
each mechanism does: how many IPIs and VM exits it causes, how many
translation structure entries get invalidated versus flushed, and how
many cycles land on the initiator and on the targets.  It reproduces the
paper's qualitative claims -- thousands of cycles per software shootdown
spread over all vCPUs versus a handful of directory messages for HATRIC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.protocol import RemapEvent, make_protocol
from repro.core.cotag import CoTagScheme
from repro.cpu.chip import Chip
from repro.sim.config import SystemConfig
from repro.sim.stats import MachineStats
from repro.virt.kvm import KvmHypervisor

#: Mechanisms compared by the microbenchmark.
ANATOMY_PROTOCOLS = ("software", "unitd", "hatric", "ideal")


@dataclass
class AnatomyRow:
    """Cost breakdown of one remap under one mechanism."""

    protocol: str
    initiator_cycles: int
    total_target_cycles: int
    max_target_cycles: int
    ipis: int
    vm_exits: int
    entries_invalidated: int
    entries_flushed: int


@dataclass
class AnatomyResult:
    """All rows of the remap anatomy microbenchmark."""

    num_cpus: int
    rows: list[AnatomyRow] = field(default_factory=list)

    def row(self, protocol: str) -> AnatomyRow:
        """Return the row for one mechanism."""
        for row in self.rows:
            if row.protocol == protocol:
                return row
        raise KeyError(protocol)


def _single_remap_cost(protocol_name: str, num_cpus: int) -> AnatomyRow:
    config = SystemConfig(num_cpus=num_cpus, protocol=protocol_name)
    protocol = make_protocol(protocol_name)
    stats = MachineStats(num_cpus)
    cotag_scheme = (
        CoTagScheme(config.translation.cotag_bytes) if protocol.uses_cotags else None
    )
    chip = Chip(
        config,
        stats,
        cotag_scheme=cotag_scheme,
        track_translation_sharers=protocol.tracks_translation_sharers,
    )
    protocol.bind(chip, stats, config.costs)
    hypervisor = KvmHypervisor(chip, config, protocol, stats)
    vm = hypervisor.create_vm(vcpu_pcpus=list(range(num_cpus)))
    process = vm.create_process()

    # Every CPU touches the same page so all of them cache its translation.
    gvp = 0x40000
    gpp = process.ensure_guest_mapping(gvp)
    hypervisor.handle_nested_fault(process, gpp, cpu=0)
    for cpu in range(num_cpus):
        outcome = chip.core(cpu).translate(process, gvp)
        assert outcome.fault is None

    resident_before = chip.total_resident_translations()
    leaf = process.nested_page_table.lookup(gpp)
    event = RemapEvent(
        initiator_cpu=0,
        target_cpus=vm.target_cpus,
        gpp=gpp,
        old_spp=leaf.pfn,
        new_spp=None,
        pte_address=leaf.address,
        vm_id=vm.vm_id,
    )
    cost = protocol.on_nested_remap(event)
    resident_after = chip.total_resident_translations()

    events = stats.events
    return AnatomyRow(
        protocol=protocol_name,
        initiator_cycles=cost.initiator_cycles,
        total_target_cycles=sum(cost.target_cycles.values()),
        max_target_cycles=max(cost.target_cycles.values(), default=0),
        ipis=events.get("coherence.ipis", 0),
        vm_exits=events.get("coherence.vm_exits", 0),
        entries_invalidated=resident_before - resident_after,
        entries_flushed=events.get("coherence.flushed_entries", 0)
        + events.get("unitd.flushed_entries", 0),
    )


def run_anatomy(
    protocols: Sequence[str] = ANATOMY_PROTOCOLS, num_cpus: int = 16
) -> AnatomyResult:
    """Run the single-remap microbenchmark for every mechanism."""
    result = AnatomyResult(num_cpus=num_cpus)
    for name in protocols:
        result.rows.append(_single_remap_cost(name, num_cpus))
    return result


def format_anatomy(result: AnatomyResult) -> str:
    """Render the cost breakdown as a table."""
    header = (
        f"{'mechanism':<10}{'init cyc':>10}{'tgt cyc':>10}{'max tgt':>9}"
        f"{'IPIs':>6}{'exits':>7}{'inval':>7}{'flushed':>9}"
    )
    lines = [f"single page remap on a {result.num_cpus}-CPU VM", header, "-" * len(header)]
    for row in result.rows:
        lines.append(
            f"{row.protocol:<10}{row.initiator_cycles:>10}{row.total_target_cycles:>10}"
            f"{row.max_target_cycles:>9}{row.ipis:>6}{row.vm_exits:>7}"
            f"{row.entries_invalidated:>7}{row.entries_flushed:>9}"
        )
    return "\n".join(lines)
