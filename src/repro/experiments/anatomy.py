"""Anatomy of a page remap (Figure 3 and Section 3.2/3.3).

A microbenchmark that triggers exactly one nested page table remap after
every CPU has cached the victim page's translation, and reports what
each mechanism does: how many IPIs and VM exits it causes, how many
translation structure entries get invalidated versus flushed, and how
many cycles land on the initiator and on the targets.  It reproduces the
paper's qualitative claims -- thousands of cycles per software shootdown
spread over all vCPUs versus a handful of directory messages for HATRIC.

The microbenchmark itself lives in :mod:`repro.sim.remap_anatomy`; this
module declares the per-protocol comparison as a batch of
:class:`~repro.api.request.RunRequest` objects executed (and therefore
deduplicated and cached) through a :class:`~repro.api.session.Session`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.api import RunRequest, Session, default_session
from repro.experiments._grid import indexed_lookup
from repro.sim.config import SystemConfig
from repro.sim.remap_anatomy import AnatomyRow

__all__ = [
    "ANATOMY_PROTOCOLS",
    "AnatomyResult",
    "AnatomyRow",
    "format_anatomy",
    "run_anatomy",
]

#: Mechanisms compared by the microbenchmark.
ANATOMY_PROTOCOLS = ("software", "unitd", "hatric", "ideal")


@dataclass
class AnatomyResult:
    """All rows of the remap anatomy microbenchmark."""

    num_cpus: int
    rows: list[AnatomyRow] = field(default_factory=list)

    def row(self, protocol: str) -> AnatomyRow:
        """Return the row for one mechanism (dict-indexed)."""
        return indexed_lookup(self, self.rows, lambda r: r.protocol, protocol)


def anatomy_requests(
    protocols: Sequence[str] = ANATOMY_PROTOCOLS, num_cpus: int = 16
) -> list[RunRequest]:
    """The remap-anatomy request batch, one request per mechanism."""
    return [
        RunRequest(
            config=SystemConfig(num_cpus=num_cpus, protocol=protocol),
            experiment="remap",
        )
        for protocol in protocols
    ]


def run_anatomy(
    protocols: Sequence[str] = ANATOMY_PROTOCOLS,
    num_cpus: int = 16,
    session: Optional[Session] = None,
) -> AnatomyResult:
    """Run the single-remap microbenchmark for every mechanism."""
    session = session if session is not None else default_session()
    rows = session.run_batch(anatomy_requests(protocols, num_cpus))
    return AnatomyResult(num_cpus=num_cpus, rows=list(rows))


def format_anatomy(result: AnatomyResult) -> str:
    """Render the cost breakdown as a table."""
    header = (
        f"{'mechanism':<10}{'init cyc':>10}{'tgt cyc':>10}{'max tgt':>9}"
        f"{'IPIs':>6}{'exits':>7}{'inval':>7}{'flushed':>9}"
    )
    lines = [f"single page remap on a {result.num_cpus}-CPU VM", header, "-" * len(header)]
    for row in result.rows:
        lines.append(
            f"{row.protocol:<10}{row.initiator_cycles:>10}{row.total_target_cycles:>10}"
            f"{row.max_target_cycles:>9}{row.ipis:>6}{row.vm_exits:>7}"
            f"{row.entries_invalidated:>7}{row.entries_flushed:>9}"
        )
    return "\n".join(lines)
