"""Figure 12: coherence directory design decisions (ablation).

Baseline HATRIC (lazy sharer updates, pseudo-specific tracking, finite
dual-grain directory with back-invalidations) is compared against:

* ``EGR-dir-update`` -- eager sharer updates on every page-table line
  eviction, which needs extra translation structure lookups;
* ``FG-tracking``    -- fine-grained (per-structure) sharer tracking,
  eliminating spurious messages at the cost of a costlier directory;
* ``No-back-inv``    -- an idealised infinite directory that never needs
  back-invalidations;
* ``All``            -- all three combined.

Average runtime and energy are reported normalized to the best software
paging policy (``sw``), as in the paper: none of the alternatives buys
meaningful performance over baseline HATRIC, and the eager/fine-grained
variants cost energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.api import ExperimentScale, Session, Sweep
from repro.experiments._grid import indexed_lookup
from repro.experiments.runner import PAPER_WORKLOADS, baseline_config
from repro.sim.config import CoherenceDirectoryConfig, SystemConfig

#: Design points in figure order.
FIGURE12_DESIGNS = (
    "hatric",
    "EGR-dir-update",
    "FG-tracking",
    "No-back-inv",
    "All",
)


def _directory_for(design: str) -> CoherenceDirectoryConfig:
    base = CoherenceDirectoryConfig()
    if design == "hatric":
        return base
    if design == "EGR-dir-update":
        return CoherenceDirectoryConfig(
            capacity=base.capacity, lazy_pt_sharer_updates=False
        )
    if design == "FG-tracking":
        return CoherenceDirectoryConfig(capacity=base.capacity, fine_grained=True)
    if design == "No-back-inv":
        return CoherenceDirectoryConfig(capacity=None)
    if design == "All":
        return CoherenceDirectoryConfig(
            capacity=None, lazy_pt_sharer_updates=False, fine_grained=True
        )
    raise ValueError(f"unknown figure-12 design {design!r}")


def _configure(config: SystemConfig, coords: Mapping[str, Any]) -> SystemConfig:
    design = coords["design"]
    if design == "sw":
        return config.replace(protocol="software")
    return config.replace(protocol="hatric", directory=_directory_for(design))


@dataclass
class Figure12Cell:
    """Average runtime/energy of one design, normalized to sw."""

    design: str
    relative_runtime: float
    relative_energy: float


@dataclass
class Figure12Result:
    """All design points of Figure 12."""

    cells: list[Figure12Cell] = field(default_factory=list)

    def cell(self, design: str) -> Figure12Cell:
        """Return the cell for one design point (dict-indexed)."""
        return indexed_lookup(self, self.cells, lambda c: c.design, design)


def sweep_figure12(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    designs: Sequence[str] = FIGURE12_DESIGNS,
    num_cpus: int = 16,
) -> Sweep:
    """The declarative sweep behind Figure 12."""
    for design in designs:
        _directory_for(design)  # reject unknown designs before running
    return Sweep(
        axes={"workload": tuple(workloads), "design": tuple(designs)},
        base=baseline_config(num_cpus),
        configure=_configure,
    ).normalize_to(design="sw")


def run_figure12(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    designs: Sequence[str] = FIGURE12_DESIGNS,
    num_cpus: int = 16,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
) -> Figure12Result:
    """Regenerate Figure 12."""
    grid = sweep_figure12(workloads, designs, num_cpus).run(
        session=session, scale=scale
    )
    result = Figure12Result()
    for design in designs:
        cells = [grid.cell(workload=name, design=design) for name in workloads]
        result.cells.append(
            Figure12Cell(
                design=design,
                relative_runtime=sum(c.normalized_runtime for c in cells)
                / len(cells),
                relative_energy=sum(c.normalized_energy for c in cells)
                / len(cells),
            )
        )
    return result


def format_figure12(result: Figure12Result) -> str:
    """Render the ablation as a table."""
    header = f"{'design':<16}{'runtime':>10}{'energy':>10}"
    lines = [header, "-" * len(header)]
    for cell in result.cells:
        lines.append(
            f"{cell.design:<16}{cell.relative_runtime:>10.3f}"
            f"{cell.relative_energy:>10.3f}"
        )
    return "\n".join(lines)
