"""Figure 11: performance-energy trade-offs and co-tag sizing.

Left panel: every workload (the big-memory suite *and* the
small-footprint suite whose data fits in die-stacked DRAM) is run with
the best software paging policy and with HATRIC; each point is HATRIC's
(runtime, energy) relative to the software baseline.  The paper's
observations: HATRIC always improves runtime, almost always improves
energy (1-10% routine), and the rare energy regressions (co-tag overhead
not amortised) stay within ~1.5%.

Right panel: co-tag width is swept over 1, 2 and 3 bytes on the
big-memory suite.  2-byte co-tags are the sweet spot; 1-byte tags alias
too much (extra invalidations cost both time and energy), 3-byte tags
buy little performance for noticeably more energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional, Sequence

from repro.api import ExperimentScale, Session, Sweep
from repro.experiments._grid import indexed_lookup
from repro.experiments.runner import PAPER_WORKLOADS, baseline_config
from repro.sim.config import SystemConfig, TranslationConfig
from repro.workloads.suite import SMALL_WORKLOAD_SPECS

#: Small-footprint workloads included in the left panel.
SMALL_WORKLOADS = tuple(SMALL_WORKLOAD_SPECS)
#: Co-tag widths (bytes) swept by the right panel.
COTAG_SIZES = (1, 2, 3)

#: Defragmentation interval used for the small-footprint workloads: they
#: do not page between DRAM tiers, but the hypervisor still compacts
#: memory to build superpages, which is the residual remap activity the
#: paper says HATRIC also helps with.
_SMALL_WORKLOAD_DEFRAG_INTERVAL = 3000

_PROTOCOL_OF_SERIES = {"sw": "software", "hatric": "hatric"}


def _configure_left(small_workloads: Sequence[str]):
    """Build the left panel's configure hook for one workload split.

    The defrag-interval override must follow the caller's
    ``small_workloads`` argument, not the module-level suite constant.
    """
    small = frozenset(small_workloads)

    def configure(config: SystemConfig, coords: Mapping[str, Any]) -> SystemConfig:
        config = config.replace(protocol=_PROTOCOL_OF_SERIES[coords["series"]])
        if coords["workload"] in small:
            config = config.replace(
                paging=replace(
                    config.paging, defrag_interval=_SMALL_WORKLOAD_DEFRAG_INTERVAL
                )
            )
        return config

    return configure


def _configure_right(config: SystemConfig, coords: Mapping[str, Any]) -> SystemConfig:
    cotag = coords["cotag"]
    if cotag == "sw":
        return config.replace(protocol="software")
    return config.replace(
        protocol="hatric", translation=TranslationConfig(cotag_bytes=cotag)
    )


@dataclass
class Figure11Point:
    """One scatter point of the left panel."""

    workload: str
    paged: bool
    relative_runtime: float
    relative_energy: float


@dataclass
class Figure11LeftResult:
    """HATRIC vs software baseline for every workload."""

    points: list[Figure11Point] = field(default_factory=list)

    def energy_regressions(self) -> list[Figure11Point]:
        """Points whose energy exceeds the software baseline."""
        return [p for p in self.points if p.relative_energy > 1.0]


@dataclass
class Figure11RightCell:
    """Average relative runtime/energy for one co-tag width."""

    cotag_bytes: int
    relative_runtime: float
    relative_energy: float


@dataclass
class Figure11RightResult:
    """The co-tag sizing sweep."""

    cells: list[Figure11RightCell] = field(default_factory=list)

    def cell(self, cotag_bytes: int) -> Figure11RightCell:
        """Return the cell for a co-tag width (dict-indexed)."""
        return indexed_lookup(
            self, self.cells, lambda c: c.cotag_bytes, cotag_bytes
        )


def sweep_figure11_left(
    big_workloads: Sequence[str] = PAPER_WORKLOADS,
    small_workloads: Sequence[str] = SMALL_WORKLOADS,
    num_cpus: int = 16,
) -> Sweep:
    """The declarative sweep behind the left panel."""
    return Sweep(
        axes={
            "workload": tuple(big_workloads) + tuple(small_workloads),
            "series": ("hatric",),
        },
        base=baseline_config(num_cpus),
        configure=_configure_left(small_workloads),
    ).normalize_to(series="sw")


def run_figure11_left(
    big_workloads: Sequence[str] = PAPER_WORKLOADS,
    small_workloads: Sequence[str] = SMALL_WORKLOADS,
    num_cpus: int = 16,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
) -> Figure11LeftResult:
    """Regenerate the left panel of Figure 11."""
    grid = sweep_figure11_left(big_workloads, small_workloads, num_cpus).run(
        session=session, scale=scale
    )
    result = Figure11LeftResult()
    for name in tuple(big_workloads) + tuple(small_workloads):
        cell = grid.cell(workload=name, series="hatric")
        result.points.append(
            Figure11Point(
                workload=name,
                paged=name in tuple(big_workloads),
                relative_runtime=cell.normalized_runtime,
                relative_energy=cell.normalized_energy,
            )
        )
    return result


def sweep_figure11_right(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    cotag_sizes: Sequence[int] = COTAG_SIZES,
    num_cpus: int = 16,
) -> Sweep:
    """The declarative sweep behind the right panel."""
    return Sweep(
        axes={"workload": tuple(workloads), "cotag": tuple(cotag_sizes)},
        base=baseline_config(num_cpus),
        configure=_configure_right,
    ).normalize_to(cotag="sw")


def run_figure11_right(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    cotag_sizes: Sequence[int] = COTAG_SIZES,
    num_cpus: int = 16,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
) -> Figure11RightResult:
    """Regenerate the right panel of Figure 11."""
    grid = sweep_figure11_right(workloads, cotag_sizes, num_cpus).run(
        session=session, scale=scale
    )
    result = Figure11RightResult()
    for size in cotag_sizes:
        cells = [grid.cell(workload=name, cotag=size) for name in workloads]
        result.cells.append(
            Figure11RightCell(
                cotag_bytes=size,
                relative_runtime=sum(c.normalized_runtime for c in cells)
                / len(cells),
                relative_energy=sum(c.normalized_energy for c in cells)
                / len(cells),
            )
        )
    return result


def format_figure11_left(result: Figure11LeftResult) -> str:
    """Render the scatter points as a table."""
    header = f"{'workload':<16}{'paged':>7}{'runtime':>10}{'energy':>10}"
    lines = [header, "-" * len(header)]
    for point in result.points:
        lines.append(
            f"{point.workload:<16}{'yes' if point.paged else 'no':>7}"
            f"{point.relative_runtime:>10.3f}{point.relative_energy:>10.3f}"
        )
    return "\n".join(lines)


def format_figure11_right(result: Figure11RightResult) -> str:
    """Render the co-tag sweep as a table."""
    header = f"{'co-tag bytes':<14}{'runtime':>10}{'energy':>10}"
    lines = [header, "-" * len(header)]
    for cell in result.cells:
        lines.append(
            f"{cell.cotag_bytes:<14}{cell.relative_runtime:>10.3f}"
            f"{cell.relative_energy:>10.3f}"
        )
    return "\n".join(lines)
