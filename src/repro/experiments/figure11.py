"""Figure 11: performance-energy trade-offs and co-tag sizing.

Left panel: every workload (the big-memory suite *and* the
small-footprint suite whose data fits in die-stacked DRAM) is run with
the best software paging policy and with HATRIC; each point is HATRIC's
(runtime, energy) relative to the software baseline.  The paper's
observations: HATRIC always improves runtime, almost always improves
energy (1-10% routine), and the rare energy regressions (co-tag overhead
not amortised) stay within ~1.5%.

Right panel: co-tag width is swept over 1, 2 and 3 bytes on the
big-memory suite.  2-byte co-tags are the sweet spot; 1-byte tags alias
too much (extra invalidations cost both time and energy), 3-byte tags
buy little performance for noticeably more energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.runner import (
    PAPER_WORKLOADS,
    ExperimentScale,
    baseline_config,
    run_configuration,
)
from repro.sim.config import TranslationConfig
from repro.workloads.suite import SMALL_WORKLOAD_SPECS

#: Small-footprint workloads included in the left panel.
SMALL_WORKLOADS = tuple(SMALL_WORKLOAD_SPECS)
#: Co-tag widths (bytes) swept by the right panel.
COTAG_SIZES = (1, 2, 3)

#: Defragmentation interval used for the small-footprint workloads: they
#: do not page between DRAM tiers, but the hypervisor still compacts
#: memory to build superpages, which is the residual remap activity the
#: paper says HATRIC also helps with.
_SMALL_WORKLOAD_DEFRAG_INTERVAL = 3000


@dataclass
class Figure11Point:
    """One scatter point of the left panel."""

    workload: str
    paged: bool
    relative_runtime: float
    relative_energy: float


@dataclass
class Figure11LeftResult:
    """HATRIC vs software baseline for every workload."""

    points: list[Figure11Point] = field(default_factory=list)

    def energy_regressions(self) -> list[Figure11Point]:
        """Points whose energy exceeds the software baseline."""
        return [p for p in self.points if p.relative_energy > 1.0]


@dataclass
class Figure11RightCell:
    """Average relative runtime/energy for one co-tag width."""

    cotag_bytes: int
    relative_runtime: float
    relative_energy: float


@dataclass
class Figure11RightResult:
    """The co-tag sizing sweep."""

    cells: list[Figure11RightCell] = field(default_factory=list)

    def cell(self, cotag_bytes: int) -> Figure11RightCell:
        """Return the cell for a co-tag width."""
        for cell in self.cells:
            if cell.cotag_bytes == cotag_bytes:
                return cell
        raise KeyError(cotag_bytes)


def run_figure11_left(
    big_workloads: Sequence[str] = PAPER_WORKLOADS,
    small_workloads: Sequence[str] = SMALL_WORKLOADS,
    num_cpus: int = 16,
    scale: Optional[ExperimentScale] = None,
) -> Figure11LeftResult:
    """Regenerate the left panel of Figure 11."""
    scale = scale or ExperimentScale.from_environment()
    result = Figure11LeftResult()
    for name, paged in [(w, True) for w in big_workloads] + [
        (w, False) for w in small_workloads
    ]:
        overrides = {}
        if not paged:
            paging = baseline_config(num_cpus).paging
            overrides["paging"] = paging.__class__(
                policy=paging.policy,
                migration_daemon=paging.migration_daemon,
                daemon_free_target=paging.daemon_free_target,
                prefetch_pages=paging.prefetch_pages,
                defrag_interval=_SMALL_WORKLOAD_DEFRAG_INTERVAL,
            )
        software = run_configuration(
            baseline_config(num_cpus, protocol="software", **overrides), name, scale
        )
        hatric = run_configuration(
            baseline_config(num_cpus, protocol="hatric", **overrides), name, scale
        )
        result.points.append(
            Figure11Point(
                workload=name,
                paged=paged,
                relative_runtime=hatric.normalized_runtime(software),
                relative_energy=hatric.normalized_energy(software),
            )
        )
    return result


def run_figure11_right(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    cotag_sizes: Sequence[int] = COTAG_SIZES,
    num_cpus: int = 16,
    scale: Optional[ExperimentScale] = None,
) -> Figure11RightResult:
    """Regenerate the right panel of Figure 11."""
    scale = scale or ExperimentScale.from_environment()
    result = Figure11RightResult()
    baselines = {
        name: run_configuration(
            baseline_config(num_cpus, protocol="software"), name, scale
        )
        for name in workloads
    }
    for size in cotag_sizes:
        runtimes = []
        energies = []
        for name in workloads:
            config = baseline_config(
                num_cpus,
                protocol="hatric",
                translation=TranslationConfig(cotag_bytes=size),
            )
            run = run_configuration(config, name, scale)
            runtimes.append(run.normalized_runtime(baselines[name]))
            energies.append(run.normalized_energy(baselines[name]))
        result.cells.append(
            Figure11RightCell(
                cotag_bytes=size,
                relative_runtime=sum(runtimes) / len(runtimes),
                relative_energy=sum(energies) / len(energies),
            )
        )
    return result


def format_figure11_left(result: Figure11LeftResult) -> str:
    """Render the scatter points as a table."""
    header = f"{'workload':<16}{'paged':>7}{'runtime':>10}{'energy':>10}"
    lines = [header, "-" * len(header)]
    for point in result.points:
        lines.append(
            f"{point.workload:<16}{'yes' if point.paged else 'no':>7}"
            f"{point.relative_runtime:>10.3f}{point.relative_energy:>10.3f}"
        )
    return "\n".join(lines)


def format_figure11_right(result: Figure11RightResult) -> str:
    """Render the co-tag sweep as a table."""
    header = f"{'co-tag bytes':<14}{'runtime':>10}{'energy':>10}"
    lines = [header, "-" * len(header)]
    for cell in result.cells:
        lines.append(
            f"{cell.cotag_bytes:<14}{cell.relative_runtime:>10.3f}"
            f"{cell.relative_energy:>10.3f}"
        )
    return "\n".join(lines)
