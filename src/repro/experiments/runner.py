"""Shared plumbing for the experiment harnesses.

Every figure is regenerated from the same ingredients: build a
:class:`~repro.sim.config.SystemConfig` for a (protocol, placement,
policy, ...) point, run a workload on it, and normalize runtimes /
energies against a baseline run.  This module centralises that plumbing
and the scaling knob that lets benchmarks run shortened traces.
"""

from __future__ import annotations

from typing import Optional

from repro.api.scale import SCALE_ENV_VAR, ExperimentScale
from repro.sim.config import (
    PLACEMENT_FAST_ONLY,
    PLACEMENT_PAGED,
    PLACEMENT_SLOW_ONLY,
    PagingConfig,
    SystemConfig,
)
from repro.sim.simulator import SimulationResult, Simulator
from repro.workloads import make_workload
from repro.workloads.base import MultiprogrammedWorkload, Workload

__all__ = [
    "ExperimentScale",
    "PAPER_WORKLOADS",
    "SCALE_ENV_VAR",
    "baseline_config",
    "inf_hbm_config",
    "no_hbm_config",
    "paging_config",
    "run_configuration",
]

#: The five big-memory workloads every per-workload figure sweeps.
PAPER_WORKLOADS = ("canneal", "data_caching", "graph500", "tunkrank", "facesim")


def baseline_config(
    num_cpus: int = 16,
    protocol: str = "hatric",
    placement: str = PLACEMENT_PAGED,
    hypervisor: str = "kvm",
    **overrides,
) -> SystemConfig:
    """The default system the paper evaluates (Section 5.1), scaled down.

    16 CPUs (one per vCPU), die-stacked plus off-chip DRAM at a 1:4
    capacity ratio, LRU paging with a migration daemon and prefetching.
    """
    config = SystemConfig(
        num_cpus=num_cpus,
        protocol=protocol,
        placement=placement,
        hypervisor=hypervisor,
    )
    if overrides:
        config = config.replace(**overrides)
    return config


def no_hbm_config(num_cpus: int = 16, **overrides) -> SystemConfig:
    """The ``no-hbm`` baseline: only off-chip DRAM is used."""
    return baseline_config(
        num_cpus=num_cpus,
        protocol="ideal",
        placement=PLACEMENT_SLOW_ONLY,
        **overrides,
    )


def inf_hbm_config(num_cpus: int = 16, **overrides) -> SystemConfig:
    """The ``inf-hbm`` upper bound: everything fits in die-stacked DRAM."""
    return baseline_config(
        num_cpus=num_cpus,
        protocol="ideal",
        placement=PLACEMENT_FAST_ONLY,
        **overrides,
    )


def run_configuration(
    config: SystemConfig,
    workload: Workload | MultiprogrammedWorkload | str,
    scale: Optional[ExperimentScale] = None,
    validate: bool = False,
) -> SimulationResult:
    """Run one workload on one configuration and return the result."""
    scale = scale or ExperimentScale()
    if isinstance(workload, str):
        workload = make_workload(workload)
    simulator = Simulator(config, validate=validate)
    return simulator.run(
        workload,
        warmup_fraction=scale.warmup_fraction,
        refs_total=scale.refs_for(workload),
    )


def paging_config(
    policy: str = "lru",
    migration_daemon: bool = True,
    prefetch_pages: int = 2,
    defrag_interval: int = 0,
) -> PagingConfig:
    """Convenience constructor for paging-policy sweeps (Figure 8)."""
    return PagingConfig(
        policy=policy,
        migration_daemon=migration_daemon,
        prefetch_pages=prefetch_pages,
        defrag_interval=defrag_interval,
    )
