"""Time-resolved protocol comparison: ``python -m repro timeline``.

End-of-run aggregates hide *when* translation coherence hurts.  The
paper's pathologies are phase phenomena -- migration-daemon bursts,
dirty-page-logging sweeps, compaction storms -- during which the
software baseline takes an IPI/VM-exit/flush storm while HATRIC's
co-tag invalidations stay flat.  This module runs the same workload
under several protocols with interval telemetry enabled
(:class:`~repro.sim.stats.IntervalSample` deltas every K references)
and lines the protocols' per-interval coherence behaviour up side by
side.

Runs flow through the shared :class:`~repro.api.session.Session`, so
timelines are cached like any other request, and ``multi:`` composed
names give consolidated (multi-guest) timelines with per-VM deltas in
each sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.api.request import RunRequest
from repro.api.scale import ExperimentScale
from repro.api.session import Session, default_session
from repro.experiments.output import render_table
from repro.experiments.runner import baseline_config
from repro.obs.profile import interval_series, sparkline
from repro.sim.simulator import SimulationResult
from repro.sim.stats import IntervalSample
from repro.workloads import make_workload

#: Protocols compared by default (the paper's headline matchup plus the
#: zero-overhead oracle as the floor).
TIMELINE_PROTOCOLS = ("software", "hatric", "ideal")

#: Default scenario: the steady-state remap source (Section 3.1) on the
#: smallest machine shape where the protocols separate clearly.
DEFAULT_TIMELINE_WORKLOAD = "syn:migration-daemon/addr=zipf/seed=7"
DEFAULT_TIMELINE_VCPUS = 8
DEFAULT_TIMELINE_REFS = 20_000

#: Event-counter keys summarized per interval in the rendered table.
_SHOOTDOWN_EVENTS = (
    "coherence.ipis",
    "coherence.vm_exits",
    "hatric.invalidation_messages",
    "unitd.invalidation_messages",
)
_REMAP_EVENT = "coherence.remaps"


@dataclass
class TimelineSeries:
    """One protocol's run, decomposed into interval samples."""

    protocol: str
    result: SimulationResult

    @property
    def samples(self) -> list[IntervalSample]:
        """The run's interval samples, in time order."""
        return self.result.intervals

    def interval_rows(self) -> list[dict[str, Any]]:
        """JSON-friendly per-interval summary rows."""
        rows = []
        for sample in self.samples:
            rows.append(
                {
                    "start_refs": sample.start_refs,
                    "end_refs": sample.end_refs,
                    "busy_cycles": sample.busy_cycles,
                    "coherence_cycles": sample.coherence_cycles,
                    "remaps": sample.events.get(_REMAP_EVENT, 0),
                    "shootdown_messages": sum(
                        sample.events.get(key, 0) for key in _SHOOTDOWN_EVENTS
                    ),
                    "energy": sample.energy,
                }
            )
        return rows


@dataclass
class TimelineResult:
    """A full timeline study: one series per protocol."""

    workload: str
    refs_total: int
    interval_refs: int
    num_cpus: int
    series: list[TimelineSeries] = field(default_factory=list)

    def series_for(self, protocol: str) -> TimelineSeries:
        """The series of one protocol."""
        for series in self.series:
            if series.protocol == protocol:
                return series
        raise KeyError(protocol)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible payload (the CLI's ``--json`` output)."""
        return {
            "workload": self.workload,
            "refs_total": self.refs_total,
            "interval_refs": self.interval_refs,
            "num_cpus": self.num_cpus,
            "series": [
                {
                    "protocol": series.protocol,
                    "runtime_cycles": series.result.runtime_cycles,
                    "coherence_cycles": series.result.coherence_cycles,
                    "energy": series.result.energy_total,
                    "intervals": series.interval_rows(),
                }
                for series in self.series
            ],
        }


def run_timeline(
    workload: str = DEFAULT_TIMELINE_WORKLOAD,
    protocols: Sequence[str] = TIMELINE_PROTOCOLS,
    num_cpus: int = DEFAULT_TIMELINE_VCPUS,
    refs_total: Optional[int] = DEFAULT_TIMELINE_REFS,
    intervals: int = 16,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
    **config_overrides: Any,
) -> TimelineResult:
    """Run one workload under several protocols with interval telemetry.

    ``intervals`` picks the approximate number of samples per run; the
    concrete cadence (``interval_refs``) is derived from the post-warmup
    reference count.  Suite names, ``mixNN``, ``syn:`` scenarios,
    ``multi:`` consolidated shapes and ``prefix:`` capped workloads all
    work, because requests resolve through the ordinary workload
    registry.
    """
    if intervals <= 0:
        raise ValueError("intervals must be positive")
    # NOT ``session or default_session()``: an empty Session is falsy
    # (it has __len__), which would silently discard the caller's cache.
    session = session if session is not None else default_session()
    scale = scale or ExperimentScale()
    resolved = make_workload(workload)
    total = refs_total
    if total is None:
        total = scale.refs_for(resolved) or resolved.spec.refs_total
    elif scale.trace_scale != 1.0:
        total = max(1000, int(total * scale.trace_scale))
    main_refs = int(total * (1.0 - scale.warmup_fraction))
    interval_refs = max(256, main_refs // intervals)

    requests = [
        RunRequest(
            config=baseline_config(
                num_cpus=num_cpus, protocol=protocol, **config_overrides
            ),
            workload=workload,
            warmup_fraction=scale.warmup_fraction,
            refs_total=total,
            interval_refs=interval_refs,
        )
        for protocol in protocols
    ]
    results = session.run_batch(requests)
    return TimelineResult(
        workload=workload,
        refs_total=total,
        interval_refs=interval_refs,
        num_cpus=num_cpus,
        series=[
            TimelineSeries(protocol=protocol, result=result)
            for protocol, result in zip(protocols, results)
        ],
    )


def _bar(value: int, peak: int, width: int = 24) -> str:
    if peak <= 0:
        return ""
    filled = round(width * value / peak)
    if value > 0 and filled == 0:
        filled = 1
    return "#" * filled


def format_timeline(timeline: TimelineResult) -> str:
    """Render a timeline as per-interval tables plus coherence bars.

    One block per protocol: interval window, coherence cycles with a
    bar scaled to the *global* peak across protocols (so a software
    shootdown storm visibly dwarfs HATRIC's flat line), remap count and
    shootdown/invalidation message count.
    """
    lines = [
        f"timeline: {timeline.workload}",
        f"  refs={timeline.refs_total} interval={timeline.interval_refs} "
        f"cpus={timeline.num_cpus}",
    ]
    peak = max(
        (
            sample.coherence_cycles
            for series in timeline.series
            for sample in series.samples
        ),
        default=0,
    )
    for series in timeline.series:
        result = series.result
        lines.append("")
        lines.append(
            f"{series.protocol}: runtime={result.runtime_cycles} "
            f"coherence={result.coherence_cycles} "
            f"energy={result.energy_total:.0f}"
        )
        rows = [
            [
                f"{row['start_refs']}..{row['end_refs']}",
                row["coherence_cycles"],
                row["remaps"],
                row["shootdown_messages"],
                _bar(row["coherence_cycles"], peak),
            ]
            for row in series.interval_rows()
        ]
        table = render_table(
            ["window (refs)", "coh.cycles", "remaps", "msgs", "coherence"],
            rows,
            aligns=["right", "right", "right", "right", "left"],
        )
        lines.extend(f"  {line}".rstrip() for line in table.splitlines())
    return "\n".join(lines)


#: Series charted by ``timeline --chart``: (label, IntervalSample field
#: or event-counter name) pairs, one sparkline row each.
CHART_SERIES = (
    ("coherence", "coherence_cycles"),
    ("shootdowns", "coherence.ipis"),
    ("invalidations", "hatric.invalidation_messages"),
    ("remaps", _REMAP_EVENT),
)

#: Sparkline width for ``timeline --chart`` (interval series are
#: resampled by bucket-maximum when they are longer than this).
CHART_WIDTH = 64


def format_timeline_chart(timeline: TimelineResult) -> str:
    """Render a timeline as compact ASCII activity sparklines.

    One block per protocol, one fixed-width sparkline per charted
    series, each scaled to the *global* peak of that series across
    protocols -- a software shootdown storm fills the row while
    HATRIC's stays near-blank.  The ramp is ``' .:-=+*#%@'`` (low to
    high activity).
    """
    lines = [
        f"timeline: {timeline.workload}",
        f"  refs={timeline.refs_total} interval={timeline.interval_refs} "
        f"cpus={timeline.num_cpus}",
    ]
    width = min(
        CHART_WIDTH,
        max((len(series.samples) for series in timeline.series), default=1),
    )
    label_width = max(len(label) for label, _ in CHART_SERIES)
    peaks = {
        field_name: max(
            (
                value
                for series in timeline.series
                for value in interval_series(series.samples, field_name)
            ),
            default=0.0,
        )
        for _, field_name in CHART_SERIES
    }
    for series in timeline.series:
        result = series.result
        lines.append("")
        lines.append(
            f"{series.protocol}: runtime={result.runtime_cycles} "
            f"coherence={result.coherence_cycles} "
            f"energy={result.energy_total:.0f}"
        )
        for label, field_name in CHART_SERIES:
            values = interval_series(series.samples, field_name)
            row = sparkline(values, width, peak=peaks[field_name])
            total = int(sum(values))
            lines.append(
                f"  {label.rjust(label_width)} |{row}| total={total}"
            )
    lines.append("")
    lines.append(f"  ramp: '{sparkline([i for i in range(1, 11)], 10)}' (low..high)")
    return "\n".join(lines)


__all__ = [
    "CHART_SERIES",
    "DEFAULT_TIMELINE_REFS",
    "DEFAULT_TIMELINE_VCPUS",
    "DEFAULT_TIMELINE_WORKLOAD",
    "TIMELINE_PROTOCOLS",
    "TimelineResult",
    "TimelineSeries",
    "format_timeline",
    "format_timeline_chart",
    "run_timeline",
]
