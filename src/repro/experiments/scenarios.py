"""Scenario experiments: protocol x scenario sweeps, differential checks.

Two entry points on top of :mod:`repro.workloads.synthetic`:

* :func:`run_scenarios` sweeps {protocol} x {generated scenario} through
  the shared :class:`~repro.api.session.Session`, normalizing to the
  ideal protocol when it is part of the sweep;
* :func:`run_differential` runs the same grid and checks the
  cross-protocol invariants every translation coherence protocol must
  satisfy on *any* trace: ideal is never slower than a real protocol,
  HATRIC is never slower than the software shootdown, every counter is
  non-negative, and all protocols retire the identical reference count.

The invariants make randomized scenarios a strong test oracle: no
golden values are needed, so the differential suite is scale- and
platform-independent (the CI job runs it over a fixed seed matrix).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.api import ExperimentScale, Session, Sweep
from repro.experiments.runner import baseline_config
from repro.sim.config import SystemConfig
from repro.sim.simulator import SimulationResult
from repro.workloads.synthetic import (
    FAMILY_PRESETS,
    ScenarioSpec,
    parse_scenario_name,
    scenario_spec,
)

#: Every translation coherence protocol under differential comparison.
SCENARIO_PROTOCOLS = ("software", "unitd", "hatric", "ideal")

#: All scenario families, in preset declaration order.
SCENARIO_FAMILIES = tuple(FAMILY_PRESETS)

#: Paging knobs a family needs beyond its trace shape: compaction
#: scenarios also turn on the hypervisor's defragmentation remaps so
#: resident pages are moved in place, not just evicted and refaulted.
_FAMILY_PAGING: dict[str, dict[str, Any]] = {
    "compaction": {"defrag_interval": 2500},
}


def family_config(config: SystemConfig, family: str) -> SystemConfig:
    """Apply a scenario family's config knobs to a base system."""
    paging_overrides = _FAMILY_PAGING.get(family)
    if paging_overrides:
        config = config.replace(
            paging=dataclasses.replace(config.paging, **paging_overrides)
        )
    return config


def _configure(config: SystemConfig, coords: Mapping[str, Any]) -> SystemConfig:
    spec = parse_scenario_name(coords["workload"])
    if spec.num_vcpus is not None:
        config = config.replace(num_cpus=spec.num_vcpus)
    return family_config(config, spec.family)


def scenario_names(
    families: Sequence[str] = SCENARIO_FAMILIES,
    seed: int = 0,
    **overrides: Any,
) -> list[str]:
    """Canonical workload names of one preset scenario per family."""
    return [
        scenario_spec(family, seed=seed, **overrides).name
        for family in families
    ]


def sweep_scenarios(
    scenarios: Sequence[str],
    protocols: Sequence[str] = SCENARIO_PROTOCOLS,
    base: Optional[SystemConfig] = None,
) -> Sweep:
    """The declarative sweep: every scenario under every protocol."""
    sweep = Sweep(
        axes={
            "workload": tuple(scenarios),
            "protocol": tuple(protocols),
        },
        base=base if base is not None else baseline_config(),
        configure=_configure,
    )
    if "ideal" in protocols:
        sweep = sweep.normalize_to(protocol="ideal")
    return sweep


# ----------------------------------------------------------------------
# differential validation
# ----------------------------------------------------------------------
#: Invariant identifiers reported by :func:`check_invariants`.
INVARIANT_NON_NEGATIVE = "non-negative-counters"
INVARIANT_IDEAL_FLOOR = "ideal-is-floor"
INVARIANT_HATRIC_BOUND = "hatric-beats-software"
INVARIANT_RETIRED = "identical-retired-refs"

INVARIANT_NAMES = (
    INVARIANT_NON_NEGATIVE,
    INVARIANT_IDEAL_FLOOR,
    INVARIANT_HATRIC_BOUND,
    INVARIANT_RETIRED,
)


@dataclass(frozen=True)
class InvariantViolation:
    """One violated cross-protocol invariant, with its offenders named.

    Attributes:
        invariant: which invariant failed (one of :data:`INVARIANT_NAMES`).
        protocols: the offending protocol(s), e.g. ``("hatric",
            "software")`` for an ordering violation or a single protocol
            for a counter violation.
        detail: human-readable evidence (the offending numbers).
    """

    invariant: str
    protocols: tuple[str, ...]
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {'/'.join(self.protocols)}: {self.detail}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form (for reproducer payloads)."""
        return {
            "invariant": self.invariant,
            "protocols": list(self.protocols),
            "detail": self.detail,
        }


def check_invariants(
    results: Mapping[str, SimulationResult]
) -> list[InvariantViolation]:
    """Check one scenario's per-protocol results against the invariants.

    ``results`` maps protocol name to the :class:`SimulationResult` of
    the *same* scenario on the *same* machine shape.  Returns one
    :class:`InvariantViolation` per violated invariant, naming the
    invariant and the offending protocol(s) (empty = all hold).
    """
    violations: list[InvariantViolation] = []

    def negative(protocol: str, detail: str) -> None:
        violations.append(
            InvariantViolation(INVARIANT_NON_NEGATIVE, (protocol,), detail)
        )

    for protocol, result in results.items():
        stats = result.stats
        for event, count in stats.events.items():
            if count < 0:
                negative(protocol, f"negative event counter {event}={count}")
        for cpu, per_cpu in enumerate(stats.cpus):
            if (
                per_cpu.busy_cycles < 0
                or per_cpu.coherence_cycles < 0
                or per_cpu.instructions < 0
            ):
                negative(protocol, f"negative cpu{cpu} counters")
        if stats.background_cycles < 0:
            negative(protocol, "negative background cycles")
        if result.energy.dynamic < 0 or result.energy.static < 0:
            negative(protocol, "negative energy")

    retired = {p: r.stats.total_instructions for p, r in results.items()}
    if len(set(retired.values())) > 1:
        violations.append(
            InvariantViolation(
                INVARIANT_RETIRED,
                tuple(results),
                f"retired reference counts differ: {retired}",
            )
        )

    ideal = results.get("ideal")
    if ideal is not None:
        for protocol, result in results.items():
            if result.runtime_cycles < ideal.runtime_cycles:
                violations.append(
                    InvariantViolation(
                        INVARIANT_IDEAL_FLOOR,
                        ("ideal", protocol),
                        f"ideal slower than {protocol}: "
                        f"{ideal.runtime_cycles} > {result.runtime_cycles}",
                    )
                )
    hatric, software = results.get("hatric"), results.get("software")
    if hatric is not None and software is not None:
        if hatric.runtime_cycles > software.runtime_cycles:
            violations.append(
                InvariantViolation(
                    INVARIANT_HATRIC_BOUND,
                    ("hatric", "software"),
                    f"hatric slower than software: "
                    f"{hatric.runtime_cycles} > {software.runtime_cycles}",
                )
            )
    return violations


def differential_violations(
    results: Mapping[str, SimulationResult]
) -> list[str]:
    """Human-readable form of :func:`check_invariants` (empty = all OK)."""
    return [str(violation) for violation in check_invariants(results)]


@dataclass
class ScenarioCell:
    """One scenario under one protocol."""

    scenario: str
    family: str
    protocol: str
    runtime_cycles: int
    coherence_cycles: int
    normalized_runtime: Optional[float] = None


@dataclass
class ScenarioRunResult:
    """A full scenario sweep plus its differential validation verdict."""

    cells: list[ScenarioCell] = field(default_factory=list)
    #: scenario name -> invariant violations (empty list = scenario OK).
    violations: dict[str, list[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every scenario satisfied every invariant."""
        return not any(self.violations.values())

    def value(self, scenario: str, protocol: str) -> float:
        """Headline metric of one cell (normalized when available).

        Dict-indexed: the index is built once and refreshed if cells
        were appended since (lookups stay O(1), matching the grid
        accessors elsewhere in the experiments layer).
        """
        index = self.__dict__.get("_index")
        if index is None or len(index) != len(self.cells):
            index = {
                (cell.scenario, cell.protocol): cell for cell in self.cells
            }
            self.__dict__["_index"] = index
        cell = index.get((scenario, protocol))
        if cell is None:
            raise KeyError((scenario, protocol))
        if cell.normalized_runtime is not None:
            return cell.normalized_runtime
        return float(cell.runtime_cycles)


def run_scenarios(
    families: Sequence[str] = SCENARIO_FAMILIES,
    protocols: Sequence[str] = SCENARIO_PROTOCOLS,
    seed: int = 0,
    scenarios: Sequence[str] = (),
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
    base: Optional[SystemConfig] = None,
    **overrides: Any,
) -> ScenarioRunResult:
    """Run generated scenarios under every protocol and validate them.

    ``families`` select preset scenarios (seeded with ``seed``, tweaked
    by ``overrides`` such as ``num_vcpus=8``); ``scenarios`` adds
    explicit ``syn:`` names to the grid as-is.
    """
    names = scenario_names(families, seed=seed, **overrides) + list(scenarios)
    if not names:
        raise ValueError("no scenarios selected")
    grid = sweep_scenarios(names, protocols, base=base).run(
        session=session, scale=scale
    )
    result = ScenarioRunResult()
    per_scenario: dict[str, dict[str, SimulationResult]] = {}
    for cell in grid:
        scenario = cell.coords["workload"]
        protocol = cell.coords["protocol"]
        per_scenario.setdefault(scenario, {})[protocol] = cell.result
        result.cells.append(
            ScenarioCell(
                scenario=scenario,
                family=parse_scenario_name(scenario).family,
                protocol=protocol,
                runtime_cycles=cell.result.runtime_cycles,
                coherence_cycles=cell.result.coherence_cycles,
                normalized_runtime=(
                    cell.normalized_runtime if cell.baseline is not None else None
                ),
            )
        )
    for scenario, results in per_scenario.items():
        result.violations[scenario] = differential_violations(results)
    return result


def format_scenarios(result: ScenarioRunResult) -> str:
    """Render the sweep as a table: one row per scenario.

    Values are runtimes normalized to the ideal protocol when it was
    part of the sweep, raw runtime cycles otherwise; the footer reports
    the differential-invariant verdict.
    """
    protocols = list(dict.fromkeys(cell.protocol for cell in result.cells))
    scenarios = list(dict.fromkeys(cell.scenario for cell in result.cells))
    name_width = max([len("scenario")] + [len(s) for s in scenarios])
    header = f"{'scenario':<{name_width}}" + "".join(
        f"{p:>12}" for p in protocols
    )
    lines = [header, "-" * len(header)]
    for scenario in scenarios:
        values = ""
        for protocol in protocols:
            value = result.value(scenario, protocol)
            values += f"{value:>12.3f}" if value < 1e6 else f"{value:>12.3e}"
        lines.append(f"{scenario:<{name_width}}{values}")
    if result.ok:
        lines.append("differential invariants: OK")
    else:
        for scenario, violations in result.violations.items():
            for violation in violations:
                lines.append(f"VIOLATION {scenario}: {violation}")
    return "\n".join(lines)


@dataclass
class DifferentialReport:
    """Invariant verdicts for a matrix of scenarios."""

    protocols: tuple[str, ...]
    #: scenario name -> violations (empty list = scenario passed).
    violations: dict[str, list[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every scenario passed."""
        return not any(self.violations.values())

    @property
    def checked(self) -> int:
        """How many scenarios were validated."""
        return len(self.violations)


def run_differential(
    scenarios: Sequence[str | ScenarioSpec],
    protocols: Sequence[str] = SCENARIO_PROTOCOLS,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
    base: Optional[SystemConfig] = None,
) -> DifferentialReport:
    """Validate the cross-protocol invariants over arbitrary scenarios."""
    names = [
        s.name if isinstance(s, ScenarioSpec) else s for s in scenarios
    ]
    grid = sweep_scenarios(names, protocols, base=base).run(
        session=session, scale=scale
    )
    report = DifferentialReport(protocols=tuple(protocols))
    for name in names:
        results = {
            protocol: grid.result(workload=name, protocol=protocol)
            for protocol in protocols
        }
        report.violations[name] = differential_violations(results)
    return report


def format_differential(report: DifferentialReport) -> str:
    """Render a differential report as one PASS/FAIL line per scenario."""
    lines = []
    for scenario, violations in report.violations.items():
        verdict = "PASS" if not violations else "FAIL"
        lines.append(f"{verdict}  {scenario}")
        lines.extend(f"      {violation}" for violation in violations)
    lines.append(
        f"{report.checked} scenarios x {len(report.protocols)} protocols: "
        + ("all invariants hold" if report.ok else "INVARIANT VIOLATIONS")
    )
    return "\n".join(lines)
