"""Figure 8: runtime as a function of the KVM paging policy.

Three policies are swept at 16 vCPUs -- plain LRU, LRU plus the
migration daemon, and LRU plus daemon plus prefetching -- each under
software coherence, HATRIC and ideal coherence, normalized to the
no-die-stacked-DRAM baseline.  The paper's point: under software
coherence the policy barely matters (coherence dominates), while HATRIC
both improves every policy and lets the policy improvements show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.api import ExperimentScale, Session, Sweep
from repro.experiments._grid import indexed_lookup
from repro.experiments.runner import PAPER_WORKLOADS, baseline_config, paging_config
from repro.sim.config import PLACEMENT_PAGED, PLACEMENT_SLOW_ONLY, SystemConfig

#: Paging policies in figure order.
FIGURE8_POLICIES = ("lru", "mig-dmn", "pref")
FIGURE8_SERIES = ("sw", "hatric", "ideal")

_PROTOCOL_OF_SERIES = {"sw": "software", "hatric": "hatric", "ideal": "ideal"}


def _paging_for(policy: str):
    if policy == "lru":
        return paging_config(policy="lru", migration_daemon=False, prefetch_pages=0)
    if policy == "mig-dmn":
        return paging_config(policy="lru", migration_daemon=True, prefetch_pages=0)
    if policy == "pref":
        return paging_config(policy="lru", migration_daemon=True, prefetch_pages=2)
    raise ValueError(f"unknown figure-8 policy {policy!r}")


def _configure(config: SystemConfig, coords: Mapping[str, Any]) -> SystemConfig:
    series = coords["series"]
    if series == "no-hbm":
        protocol, placement = "ideal", PLACEMENT_SLOW_ONLY
    else:
        protocol, placement = _PROTOCOL_OF_SERIES[series], PLACEMENT_PAGED
    return config.replace(
        protocol=protocol,
        placement=placement,
        paging=_paging_for(coords["policy"]),
    )


@dataclass
class Figure8Cell:
    """One bar of the figure."""

    workload: str
    policy: str
    series: str
    normalized_runtime: float


@dataclass
class Figure8Result:
    """All bars of Figure 8."""

    cells: list[Figure8Cell] = field(default_factory=list)

    def value(self, workload: str, policy: str, series: str) -> float:
        """Normalized runtime of one bar (dict-indexed, O(1))."""
        cell = indexed_lookup(
            self,
            self.cells,
            lambda c: (c.workload, c.policy, c.series),
            (workload, policy, series),
        )
        return cell.normalized_runtime


def sweep_figure8(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    policies: Sequence[str] = FIGURE8_POLICIES,
    num_cpus: int = 16,
) -> Sweep:
    """The declarative sweep behind Figure 8.

    The baseline pins ``policy="pref"`` (the default paging
    configuration) as well as the series, so every policy column
    shares one baseline run per workload.
    """
    return Sweep(
        axes={
            "workload": tuple(workloads),
            "policy": tuple(policies),
            "series": FIGURE8_SERIES,
        },
        base=baseline_config(num_cpus),
        configure=_configure,
    ).normalize_to(series="no-hbm", policy="pref")


def run_figure8(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    policies: Sequence[str] = FIGURE8_POLICIES,
    num_cpus: int = 16,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
) -> Figure8Result:
    """Regenerate Figure 8."""
    grid = sweep_figure8(workloads, policies, num_cpus).run(
        session=session, scale=scale
    )
    result = Figure8Result()
    for cell in grid:
        result.cells.append(
            Figure8Cell(
                workload=cell.coords["workload"],
                policy=cell.coords["policy"],
                series=cell.coords["series"],
                normalized_runtime=cell.normalized_runtime,
            )
        )
    return result


def format_figure8(result: Figure8Result) -> str:
    """Render the figure as a table: one row per workload x policy."""
    header = f"{'workload':<14}{'policy':>9}" + "".join(
        f"{s:>10}" for s in FIGURE8_SERIES
    )
    lines = [header, "-" * len(header)]
    seen = []
    for cell in result.cells:
        key = (cell.workload, cell.policy)
        if key in seen:
            continue
        seen.append(key)
        values = "".join(
            f"{result.value(cell.workload, cell.policy, s):>10.2f}"
            for s in FIGURE8_SERIES
        )
        lines.append(f"{cell.workload:<14}{cell.policy:>9}{values}")
    return "\n".join(lines)
