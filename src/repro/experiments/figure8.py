"""Figure 8: runtime as a function of the KVM paging policy.

Three policies are swept at 16 vCPUs -- plain LRU, LRU plus the
migration daemon, and LRU plus daemon plus prefetching -- each under
software coherence, HATRIC and ideal coherence, normalized to the
no-die-stacked-DRAM baseline.  The paper's point: under software
coherence the policy barely matters (coherence dominates), while HATRIC
both improves every policy and lets the policy improvements show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.runner import (
    PAPER_WORKLOADS,
    ExperimentScale,
    baseline_config,
    no_hbm_config,
    paging_config,
    run_configuration,
)

#: Paging policies in figure order.
FIGURE8_POLICIES = ("lru", "mig-dmn", "pref")
FIGURE8_SERIES = ("sw", "hatric", "ideal")

_PROTOCOL_OF_SERIES = {"sw": "software", "hatric": "hatric", "ideal": "ideal"}


def _paging_for(policy: str):
    if policy == "lru":
        return paging_config(policy="lru", migration_daemon=False, prefetch_pages=0)
    if policy == "mig-dmn":
        return paging_config(policy="lru", migration_daemon=True, prefetch_pages=0)
    if policy == "pref":
        return paging_config(policy="lru", migration_daemon=True, prefetch_pages=2)
    raise ValueError(f"unknown figure-8 policy {policy!r}")


@dataclass
class Figure8Cell:
    """One bar of the figure."""

    workload: str
    policy: str
    series: str
    normalized_runtime: float


@dataclass
class Figure8Result:
    """All bars of Figure 8."""

    cells: list[Figure8Cell] = field(default_factory=list)

    def value(self, workload: str, policy: str, series: str) -> float:
        """Normalized runtime of one bar."""
        for cell in self.cells:
            if (
                cell.workload == workload
                and cell.policy == policy
                and cell.series == series
            ):
                return cell.normalized_runtime
        raise KeyError((workload, policy, series))


def run_figure8(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    policies: Sequence[str] = FIGURE8_POLICIES,
    num_cpus: int = 16,
    scale: Optional[ExperimentScale] = None,
) -> Figure8Result:
    """Regenerate Figure 8."""
    scale = scale or ExperimentScale.from_environment()
    result = Figure8Result()
    for name in workloads:
        baseline = run_configuration(no_hbm_config(num_cpus), name, scale)
        for policy in policies:
            for series in FIGURE8_SERIES:
                config = baseline_config(
                    num_cpus,
                    protocol=_PROTOCOL_OF_SERIES[series],
                    paging=_paging_for(policy),
                )
                run = run_configuration(config, name, scale)
                result.cells.append(
                    Figure8Cell(
                        workload=name,
                        policy=policy,
                        series=series,
                        normalized_runtime=run.normalized_runtime(baseline),
                    )
                )
    return result


def format_figure8(result: Figure8Result) -> str:
    """Render the figure as a table: one row per workload x policy."""
    header = f"{'workload':<14}{'policy':>9}" + "".join(
        f"{s:>10}" for s in FIGURE8_SERIES
    )
    lines = [header, "-" * len(header)]
    seen = []
    for cell in result.cells:
        key = (cell.workload, cell.policy)
        if key in seen:
            continue
        seen.append(key)
        values = "".join(
            f"{result.value(cell.workload, cell.policy, s):>10.2f}"
            for s in FIGURE8_SERIES
        )
        lines.append(f"{cell.workload:<14}{cell.policy:>9}{values}")
    return "\n".join(lines)
