"""Simulation driver: configuration, cost model, statistics and the main loop."""

from repro.sim.config import (
    CacheConfig,
    CoherenceDirectoryConfig,
    MemoryConfig,
    PagingConfig,
    SystemConfig,
    TranslationConfig,
)
from repro.sim.costs import CostModel
from repro.sim.engine import (
    ENGINE_DEFAULT,
    ENGINE_ENV_VAR,
    ENGINE_FAST,
    ENGINE_REFERENCE,
    ENGINES,
    FastPathMismatchError,
    resolve_engine,
)
from repro.sim.stats import EventCounter, MachineStats
from repro.sim.simulator import SimulationResult, Simulator

__all__ = [
    "CacheConfig",
    "CoherenceDirectoryConfig",
    "CostModel",
    "ENGINE_DEFAULT",
    "ENGINE_ENV_VAR",
    "ENGINE_FAST",
    "ENGINE_REFERENCE",
    "ENGINES",
    "EventCounter",
    "FastPathMismatchError",
    "MachineStats",
    "MemoryConfig",
    "PagingConfig",
    "SimulationResult",
    "Simulator",
    "SystemConfig",
    "TranslationConfig",
    "resolve_engine",
]
