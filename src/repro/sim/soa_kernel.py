"""Steady-prefix scan kernels for the struct-of-arrays (SoA) engine.

The SoA executor (:class:`repro.sim.engine.SoAExecutor`) spends almost
all of its time answering one question per stream: *how many upcoming
references are fully steady-state* (L1 TLB hit and L1 data hit) against
direct-mapped mirror tables rebuilt from the authoritative structures.
That scan is a tight integer loop over flat int64 arrays, so it is the
one place a compiled kernel pays off.  This module provides three
interchangeable backends computing bit-identical integers:

``numba``
    An ``@njit``-compiled version of the scan loop, used when numba is
    importable.  numba is an *optional* dependency: nothing in this
    repository requires it, and CI runs one leg with it and one without.

``c``
    A tiny C translation of the same loop, compiled on first use with
    whatever ``cc``/``gcc``/``clang`` the host provides into a private
    temporary directory and loaded through :mod:`ctypes`.  No build
    system, no install step, no artifacts inside the repository.

``python``
    A block-vectorized numpy implementation.  Always available; the
    fallback when neither compiler route works.

Backend selection is ``REPRO_SOA_KERNEL``: ``auto`` (default) tries
``numba``, then ``c``, then ``python``; naming a backend explicitly
makes its absence a hard error instead of a silent fallback.  A typo'd
value fails loudly with the list of valid names.  Because every backend
computes the same integers from the same inputs, kernel choice can never
affect simulation results -- only how fast the scan runs; the digest
matrix in ``tests/test_fastpath.py`` pins that by re-running the matrix
under each available backend.

The scan contract (shared verbatim by all three backends)::

    scan(tlb_tag, tlb_spp, l1_tag, tag, tidx, loff, lmask,
         spp_out, line_out) -> p

    for each i < n (= len(tag)):
        j = tidx[i]
        steady  = tlb_tag[j] == tag[i]
        spp     = tlb_spp[j]
        line    = (spp << PAGE_SHIFT) | loff[i]
        steady &= l1_tag[(line >> LINE_SHIFT) & lmask] == line
        if not steady: return i          # first slow reference
        spp_out[i] = spp; line_out[i] = line
    return n

All arrays are contiguous int64; ``loff`` is the page offset already
aligned down to a cache-line boundary, so ``line`` is the referenced
line address.  Entries of ``spp_out``/``line_out`` at or beyond the
returned prefix length are unspecified.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
from typing import Callable, Optional

import numpy as np

from repro.obs.log import get_logger
from repro.translation.address import CACHE_LINE_SIZE, PAGE_SHIFT

logger = get_logger(__name__)

#: log2 of the cache line size, the shift from line address to mirror slot.
LINE_SHIFT = CACHE_LINE_SIZE.bit_length() - 1

#: Environment variable selecting the scan backend.
KERNEL_ENV_VAR = "REPRO_SOA_KERNEL"

KERNEL_AUTO = "auto"
KERNEL_NUMBA = "numba"
KERNEL_C = "c"
KERNEL_PYTHON = "python"
KERNELS = (KERNEL_AUTO, KERNEL_NUMBA, KERNEL_C, KERNEL_PYTHON)

#: Block size for the numpy backend: big enough to amortize dispatch,
#: small enough that a scan aborted by an early slow reference does not
#: compute far past it.
_NUMPY_BLOCK = 4096

ScanFn = Callable[..., int]

#: resolved (name, fn) per requested backend, so compiler probes and JIT
#: warmup run once per process.
_RESOLVED: dict[str, tuple[str, ScanFn]] = {}


def resolve_kernel_request(name: Optional[str] = None) -> str:
    """Validate a backend request (argument, else environment, else auto).

    Unknown names fail loudly with the list of valid values -- a typo'd
    ``REPRO_SOA_KERNEL`` must never silently mean ``auto``.
    """
    if name is None:
        name = os.environ.get(KERNEL_ENV_VAR) or KERNEL_AUTO
    if name not in KERNELS:
        known = ", ".join(KERNELS)
        raise ValueError(
            f"unknown SoA kernel {name!r} (from {KERNEL_ENV_VAR}); "
            f"valid values: {known}"
        )
    return name


# ----------------------------------------------------------------------
# python (numpy) backend
# ----------------------------------------------------------------------
def _scan_numpy(tlb_tag, tlb_spp, l1_tag, tag, tidx, loff, lmask,
                spp_out, line_out) -> int:
    n = tag.shape[0]
    for start in range(0, n, _NUMPY_BLOCK):
        stop = min(start + _NUMPY_BLOCK, n)
        block = slice(start, stop)
        j = tidx[block]
        spp = tlb_spp[j]
        line = (spp << PAGE_SHIFT) | loff[block]
        steady = (tlb_tag[j] == tag[block]) & (
            l1_tag[(line >> LINE_SHIFT) & lmask] == line
        )
        spp_out[block] = spp
        line_out[block] = line
        if not steady.all():
            return start + int(np.argmin(steady))
    return n


# ----------------------------------------------------------------------
# numba backend (optional dependency)
# ----------------------------------------------------------------------
def _build_numba() -> ScanFn:
    import numba  # noqa: F401 - raises ImportError when absent

    @numba.njit(cache=False, nogil=True)
    def _scan_jit(tlb_tag, tlb_spp, l1_tag, tag, tidx, loff, lmask,
                  spp_out, line_out):
        n = tag.shape[0]
        for i in range(n):
            j = tidx[i]
            if tlb_tag[j] != tag[i]:
                return i
            spp = tlb_spp[j]
            line = (spp << PAGE_SHIFT) | loff[i]
            if l1_tag[(line >> LINE_SHIFT) & lmask] != line:
                return i
            spp_out[i] = spp
            line_out[i] = line
        return n

    # Force compilation now so a broken numba install fails at selection
    # time (where auto can still fall back), not mid-simulation.
    one = np.zeros(1, dtype=np.int64)
    _scan_jit(one, one, one, one[:0], one[:0], one[:0], 0, one[:0], one[:0])

    def scan(tlb_tag, tlb_spp, l1_tag, tag, tidx, loff, lmask,
             spp_out, line_out) -> int:
        return int(
            _scan_jit(tlb_tag, tlb_spp, l1_tag, tag, tidx, loff, lmask,
                      spp_out, line_out)
        )

    return scan


# ----------------------------------------------------------------------
# C backend (ctypes, compiled on first use)
# ----------------------------------------------------------------------
_C_SOURCE = f"""
#include <stdint.h>

int64_t repro_soa_scan(const int64_t *tlb_tag, const int64_t *tlb_spp,
                       const int64_t *l1_tag, const int64_t *tag,
                       const int64_t *tidx, const int64_t *loff,
                       int64_t n, int64_t lmask,
                       int64_t *spp_out, int64_t *line_out)
{{
    for (int64_t i = 0; i < n; i++) {{
        int64_t j = tidx[i];
        if (tlb_tag[j] != tag[i])
            return i;
        int64_t spp = tlb_spp[j];
        int64_t line = (spp << {PAGE_SHIFT}) | loff[i];
        if (l1_tag[(line >> {LINE_SHIFT}) & lmask] != line)
            return i;
        spp_out[i] = spp;
        line_out[i] = line;
    }}
    return n;
}}
"""


def _build_c() -> ScanFn:
    compiler = next(
        (cc for cc in ("cc", "gcc", "clang") if shutil.which(cc)), None
    )
    if compiler is None:
        raise RuntimeError(
            "no C compiler found (tried cc, gcc, clang); "
            "use REPRO_SOA_KERNEL=python or install one"
        )
    # Build outside the repository: the shared object is a per-process
    # throwaway, never a committed artifact.
    build_dir = tempfile.mkdtemp(prefix="repro-soa-kernel-")
    src = os.path.join(build_dir, "scan.c")
    lib_path = os.path.join(build_dir, "scan.so")
    with open(src, "w", encoding="utf-8") as handle:
        handle.write(_C_SOURCE)
    proc = subprocess.run(
        [compiler, "-O2", "-shared", "-fPIC", "-o", lib_path, src],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"SoA scan kernel compilation failed with {compiler}: "
            f"{proc.stderr.strip()}"
        )
    lib = ctypes.CDLL(lib_path)
    fn = lib.repro_soa_scan
    ptr = ctypes.POINTER(ctypes.c_int64)
    fn.restype = ctypes.c_int64
    fn.argtypes = [ptr, ptr, ptr, ptr, ptr, ptr,
                   ctypes.c_int64, ctypes.c_int64, ptr, ptr]

    def scan(tlb_tag, tlb_spp, l1_tag, tag, tidx, loff, lmask,
             spp_out, line_out) -> int:
        view = ctypes.cast
        return int(fn(
            view(tlb_tag.ctypes.data, ptr),
            view(tlb_spp.ctypes.data, ptr),
            view(l1_tag.ctypes.data, ptr),
            view(tag.ctypes.data, ptr),
            view(tidx.ctypes.data, ptr),
            view(loff.ctypes.data, ptr),
            tag.shape[0],
            lmask,
            view(spp_out.ctypes.data, ptr),
            view(line_out.ctypes.data, ptr),
        ))

    return scan


_BUILDERS: dict[str, Callable[[], ScanFn]] = {
    KERNEL_NUMBA: _build_numba,
    KERNEL_C: _build_c,
    KERNEL_PYTHON: lambda: _scan_numpy,
}


def get_kernel(name: Optional[str] = None) -> tuple[str, ScanFn]:
    """Resolve and build the scan backend; returns ``(name, scan_fn)``.

    ``auto`` degrades gracefully (numba -> c -> python); an explicitly
    requested backend that cannot be built raises, because a user who
    pinned a kernel wants to know it is not the one running.
    """
    requested = resolve_kernel_request(name)
    cached = _RESOLVED.get(requested)
    if cached is not None:
        return cached
    if requested == KERNEL_AUTO:
        last_error: Optional[Exception] = None
        for candidate in (KERNEL_NUMBA, KERNEL_C, KERNEL_PYTHON):
            try:
                resolved = (candidate, _BUILDERS[candidate]())
                break
            except Exception as error:  # ImportError / RuntimeError
                logger.debug(
                    "SoA scan backend %s unavailable: %s", candidate, error
                )
                last_error = error
        else:  # pragma: no cover - the numpy backend cannot fail to build
            raise RuntimeError(
                f"no SoA scan backend could be built: {last_error}"
            )
    else:
        resolved = (requested, _BUILDERS[requested]())
    logger.info(
        "SoA scan kernel: %s (requested %s)", resolved[0], requested
    )
    _RESOLVED[requested] = resolved
    return resolved
