"""System configuration dataclasses.

A :class:`SystemConfig` fully describes one simulated machine: CPU
count, cache and translation structure geometry, the two-tier memory,
the hypervisor paging policy, the coherence directory organisation and
the translation coherence protocol under test.

The default sizes are the paper's (Section 5.1) scaled down by a
constant factor so that synthetic workloads with megabyte-range
footprints exercise the same capacity ratios the paper exercised with
gigabyte-range footprints; see DESIGN.md for the substitution note.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional

from repro.sim.costs import CostModel


#: Data placement modes (Figure 2): everything in slow DRAM, everything
#: in die-stacked DRAM, or hypervisor-paged between the two.
PLACEMENT_SLOW_ONLY = "slow-only"
PLACEMENT_FAST_ONLY = "fast-only"
PLACEMENT_PAGED = "paged"
PLACEMENTS = (PLACEMENT_SLOW_ONLY, PLACEMENT_FAST_ONLY, PLACEMENT_PAGED)

#: vCPU-to-pCPU placement models for consolidated guests.
VM_SHARING_PINNED = "pinned"
VM_SHARING_SHARED = "shared"
VM_SHARING_MODELS = (VM_SHARING_PINNED, VM_SHARING_SHARED)


@dataclass(frozen=True)
class GuestConfig:
    """One guest VM of a consolidated (multi-tenant) machine.

    Attributes:
        workload: per-guest workload name, resolvable by
            :func:`repro.workloads.make_workload` (suite names, ``mixNN``
            and ``syn:`` scenarios all work).
        vcpus: virtual CPUs the guest runs.
        mem_share: optional fraction of die-stacked DRAM the hypervisor
            lets this guest keep resident.  ``None`` (the default) means
            the guest competes in the shared global pool; a positive
            fraction caps its resident data pages at ``mem_share *
            fast_frames`` (static partitioning, enforced by evicting the
            guest's own oldest resident page first).
    """

    workload: str
    vcpus: int = 1
    mem_share: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.workload:
            raise ValueError("a guest needs a workload name")
        if "+" in self.workload or "@" in self.workload:
            raise ValueError(
                f"guest workload name {self.workload!r} may not contain "
                f"'+' or '@' (reserved by the multi: name grammar)"
            )
        if self.vcpus <= 0:
            raise ValueError("vcpus must be positive")
        if self.mem_share is not None and not 0.0 < self.mem_share <= 1.0:
            raise ValueError("mem_share must be in (0, 1] when given")


@dataclass(frozen=True)
class VmTopology:
    """Multi-tenant machine shape: N guests and how they map onto pCPUs.

    Attributes:
        guests: the consolidated guests, in vCPU-assignment order.
        sharing: vCPU-to-pCPU placement model.  ``"pinned"`` gives each
            guest a dedicated, consecutive block of physical CPUs (the
            total vCPU count must fit the machine); ``"shared"`` maps
            guest ``i``'s vCPU ``j`` onto pCPU ``j % num_cpus``, so
            guests time-share (oversubscribe) the same physical CPUs and
            a software shootdown aimed at one guest lands on CPUs whose
            translation structures also serve the others.

    The canonical :attr:`name` (``multi:wl[@vcpus[:share]]+...`` with a
    trailing ``+share=shared`` segment when not pinned) round-trips via
    :func:`repro.workloads.multi.parse_topology_name` and is what flows
    through :class:`~repro.api.request.RunRequest` for stable cache keys.
    """

    guests: tuple[GuestConfig, ...]
    sharing: str = VM_SHARING_PINNED

    def __post_init__(self) -> None:
        if not self.guests:
            raise ValueError("a topology needs at least one guest")
        if self.sharing not in VM_SHARING_MODELS:
            raise ValueError(
                f"unknown sharing model {self.sharing!r}; known: "
                f"{', '.join(VM_SHARING_MODELS)}"
            )
        shares = [g.mem_share for g in self.guests if g.mem_share is not None]
        if shares and sum(shares) > 1.0 + 1e-9:
            raise ValueError("guest mem_shares sum to more than 1.0")

    @property
    def num_guests(self) -> int:
        """Number of consolidated guests."""
        return len(self.guests)

    @property
    def total_vcpus(self) -> int:
        """Total virtual CPUs across all guests."""
        return sum(guest.vcpus for guest in self.guests)

    @property
    def name(self) -> str:
        """Canonical ``multi:`` workload name of this topology.

        Default fields are omitted, so equal topologies always produce
        equal names (and hence equal request cache keys).
        """
        segments = []
        for guest in self.guests:
            segment = guest.workload
            if guest.mem_share is not None:
                segment += f"@{guest.vcpus}:{guest.mem_share!r}"
            elif guest.vcpus != 1:
                segment += f"@{guest.vcpus}"
            segments.append(segment)
        if self.sharing != VM_SHARING_PINNED:
            segments.append(f"share={self.sharing}")
        return "multi:" + "+".join(segments)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of the data cache hierarchy."""

    l1_size: int = 32 * 1024
    l1_associativity: int = 8
    l1_latency: int = 4
    l2_size: int = 256 * 1024
    l2_associativity: int = 8
    l2_latency: int = 12
    llc_size: int = 2 * 1024 * 1024
    llc_associativity: int = 16
    llc_latency: int = 38


@dataclass(frozen=True)
class TranslationConfig:
    """Sizes of the per-CPU translation structures.

    ``size_scale`` multiplies every structure, reproducing the paper's
    Figure 9 sweep (1x / 2x / 4x).
    """

    l1_tlb_entries: int = 64
    l2_tlb_entries: int = 512
    ntlb_entries: int = 32
    mmu_cache_entries: int = 48
    size_scale: int = 1
    cotag_bytes: int = 2

    def scaled(self, factor: int) -> "TranslationConfig":
        """Return a copy with ``size_scale`` replaced by ``factor``."""
        return replace(self, size_scale=factor)

    @property
    def effective_l1_tlb(self) -> int:
        """L1 TLB entries after applying the scale factor."""
        return self.l1_tlb_entries * self.size_scale

    @property
    def effective_l2_tlb(self) -> int:
        """L2 TLB entries after applying the scale factor."""
        return self.l2_tlb_entries * self.size_scale

    @property
    def effective_ntlb(self) -> int:
        """nTLB entries after applying the scale factor."""
        return self.ntlb_entries * self.size_scale

    @property
    def effective_mmu_cache(self) -> int:
        """MMU cache entries after applying the scale factor."""
        return self.mmu_cache_entries * self.size_scale


@dataclass(frozen=True)
class MemoryConfig:
    """Two-tier physical memory geometry.

    The paper models 2 GB of die-stacked DRAM and 8 GB of off-chip DRAM
    (a 1:4 capacity ratio) with a 4x bandwidth advantage for the stack.
    The defaults keep the 1:4 ratio at a scaled-down absolute size.
    """

    fast_frames: int = 2048
    slow_frames: int = 8192
    fast_latency: int = 110
    slow_latency: int = 220

    @property
    def total_frames(self) -> int:
        """Total addressable frames across both tiers."""
        return self.fast_frames + self.slow_frames


@dataclass(frozen=True)
class PagingConfig:
    """Hypervisor paging policy between the memory tiers.

    Mirrors Section 5.2: an LRU (CLOCK) or FIFO eviction policy,
    optionally augmented with a migration daemon that keeps a pool of
    free die-stacked frames, and optional prefetching of adjacent pages
    on a demand migration.
    """

    policy: str = "lru"
    migration_daemon: bool = True
    daemon_free_target: int = 64
    prefetch_pages: int = 2
    #: Fraction of die-stacked frames reserved for the hypervisor /
    #: page tables rather than guest data.
    reserved_fast_fraction: float = 0.05
    #: When positive, one resident page is remapped within die-stacked
    #: DRAM every ``defrag_interval`` data accesses, modelling memory
    #: compaction / superpage defragmentation activity (Figure 11 shows
    #: such workloads still benefit from HATRIC).  0 disables it.
    defrag_interval: int = 0

    def __post_init__(self) -> None:
        if self.policy not in ("lru", "fifo"):
            raise ValueError(f"unknown paging policy {self.policy!r}")
        if self.prefetch_pages < 0:
            raise ValueError("prefetch_pages must be >= 0")


@dataclass(frozen=True)
class CoherenceDirectoryConfig:
    """Coherence directory organisation (Section 4.2 and Figure 12)."""

    capacity: Optional[int] = 65536
    lazy_pt_sharer_updates: bool = True
    fine_grained: bool = False


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one simulated system."""

    num_cpus: int = 8
    protocol: str = "hatric"
    placement: str = PLACEMENT_PAGED
    hypervisor: str = "kvm"
    cache: CacheConfig = field(default_factory=CacheConfig)
    translation: TranslationConfig = field(default_factory=TranslationConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    paging: PagingConfig = field(default_factory=PagingConfig)
    directory: CoherenceDirectoryConfig = field(
        default_factory=CoherenceDirectoryConfig
    )
    costs: CostModel = field(default_factory=CostModel)
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_cpus <= 0:
            raise ValueError("num_cpus must be positive")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {self.placement!r}"
            )
        if self.hypervisor not in ("kvm", "xen"):
            raise ValueError(f"unknown hypervisor {self.hypervisor!r}")

    def with_protocol(self, protocol: str) -> "SystemConfig":
        """Return a copy running a different translation coherence protocol."""
        return replace(self, protocol=protocol)

    def with_placement(self, placement: str) -> "SystemConfig":
        """Return a copy with a different data placement mode."""
        return replace(self, placement=placement)

    def replace(self, **changes) -> "SystemConfig":
        """Return a copy with arbitrary fields replaced."""
        return replace(self, **changes)


#: Section classes rebuilt by :func:`config_from_dict`, keyed by field.
_CONFIG_SECTIONS = {
    "cache": CacheConfig,
    "translation": TranslationConfig,
    "memory": MemoryConfig,
    "paging": PagingConfig,
    "directory": CoherenceDirectoryConfig,
    "costs": CostModel,
}


def config_to_dict(config: SystemConfig) -> dict[str, Any]:
    """Serialize a :class:`SystemConfig` to plain JSON-compatible data.

    Lives here (not in ``repro.api``) so the snapshot serializer in
    :mod:`repro.sim.snapshot` can use it without inverting the layering;
    :mod:`repro.api.request` re-exports it.
    """
    return dataclasses.asdict(config)


def config_from_dict(data: Mapping[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from :func:`config_to_dict` output."""
    kwargs: dict[str, Any] = dict(data)
    for name, section_cls in _CONFIG_SECTIONS.items():
        if name in kwargs and isinstance(kwargs[name], Mapping):
            kwargs[name] = section_cls(**kwargs[name])
    return SystemConfig(**kwargs)
