"""Deterministic machine snapshots: serialize, restore, continue.

A snapshot is a complete, versioned, JSON-compatible description of a
mid-run simulated machine: every cache line and translation entry (in
LRU order), the coherence directory, both radix page table dimensions,
the hypervisor's paging state, the memory allocators, the statistics
accumulated since the warmup reset, and the telemetry anchors of the
interval collector.  The defining property, enforced by
``tests/test_snapshot.py`` across a fuzz matrix of shapes, protocols
and engines, is:

    *restore-then-continue is bit-identical to a straight-through run*
    -- same result fingerprint, same post-run machine digest -- on both
    the reference, fast and SoA engines (and across them, since the
    engines are themselves bit-identical).

Snapshots are captured only at **round-aligned** executor positions
(every stream at ``warmup_start + k * chunk``), because those are
exactly the states that a longer run over the same trace prefix also
passes through; that is what lets :class:`repro.api.session.Session`
answer a ``refs_total`` sweep by restoring the longest cached
checkpoint and simulating only the tail.

Reuse is guarded twice: the snapshot carries its own schema version
(:data:`SNAPSHOT_SCHEMA_VERSION`), and it records a digest of the exact
trace prefix it executed, which :meth:`RestoredRun.resume` re-verifies
against the new trace.  A checkpoint can therefore never resurrect onto
a machine, a schema, or a reference stream it was not captured from --
in particular, raw workload generators are *not* prefix-stable in
``refs_total`` (see ``src/repro/workloads/README.md``), and the digest
guard is what turns that from a correctness hazard into a cache miss.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.coherence.directory import DirectoryEntry, DirectoryStats, SharerKind
from repro.mem.cache import Cache, CacheLine, CacheStats
from repro.sim.config import config_from_dict, config_to_dict
from repro.sim.simulator import Simulator, SimulationResult
from repro.sim.stats import CpuStats, EventCounter, IntervalSample, VmStats
from repro.translation.page_table import (
    PAGE_TABLE_LEVELS,
    PageTableEntry,
    RadixPageTable,
    _Node,
)
from repro.translation.structures import (
    TranslationEntry,
    TranslationStructureStats,
)
from repro.translation.walker import WalkStats
from repro.virt.paging import ClockPolicy, FifoPolicy
from repro.workloads.base import WorkloadTrace

#: Version of the snapshot payload layout.  Bumped whenever the
#: serialized machine state changes shape *or* whenever simulator
#: behaviour changes in a way that makes old mid-run state unreusable.
#: Stamped into every snapshot; :func:`validate_snapshot` refuses any
#: other value, so stale on-disk checkpoints can never resurrect.
SNAPSHOT_SCHEMA_VERSION = 1


class SnapshotError(ValueError):
    """A snapshot payload is unusable for the attempted restore."""


class SnapshotSchemaError(SnapshotError):
    """A snapshot was produced by an incompatible schema version."""


# ----------------------------------------------------------------------
# trace prefix identity
# ----------------------------------------------------------------------
def trace_prefix_digest(trace: WorkloadTrace, positions: list[int]) -> str:
    """Content hash of the exact per-stream prefixes at ``positions``.

    Two traces agree on this digest iff they would feed the executor the
    same references (addresses *and* write flags) up to the checkpoint,
    which is the precondition for restore-then-continue to reproduce a
    straight-through run.
    """
    if len(positions) != trace.num_vcpus:
        raise SnapshotError(
            f"positions name {len(positions)} streams, trace has "
            f"{trace.num_vcpus}"
        )
    digest = hashlib.sha256()
    for stream, writes, position in zip(trace.streams, trace.writes, positions):
        if not 0 <= position <= len(stream):
            raise SnapshotError(
                f"position {position} outside stream of {len(stream)} refs"
            )
        digest.update(b"s%d:" % position)
        digest.update(
            np.ascontiguousarray(stream[:position], dtype=np.int64).tobytes()
        )
        digest.update(
            np.ascontiguousarray(writes[:position], dtype=np.bool_).tobytes()
        )
    return digest.hexdigest()


# ----------------------------------------------------------------------
# low-level encoders / decoders
# ----------------------------------------------------------------------
def _encode_key(key: Any) -> Any:
    return list(key) if isinstance(key, tuple) else key


def _decode_key(key: Any) -> Any:
    return tuple(key) if isinstance(key, list) else key


def _encode_structure(structure) -> dict[str, Any]:
    return {
        "name": structure.name,
        "stats": vars(structure.stats).copy(),
        "entries": [
            [_encode_key(entry.key), entry.value, entry.cotag, entry.pt_line]
            for entry in structure._entries.values()
        ],
    }


def _load_structure(structure, data: dict[str, Any]) -> None:
    entries = structure._entries
    entries.clear()
    for key, value, cotag, pt_line in data["entries"]:
        decoded = _decode_key(key)
        entries[decoded] = TranslationEntry(
            key=decoded, value=value, cotag=cotag, pt_line=pt_line
        )
    structure.stats = TranslationStructureStats(**data["stats"])
    if hasattr(structure, "_fast_init_index"):
        # fast-engine structure: rebuild the co-tag / pt-line indexes
        structure._fast_init_index()


def _encode_cache(cache: Cache) -> dict[str, Any]:
    return {
        "stats": vars(cache.stats).copy(),
        "sets": [
            [
                [line.address, line.dirty, line.is_page_table]
                for line in cache_set.values()
            ]
            for cache_set in cache._sets
        ],
    }


def _load_cache(cache: Cache, data: dict[str, Any]) -> None:
    if len(data["sets"]) != cache.num_sets:
        raise SnapshotError(
            f"cache {cache.name} has {cache.num_sets} sets, snapshot has "
            f"{len(data['sets'])}"
        )
    for cache_set, lines in zip(cache._sets, data["sets"]):
        cache_set.clear()
        for address, dirty, is_page_table in lines:
            cache_set[address] = CacheLine(
                address=address, dirty=dirty, is_page_table=is_page_table
            )
    cache.stats = CacheStats(**data["stats"])


def _encode_directory(directory) -> dict[str, Any]:
    return {
        "stats": vars(directory.stats).copy(),
        "entries": [
            [
                entry.line,
                sorted(entry.sharers),
                entry.owner,
                entry.is_nested_pt,
                entry.is_guest_pt,
                [
                    [kind.value, sorted(cpus)]
                    for kind, cpus in entry.fine_sharers.items()
                ],
            ]
            for entry in directory._entries.values()
        ],
    }


def _load_directory(directory, data: dict[str, Any]) -> None:
    entries = directory._entries
    entries.clear()
    for line, sharers, owner, is_nested, is_guest, fine in data["entries"]:
        entry = DirectoryEntry(
            line=line,
            sharers=set(sharers),
            owner=owner,
            is_nested_pt=is_nested,
            is_guest_pt=is_guest,
        )
        entry.fine_sharers = {
            SharerKind(kind): set(cpus) for kind, cpus in fine
        }
        entries[line] = entry
    directory.stats = DirectoryStats(**data["stats"])


def _encode_node(node: _Node) -> dict[str, Any]:
    return {
        "page": node.page_number,
        "entries": [
            [index, entry.vpn, entry.pfn, entry.accessed, entry.dirty]
            for index, entry in node.entries.items()
        ],
        "children": [
            [index, _encode_node(child)]
            for index, child in node.children.items()
        ],
    }


def _decode_node(data: dict[str, Any], level: int, counts: dict[str, int]) -> _Node:
    counts["nodes"] += 1
    node = _Node(level=level, page_number=data["page"])
    for index, vpn, pfn, accessed, dirty in data["entries"]:
        node.entries[index] = PageTableEntry(
            vpn=vpn,
            pfn=pfn,
            address=node.entry_address(index),
            level=level,
            accessed=accessed,
            dirty=dirty,
        )
        if level == 1:
            counts["leaves"] += 1
    for index, child in data["children"]:
        node.children[index] = _decode_node(child, level - 1, counts)
    return node


def _load_table(table: RadixPageTable, data: dict[str, Any]) -> None:
    counts = {"nodes": 0, "leaves": 0}
    table.root = _decode_node(data, PAGE_TABLE_LEVELS, counts)
    table.table_pages = counts["nodes"]
    table._mapped_pages = counts["leaves"]


def _encode_machine_stats(stats) -> dict[str, Any]:
    return {
        "num_cpus": stats.num_cpus,
        "cpus": [vars(cpu).copy() for cpu in stats.cpus],
        "events": dict(stats.events),
        "background_cycles": stats.background_cycles,
        "vms": [vm.to_dict() for vm in stats.vms],
        "vm_of_cpu": list(stats.vm_of_cpu),
    }


def _load_machine_stats(stats, data: dict[str, Any]) -> None:
    if data["num_cpus"] != stats.num_cpus:
        raise SnapshotError(
            f"snapshot has {data['num_cpus']} CPUs, machine has "
            f"{stats.num_cpus}"
        )
    stats.cpus = [CpuStats(**cpu) for cpu in data["cpus"]]
    stats.events = EventCounter(data["events"])
    stats.background_cycles = data["background_cycles"]
    stats.vms = [VmStats.from_dict(vm) for vm in data["vms"]]
    stats.vm_of_cpu = list(data["vm_of_cpu"])


def _encode_policy(policy) -> dict[str, Any]:
    if isinstance(policy, FifoPolicy):
        return {"kind": "fifo", "queue": [list(key) for key in policy._queue]}
    if isinstance(policy, ClockPolicy):
        return {
            "kind": "lru",
            "pages": [
                [list(key), referenced]
                for key, referenced in policy._pages.items()
            ],
        }
    raise SnapshotError(  # pragma: no cover - no third policy exists today
        f"cannot snapshot paging policy {type(policy).__name__}"
    )


def _load_policy(policy, data: dict[str, Any]) -> None:
    if isinstance(policy, FifoPolicy):
        if data["kind"] != "fifo":
            raise SnapshotError("paging policy kind mismatch")
        policy._queue.clear()
        for key in data["queue"]:
            policy._queue[tuple(key)] = None
        return
    if isinstance(policy, ClockPolicy):
        if data["kind"] != "lru":
            raise SnapshotError("paging policy kind mismatch")
        policy._pages.clear()
        for key, referenced in data["pages"]:
            policy._pages[tuple(key)] = referenced
        return
    raise SnapshotError(  # pragma: no cover - no third policy exists today
        f"cannot restore paging policy {type(policy).__name__}"
    )


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------
def _global_processes(simulator: Simulator, trace: WorkloadTrace) -> list:
    """The run's guest processes in global creation order.

    Process indices in ``trace.process_of_vcpu`` refer to this order;
    within each VM, ``vm.processes`` preserves it, and across VMs the
    per-process owning VM is recoverable from the trace.
    """
    hypervisor = simulator.hypervisor
    vms = list(hypervisor._vms.values())
    if trace.vm_of_vcpu is None:
        return list(vms[0].processes)
    vm_of_process: dict[int, int] = {}
    for stream, process in enumerate(trace.process_of_vcpu):
        vm_of_process.setdefault(process, trace.vm_of_vcpu[stream])
    cursors = [0] * len(vms)
    processes = []
    for process in range(trace.num_processes):
        vm_index = vm_of_process[process]
        processes.append(vms[vm_index].processes[cursors[vm_index]])
        cursors[vm_index] += 1
    return processes


def capture_snapshot(
    simulator: Simulator,
    trace: WorkloadTrace,
    *,
    positions: list[int],
    warmup_starts: list[int],
    warmup_executed: int,
    executed_refs: int,
    intervals: list[IntervalSample],
    interval_refs: Optional[int] = None,
    anchor: Optional[dict] = None,
    anchor_refs: int = 0,
) -> dict[str, Any]:
    """Serialize the complete mid-run machine state to a plain dict.

    The payload is JSON-compatible (``json.dumps`` round-trips it) and
    carries everything :func:`restore_run` needs to rebuild a simulator
    whose continuation is bit-identical to this run's remainder.
    """
    chip = simulator.chip
    hypervisor = simulator.hypervisor
    memory = chip.memory

    cores = []
    for core in chip.cores:
        cores.append(
            {
                "structures": [
                    _encode_structure(structure)
                    for structure in core.translation_structures()
                ],
                "l1": _encode_cache(core.l1),
                "l2": _encode_cache(core.l2),
                "walker_stats": vars(core.walker.stats).copy(),
            }
        )

    vms = []
    processes = []
    for vm in hypervisor._vms.values():
        vms.append(
            {
                "vm_id": vm.vm_id,
                "pcpus": [vcpu.pcpu for vcpu in vm.vcpus],
                "stats_index": vm.stats_index,
                "next_gpp": vm._next_gpp,
                "next_asid": vm._next_asid,
                "nested": _encode_node(vm.nested_page_table.root),
            }
        )
    for process in _global_processes(simulator, trace):
        processes.append(
            {
                "vm_id": process.vm.vm_id,
                "asid": process.asid,
                "guest": _encode_node(process.guest_page_table.root),
            }
        )

    return {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "engine": simulator.engine,
        "config": config_to_dict(simulator.requested_config),
        "workload": trace.name,
        "trace": {
            "num_vcpus": trace.num_vcpus,
            "lengths": [len(stream) for stream in trace.streams],
            "process_of_vcpu": list(trace.process_of_vcpu),
            "num_processes": trace.num_processes,
            "positions": list(positions),
            "prefix_digest": trace_prefix_digest(trace, positions),
        },
        "warmup": {
            "starts": list(warmup_starts),
            "executed": warmup_executed,
        },
        "executed_refs": executed_refs,
        "telemetry": {
            "interval_refs": interval_refs,
            "anchor_refs": anchor_refs,
            "anchor": anchor,
        },
        "intervals": [sample.to_dict() for sample in intervals],
        "stats": _encode_machine_stats(simulator.stats),
        "chip": {
            "cores": cores,
            "llc": _encode_cache(chip.llc),
            "directory": _encode_directory(chip.directory),
        },
        "memory": {
            "fast": {
                "next": memory.fast.allocator._next,
                "free": list(memory.fast.allocator._free),
                "accesses": memory.fast.accesses,
            },
            "slow": {
                "next": memory.slow.allocator._next,
                "free": list(memory.slow.allocator._free),
                "accesses": memory.slow.accesses,
            },
        },
        "hypervisor": {
            "resident": [
                [vm_id, gpp, spp]
                for (vm_id, gpp), spp in hypervisor.resident.items()
            ],
            "backing": [
                [vm_id, gpp, spp]
                for (vm_id, gpp), spp in hypervisor.backing.items()
            ],
            "vm_pages": [
                [vm_id, [list(key) for key in pages]]
                for vm_id, pages in hypervisor._vm_pages.items()
            ],
            "vm_fast_caps": [
                [vm_id, cap]
                for vm_id, cap in hypervisor._vm_fast_caps.items()
            ],
            "accesses_since_defrag": hypervisor._accesses_since_defrag,
            "policy": _encode_policy(hypervisor.policy),
        },
        "vms": vms,
        "processes": processes,
    }


# ----------------------------------------------------------------------
# restore
# ----------------------------------------------------------------------
def validate_snapshot(data: dict[str, Any]) -> None:
    """Reject payloads this code cannot restore (wrong/missing schema)."""
    schema = data.get("schema") if isinstance(data, dict) else None
    if schema != SNAPSHOT_SCHEMA_VERSION:
        raise SnapshotSchemaError(
            f"snapshot has schema {schema!r}, current code expects "
            f"{SNAPSHOT_SCHEMA_VERSION}"
        )


@dataclass
class RestoredRun:
    """A simulator rebuilt from a snapshot, ready to continue.

    Produced by :func:`restore_run`; :meth:`resume` re-verifies the
    trace prefix digest and then drives the remaining references
    through :meth:`repro.sim.simulator.Simulator.resume`.
    """

    simulator: Simulator
    contexts: list
    positions: list[int]
    warmup_starts: list[int]
    warmup_executed: int
    executed_refs: int
    intervals: list[IntervalSample]
    interval_refs: Optional[int]
    anchor: Optional[dict]
    anchor_refs: int
    workload: str
    prefix_digest: str = ""

    def resume(
        self,
        trace: WorkloadTrace,
        *,
        checkpoint_refs: Optional[int] = None,
        on_checkpoint=None,
        verify_prefix: bool = True,
    ) -> SimulationResult:
        """Continue on ``trace``; bit-identical to the original run.

        Raises :class:`SnapshotError` unless ``trace`` agrees with the
        snapshot's executed prefix (same per-stream references and write
        flags up to the restored positions).  ``verify_prefix=False``
        skips re-hashing the prefix -- only for callers that just
        digested the *same* trace at the *same* positions themselves
        (the session's candidate scan).
        """
        for position, stream in zip(self.positions, trace.streams):
            if position > len(stream):
                raise SnapshotError(
                    f"trace stream of {len(stream)} refs is shorter than "
                    f"the restored position {position}"
                )
        if verify_prefix:
            digest = trace_prefix_digest(trace, self.positions)
            if digest != self.prefix_digest:
                raise SnapshotError(
                    "trace prefix does not match the snapshot's executed "
                    "prefix; the checkpoint belongs to a different "
                    "reference stream"
                )
        # Partial intervals resume from the snapshot's own anchor; the
        # driver would otherwise re-anchor at the restore point and
        # split an interval where the straight-through run would not.
        anchor = self.anchor
        if self.interval_refs is not None and anchor is None:
            anchor = self.simulator.telemetry_aggregate()
        return self.simulator.resume(
            trace,
            self.contexts,
            list(self.positions),
            warmup_starts=list(self.warmup_starts),
            warmup_executed=self.warmup_executed,
            executed_refs=self.executed_refs,
            intervals=list(self.intervals),
            anchor=anchor,
            anchor_refs=self.anchor_refs,
            interval_refs=self.interval_refs,
            checkpoint_refs=checkpoint_refs,
            on_checkpoint=on_checkpoint,
        )


def restore_run(data: dict[str, Any], engine: Optional[str] = None) -> RestoredRun:
    """Rebuild a simulator (and its guests) from a snapshot payload.

    ``engine`` selects the execution engine of the restored simulator
    exactly like the :class:`~repro.sim.simulator.Simulator`
    constructor; snapshots are engine-agnostic, so a fast-engine
    snapshot restores onto the reference engine (and vice versa) with
    bit-identical continuations.
    """
    validate_snapshot(data)
    config = config_from_dict(data["config"])
    simulator = Simulator(config, engine=engine)
    hypervisor = simulator.hypervisor
    memory = simulator.chip.memory

    # 1. Recreate VMs and guest processes through the normal lifecycle
    #    (their transient frame/page-table allocations are overwritten
    #    wholesale below, so only object wiring matters here).
    vms = []
    for vm_data in data["vms"]:
        vm = hypervisor.create_vm(vcpu_pcpus=list(vm_data["pcpus"]))
        if vm.vm_id != vm_data["vm_id"]:
            raise SnapshotError(
                f"restored VM id {vm.vm_id} != snapshot id "
                f"{vm_data['vm_id']}"
            )
        vm.stats_index = vm_data["stats_index"]
        vms.append(vm)
    by_id = {vm.vm_id: vm for vm in vms}
    processes = []
    for process_data in data["processes"]:
        vm = by_id.get(process_data["vm_id"])
        if vm is None:
            raise SnapshotError(
                f"process references unknown VM {process_data['vm_id']}"
            )
        processes.append(vm.create_process())

    # 2. Load page tables and allocation cursors.
    for vm, vm_data in zip(vms, data["vms"]):
        _load_table(vm.nested_page_table, vm_data["nested"])
        vm._next_gpp = vm_data["next_gpp"]
        vm._next_asid = vm_data["next_asid"]
    for process, process_data in zip(processes, data["processes"]):
        process.asid = process_data["asid"]
        _load_table(process.guest_page_table, process_data["guest"])
        process.guest_root_gpp = process.guest_page_table.root.page_number

    # 3. Physical memory allocators (after every transient allocation).
    for tier, tier_data in (
        (memory.fast, data["memory"]["fast"]),
        (memory.slow, data["memory"]["slow"]),
    ):
        tier.allocator._next = tier_data["next"]
        tier.allocator._free = list(tier_data["free"])
        tier.accesses = tier_data["accesses"]

    # 4. Hypervisor paging state.
    hyp_data = data["hypervisor"]
    hypervisor.resident.clear()
    hypervisor._resident_by_spp.clear()
    for vm_id, gpp, spp in hyp_data["resident"]:
        hypervisor.resident[(vm_id, gpp)] = spp
        hypervisor._resident_by_spp[spp] = (vm_id, gpp)
    hypervisor.backing.clear()
    for vm_id, gpp, spp in hyp_data["backing"]:
        hypervisor.backing[(vm_id, gpp)] = spp
    hypervisor._vm_pages.clear()
    for vm_id, pages in hyp_data["vm_pages"]:
        hypervisor._vm_pages[vm_id] = {
            tuple(key): None for key in pages
        }
    hypervisor._vm_fast_caps = {
        vm_id: cap for vm_id, cap in hyp_data["vm_fast_caps"]
    }
    hypervisor._accesses_since_defrag = hyp_data["accesses_since_defrag"]
    _load_policy(hypervisor.policy, hyp_data["policy"])

    # 5. Statistics (in place: chip, hypervisor and protocol share the
    #    object).
    _load_machine_stats(simulator.stats, data["stats"])

    # 6. Chip state: translation structures, caches, directory.  The
    #    fast engine's closures hoist the set *containers*, so contents
    #    are reloaded in place.
    chip_data = data["chip"]
    if len(chip_data["cores"]) != len(simulator.chip.cores):
        raise SnapshotError(
            f"snapshot has {len(chip_data['cores'])} cores, machine has "
            f"{len(simulator.chip.cores)}"
        )
    for core, core_data in zip(simulator.chip.cores, chip_data["cores"]):
        structures = core.translation_structures()
        if len(core_data["structures"]) != len(structures):
            raise SnapshotError("translation structure count mismatch")
        for structure, structure_data in zip(structures, core_data["structures"]):
            if structure.name != structure_data["name"]:
                raise SnapshotError(
                    f"structure order mismatch: {structure.name} vs "
                    f"{structure_data['name']}"
                )
            _load_structure(structure, structure_data)
        _load_cache(core.l1, core_data["l1"])
        _load_cache(core.l2, core_data["l2"])
        core.walker.stats = WalkStats(**core_data["walker_stats"])
    _load_cache(simulator.chip.llc, chip_data["llc"])
    _load_directory(simulator.chip.directory, chip_data["directory"])

    trace_data = data["trace"]
    contexts = [
        processes[p] for p in trace_data["process_of_vcpu"]
    ]
    telemetry = data["telemetry"]
    return RestoredRun(
        simulator=simulator,
        contexts=contexts,
        positions=list(trace_data["positions"]),
        warmup_starts=list(data["warmup"]["starts"]),
        warmup_executed=data["warmup"]["executed"],
        executed_refs=data["executed_refs"],
        intervals=[
            IntervalSample.from_dict(sample) for sample in data["intervals"]
        ],
        interval_refs=telemetry["interval_refs"],
        anchor=telemetry["anchor"],
        anchor_refs=telemetry["anchor_refs"],
        workload=data["workload"],
        prefix_digest=trace_data["prefix_digest"],
    )


__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "RestoredRun",
    "SnapshotError",
    "SnapshotSchemaError",
    "capture_snapshot",
    "restore_run",
    "trace_prefix_digest",
    "validate_snapshot",
]
