"""Trace-driven simulator: ties the chip, hypervisor and protocol together.

The simulator executes per-vCPU reference streams in round-robin chunks
(approximating concurrent execution), charging cycles per CPU.  Each
reference is translated through the TLBs / MMU cache / nTLB / page
walker, triggers guest and nested page faults on first touch, flows
through the hypervisor's paging machinery (which is what generates
nested page table remaps and hence translation coherence), and finally
accesses the data through the cache hierarchy.

Runs report a :class:`SimulationResult` carrying cycle counts, event
counters and the energy breakdown; the experiment modules combine
results from multiple runs into the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.cotag import CoTagScheme
from repro.core.protocol import TranslationCoherenceProtocol, make_protocol
from repro.cpu.chip import Chip
from repro.energy.model import EnergyBreakdown, EnergyModel, EnergyParameters
from repro.sim.engine import (
    ENGINE_FAST,
    ENGINE_REFERENCE,
    ENGINE_SOA,
    install_fast_paths,
    make_executor,
    resolve_engine,
)
from repro.obs.log import get_logger
from repro.obs.trace import active_tracer
from repro.sim.config import SystemConfig
from repro.sim.stats import IntervalSample, MachineStats
from repro.translation.address import PAGE_SHIFT, PAGE_SIZE
from repro.virt.kvm import KvmHypervisor
from repro.virt.vm import GuestProcess
from repro.virt.xen import XenHypervisor
from repro.workloads.base import (
    MultiprogrammedWorkload,
    Workload,
    WorkloadTrace,
)

logger = get_logger(__name__)

#: references processed per vCPU before moving to the next one.
_INTERLEAVE_CHUNK = 32
#: maximum fault-retry attempts for one reference.
_MAX_FAULT_RETRIES = 4

WorkloadLike = Union[Workload, MultiprogrammedWorkload, WorkloadTrace]


class TranslationCorrectnessError(AssertionError):
    """Raised in validation mode when a stale translation is observed."""


def resolve_trace(
    workload: WorkloadLike,
    num_cpus: int,
    seed: int,
    refs_total: Optional[int] = None,
) -> WorkloadTrace:
    """Materialize a workload into per-vCPU streams for a machine shape.

    Already-generated traces pass through unchanged; multiprogrammed
    workloads get one vCPU per application (capped at ``num_cpus``),
    multithreaded workloads one stream per CPU.  Fully deterministic
    given the arguments.
    """
    if isinstance(workload, WorkloadTrace):
        return workload
    if isinstance(workload, MultiprogrammedWorkload):
        return workload.generate(
            num_vcpus=min(num_cpus, len(workload.specs)),
            seed=seed,
            refs_total=refs_total,
        )
    return workload.generate(
        num_vcpus=num_cpus, seed=seed, refs_total=refs_total
    )


def warmup_starts(
    trace: WorkloadTrace,
    warmup_fraction: float,
    warmup_refs: Optional[int] = None,
) -> list[int]:
    """Per-stream main-phase start positions a run's warmup implies.

    The single source of truth shared by :meth:`Simulator.run` and the
    checkpoint layer: snapshot reuse compares this vector bit-for-bit,
    so the two sides must never compute it independently.
    """
    if warmup_refs is not None:
        if warmup_refs < 0:
            raise ValueError("warmup_refs must be >= 0 when given")
        return [min(warmup_refs, len(s)) for s in trace.streams]
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    return [int(len(s) * warmup_fraction) for s in trace.streams]


@dataclass
class SimulationResult:
    """Everything measured during one simulation run."""

    config: SystemConfig
    workload: str
    stats: MachineStats
    energy: EnergyBreakdown
    warmup_references: int = 0
    per_app_cycles: dict[str, int] = field(default_factory=dict)
    #: per-VM display names for consolidated runs (aligned with
    #: ``stats.vms``); empty for legacy single-VM runs.
    vm_names: list[str] = field(default_factory=list)
    #: time-resolved telemetry: per-interval statistics deltas, emitted
    #: only when the run asked for them (``interval_refs``); empty
    #: otherwise, keeping legacy results byte-identical.
    intervals: list[IntervalSample] = field(default_factory=list)

    @property
    def runtime_cycles(self) -> int:
        """Wall-clock runtime in cycles (busiest CPU)."""
        return self.stats.runtime_cycles

    @property
    def total_cycles(self) -> int:
        """Sum of cycles across CPUs."""
        return self.stats.total_cycles

    @property
    def coherence_cycles(self) -> int:
        """Cycles attributed to translation coherence."""
        return self.stats.coherence_cycles

    @property
    def energy_total(self) -> float:
        """Total energy in model units."""
        return self.energy.total

    @property
    def events(self) -> dict[str, int]:
        """Event counters as a plain dictionary."""
        return dict(self.stats.events)

    def normalized_runtime(self, baseline: "SimulationResult") -> float:
        """Runtime normalized to another run (the paper's main metric)."""
        if baseline.runtime_cycles == 0:
            raise ValueError("baseline runtime is zero")
        return self.runtime_cycles / baseline.runtime_cycles

    def normalized_energy(self, baseline: "SimulationResult") -> float:
        """Energy normalized to another run."""
        if baseline.energy_total == 0:
            raise ValueError("baseline energy is zero")
        return self.energy_total / baseline.energy_total

    def per_vm_energy(self) -> list[float]:
        """Total energy attributed to each VM by its busy-cycle share.

        The energy model has no per-VM instrumentation, so the split is
        proportional; the shares sum to :attr:`energy_total` (modulo
        floating point) by construction.
        """
        vms = self.stats.vms
        if not vms:
            return []
        total_busy = sum(vm.busy_cycles for vm in vms)
        if total_busy == 0:
            return [self.energy_total / len(vms)] * len(vms)
        return [
            self.energy_total * vm.busy_cycles / total_busy for vm in vms
        ]

    def per_vm_summary(self) -> list[dict]:
        """JSON-friendly per-VM breakdown of a consolidated run."""
        energies = self.per_vm_energy()
        summaries = []
        for index, vm in enumerate(self.stats.vms):
            name = (
                self.vm_names[index]
                if index < len(self.vm_names)
                else f"vm{index}"
            )
            summaries.append(
                {
                    "vm": name,
                    "instructions": vm.instructions,
                    "busy_cycles": vm.busy_cycles,
                    "coherence_cycles": vm.coherence_cycles,
                    "energy": energies[index],
                    "events": dict(vm.events),
                }
            )
        return summaries


class Simulator:
    """Builds one simulated machine and runs workloads on it.

    Args:
        config: the machine to simulate.
        validate: cross-check every translation against the page tables
            (always runs on the reference engine).
        energy_parameters: overrides for the energy model.
        engine: execution engine, ``"reference"``, ``"fast"`` or
            ``"soa"`` (see :mod:`repro.sim.engine`).  ``None`` consults
            the ``REPRO_SIM_ENGINE`` environment variable and defaults
            to the fast engine; every engine produces bit-identical
            results.
    """

    def __init__(
        self,
        config: SystemConfig,
        validate: bool = False,
        energy_parameters: Optional[EnergyParameters] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.protocol: TranslationCoherenceProtocol = make_protocol(config.protocol)
        hypervisor_cls = XenHypervisor if config.hypervisor == "xen" else KvmHypervisor
        #: the configuration as requested, *before* the hypervisor's cost
        #: adjustment.  Snapshots store this one: re-adjusting already
        #: adjusted costs (Xen's scaling is not idempotent) would change
        #: the machine on restore.
        self.requested_config = config
        config = config.replace(costs=hypervisor_cls.adjust_costs(config.costs))
        self.config = config
        self.validate = validate

        cotag_scheme = (
            CoTagScheme(config.translation.cotag_bytes)
            if self.protocol.uses_cotags
            else None
        )
        self.stats = MachineStats(config.num_cpus)
        self.chip = Chip(
            config,
            self.stats,
            cotag_scheme=cotag_scheme,
            track_translation_sharers=self.protocol.tracks_translation_sharers,
        )
        self.protocol.bind(self.chip, self.stats, config.costs)
        self.hypervisor = hypervisor_cls(
            self.chip, config, self.protocol, self.stats
        )
        self.energy_model = EnergyModel(
            params=energy_parameters,
            cotag_bytes=(
                config.translation.cotag_bytes if self.protocol.uses_cotags else 0
            ),
            fine_grained_directory=config.directory.fine_grained,
        )
        self.engine = resolve_engine(engine, validate=validate)
        if self.engine in (ENGINE_FAST, ENGINE_SOA) and not install_fast_paths(
            self.chip
        ):  # pragma: no cover - exotic geometry
            logger.warning(
                "engine %s unavailable for this geometry; falling back to %s",
                self.engine,
                ENGINE_REFERENCE,
            )
            self.engine = ENGINE_REFERENCE

    # ------------------------------------------------------------------
    # running workloads
    # ------------------------------------------------------------------
    def run(
        self,
        workload: WorkloadLike,
        warmup_fraction: float = 0.2,
        refs_total: Optional[int] = None,
        *,
        warmup_refs: Optional[int] = None,
        interval_refs: Optional[int] = None,
        on_interval=None,
        checkpoint_refs: Optional[int] = None,
        on_checkpoint=None,
    ) -> SimulationResult:
        """Run a workload to completion and return its measurements.

        The first ``warmup_fraction`` of each stream is executed with
        statistics discarded afterwards, so cold-start effects (initial
        population of die-stacked DRAM) do not dominate the short
        synthetic traces the way they never would in the paper's
        50-billion-reference traces.

        Keyword-only extensions (all default-off, leaving legacy runs
        bit-identical):

        * ``warmup_refs`` -- absolute per-stream warmup length
          overriding ``warmup_fraction``.  Checkpoint reuse across
          ``refs_total`` sweeps needs the warmup boundary to be
          independent of the trace length, which a fraction is not.
        * ``interval_refs`` -- emit an :class:`~repro.sim.stats.
          IntervalSample` roughly every that many retired references
          (at executor round boundaries), collected on
          :attr:`SimulationResult.intervals`.
        * ``on_interval`` -- callback invoked with each freshly-emitted
          :class:`~repro.sim.stats.IntervalSample` the moment it is
          appended (including the final partial interval), for live
          progress streaming.  Observation only: the collected
          ``intervals`` list is identical with or without it.
        * ``checkpoint_refs`` / ``on_checkpoint`` -- capture
          :mod:`repro.sim.snapshot` machine snapshots at round-aligned
          positions (periodically every ``checkpoint_refs`` references
          when given, and always at the last reusable round) and hand
          each snapshot dict to ``on_checkpoint``.
        """
        tracer = active_tracer()
        run_start = tracer.now() if tracer else 0.0
        trace = self._resolve_trace(workload, refs_total)
        self._validate_trace_shape(trace)
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")

        contexts = self._create_guests(trace)
        executor = make_executor(self, trace, contexts)

        starts = warmup_starts(trace, warmup_fraction, warmup_refs)
        warmup_requested = (
            warmup_refs > 0 if warmup_refs is not None else warmup_fraction > 0.0
        )
        warmup_executed = 0
        if warmup_requested:
            warmup_start = tracer.now() if tracer else 0.0
            warmup_executed = executor.execute_span(
                [0] * trace.num_vcpus, list(starts)
            )
            self._reset_statistics()
            if tracer:
                tracer.complete(
                    "sim.warmup", "sim", warmup_start,
                    refs=warmup_executed, engine=self.engine,
                )

        if tracer:
            try:
                return self._run_main(
                    trace,
                    contexts,
                    executor,
                    warmup_starts=starts,
                    positions=list(starts),
                    warmup_executed=warmup_executed,
                    prior_executed=0,
                    prior_intervals=[],
                    interval_refs=interval_refs,
                    on_interval=on_interval,
                    anchor=None,
                    anchor_refs=0,
                    checkpoint_refs=checkpoint_refs,
                    on_checkpoint=on_checkpoint,
                )
            finally:
                tracer.complete(
                    "sim.run", "sim", run_start,
                    engine=self.engine, vcpus=trace.num_vcpus,
                )
        return self._run_main(
            trace,
            contexts,
            executor,
            warmup_starts=starts,
            positions=list(starts),
            warmup_executed=warmup_executed,
            prior_executed=0,
            prior_intervals=[],
            interval_refs=interval_refs,
            on_interval=on_interval,
            anchor=None,
            anchor_refs=0,
            checkpoint_refs=checkpoint_refs,
            on_checkpoint=on_checkpoint,
        )

    def resume(
        self,
        trace: WorkloadTrace,
        contexts: list[GuestProcess],
        positions: list[int],
        *,
        warmup_starts: list[int],
        warmup_executed: int = 0,
        executed_refs: int = 0,
        intervals: Optional[list[IntervalSample]] = None,
        anchor: Optional[dict] = None,
        anchor_refs: Optional[int] = None,
        interval_refs: Optional[int] = None,
        on_interval=None,
        checkpoint_refs: Optional[int] = None,
        on_checkpoint=None,
    ) -> SimulationResult:
        """Continue a restored run from ``positions`` to stream ends.

        The simulator must already hold the restored machine state (see
        :func:`repro.sim.snapshot.restore_run`, which builds it); this
        method only drives the remaining references.  With matching
        arguments the continuation is bit-identical to the straight-
        through run the snapshot was captured from.
        """
        self._validate_trace_shape(trace)
        if len(positions) != trace.num_vcpus:
            raise ValueError("positions must name one offset per stream")
        for position, start, stream in zip(positions, warmup_starts, trace.streams):
            if not start <= position <= len(stream):
                raise ValueError(
                    f"resume position {position} outside [{start}, "
                    f"{len(stream)}]"
                )
        executor = make_executor(self, trace, contexts)
        return self._run_main(
            trace,
            contexts,
            executor,
            warmup_starts=list(warmup_starts),
            positions=list(positions),
            warmup_executed=warmup_executed,
            prior_executed=executed_refs,
            prior_intervals=list(intervals or []),
            interval_refs=interval_refs,
            on_interval=on_interval,
            anchor=anchor,
            anchor_refs=executed_refs if anchor_refs is None else anchor_refs,
            checkpoint_refs=checkpoint_refs,
            on_checkpoint=on_checkpoint,
        )

    # ------------------------------------------------------------------
    # the main-phase driver (telemetry + checkpoints)
    # ------------------------------------------------------------------
    def telemetry_aggregate(self) -> dict:
        """Cumulative post-warmup aggregates used as interval anchors.

        Exact integers plus the energy total, so interval deltas are
        reproducible bit-for-bit across checkpoint/restore (the anchor
        is stored in snapshots rather than re-derived, avoiding float
        re-association).
        """
        stats = self.stats
        return {
            "busy": sum(c.busy_cycles for c in stats.cpus),
            "coherence": sum(c.coherence_cycles for c in stats.cpus),
            "background": stats.background_cycles,
            "instructions": sum(c.instructions for c in stats.cpus),
            "events": dict(stats.events),
            "vms": [vm.to_dict() for vm in stats.vms],
            "energy": self.energy_model.compute(self.chip, self.stats).total,
        }

    @staticmethod
    def _interval_delta(
        start_refs: int, end_refs: int, anchor: dict, current: dict
    ) -> IntervalSample:
        events = {
            key: value - anchor["events"].get(key, 0)
            for key, value in current["events"].items()
            if value - anchor["events"].get(key, 0)
        }
        vms = []
        for index, vm in enumerate(current["vms"]):
            base = (
                anchor["vms"][index]
                if index < len(anchor["vms"])
                else {"busy_cycles": 0, "coherence_cycles": 0,
                      "instructions": 0, "events": {}}
            )
            vms.append(
                {
                    "busy_cycles": vm["busy_cycles"] - base["busy_cycles"],
                    "coherence_cycles": (
                        vm["coherence_cycles"] - base["coherence_cycles"]
                    ),
                    "instructions": vm["instructions"] - base["instructions"],
                    "events": {
                        key: value - base["events"].get(key, 0)
                        for key, value in vm["events"].items()
                        if value - base["events"].get(key, 0)
                    },
                }
            )
        return IntervalSample(
            start_refs=start_refs,
            end_refs=end_refs,
            busy_cycles=current["busy"] - anchor["busy"],
            coherence_cycles=current["coherence"] - anchor["coherence"],
            background_cycles=current["background"] - anchor["background"],
            instructions=current["instructions"] - anchor["instructions"],
            energy=current["energy"] - anchor["energy"],
            events=events,
            vms=vms,
        )

    def _run_main(
        self,
        trace: WorkloadTrace,
        contexts: list[GuestProcess],
        executor,
        *,
        warmup_starts: list[int],
        positions: list[int],
        warmup_executed: int,
        prior_executed: int,
        prior_intervals: list[IntervalSample],
        interval_refs: Optional[int],
        on_interval=None,
        anchor: Optional[dict],
        anchor_refs: int,
        checkpoint_refs: Optional[int],
        on_checkpoint,
    ) -> SimulationResult:
        """Execute the (remaining) main phase and assemble the result.

        Telemetry and checkpoints hook the executor's round boundaries:
        after every full round-robin round all streams sit at positions
        ``min(start + CHUNK * round, end)``, a state both engines reach
        identically, which is what makes interval samples engine-
        independent and snapshots reusable by longer runs.
        """
        ends = [len(s) for s in trace.streams]
        intervals = prior_intervals
        chunk = _INTERLEAVE_CHUNK
        tracer = active_tracer()

        def emit_interval(sample: IntervalSample) -> None:
            intervals.append(sample)
            if tracer:
                tracer.instant(
                    "sim.interval", "sim",
                    start_refs=sample.start_refs,
                    end_refs=sample.end_refs,
                    busy_cycles=sample.busy_cycles,
                    coherence_cycles=sample.coherence_cycles,
                )
            if on_interval is not None:
                on_interval(sample)

        on_round = None
        if interval_refs is not None or on_checkpoint is not None:
            if interval_refs is not None and interval_refs <= 0:
                raise ValueError("interval_refs must be positive when given")
            if checkpoint_refs is not None and checkpoint_refs <= 0:
                raise ValueError("checkpoint_refs must be positive when given")
            offsets = [p - s for p, s in zip(positions, warmup_starts)]
            # Checkpoints are only meaningful from a round-aligned span
            # start (a fresh run, or a resume from a saved checkpoint);
            # from anywhere else the per-round position formula below
            # would not hold, so checkpointing is silently disabled.
            aligned = (
                bool(offsets)
                and all(offset == offsets[0] for offset in offsets)
                and offsets[0] % chunk == 0
            )
            if not aligned:
                on_checkpoint = None
            base_round = max(
                (offset + chunk - 1) // chunk for offset in offsets
            ) if offsets else 0
            # rounds 0..last_round have every stream unclamped, i.e. a
            # longer run over the same prefix visits the same state.
            last_round = min(
                (end - start) // chunk
                for start, end in zip(warmup_starts, ends)
            ) if ends else 0
            state = {
                "round": base_round,
                "anchor": anchor,
                "anchor_refs": anchor_refs,
                "last_checkpoint": prior_executed,
            }
            if interval_refs is not None and state["anchor"] is None:
                state["anchor"] = self.telemetry_aggregate()

            def on_round(executed_in_span: int) -> None:
                state["round"] += 1
                executed_total = prior_executed + executed_in_span
                if (
                    interval_refs is not None
                    and executed_total - state["anchor_refs"] >= interval_refs
                ):
                    current = self.telemetry_aggregate()
                    emit_interval(
                        self._interval_delta(
                            state["anchor_refs"], executed_total,
                            state["anchor"], current,
                        )
                    )
                    state["anchor"] = current
                    state["anchor_refs"] = executed_total
                if on_checkpoint is None:
                    return
                r = state["round"]
                due = (
                    checkpoint_refs is not None
                    and executed_total - state["last_checkpoint"]
                    >= checkpoint_refs
                )
                if (r == last_round or due) and r <= last_round and r > 0:
                    from repro.sim.snapshot import capture_snapshot

                    state["last_checkpoint"] = executed_total
                    snapshot = capture_snapshot(
                        self,
                        trace,
                        positions=[
                            start + chunk * r for start in warmup_starts
                        ],
                        warmup_starts=warmup_starts,
                        warmup_executed=warmup_executed,
                        executed_refs=executed_total,
                        intervals=intervals,
                        interval_refs=interval_refs,
                        anchor=state["anchor"],
                        anchor_refs=state["anchor_refs"],
                    )
                    on_checkpoint(snapshot)

        executed = executor.execute_span(positions, ends, on_round)

        if interval_refs is not None:
            executed_total = prior_executed + executed
            if executed_total > state["anchor_refs"]:
                current = self.telemetry_aggregate()
                emit_interval(
                    self._interval_delta(
                        state["anchor_refs"], executed_total,
                        state["anchor"], current,
                    )
                )

        energy = self.energy_model.compute(self.chip, self.stats)
        per_app = self._per_app_cycles(trace)
        return SimulationResult(
            config=self.config,
            workload=trace.name,
            stats=self.stats,
            energy=energy,
            warmup_references=warmup_executed,
            per_app_cycles=per_app,
            vm_names=list(trace.vm_names or []),
            intervals=intervals,
        )

    def _validate_trace_shape(self, trace: WorkloadTrace) -> None:
        if trace.pcpu_of_vcpu is not None:
            if len(trace.pcpu_of_vcpu) != trace.num_vcpus:
                raise ValueError("pcpu_of_vcpu must name one pCPU per stream")
            if not all(
                0 <= pcpu < self.config.num_cpus
                for pcpu in trace.pcpu_of_vcpu
            ):
                raise ValueError(
                    f"trace pins streams to pCPUs {trace.pcpu_of_vcpu} but "
                    f"the system has CPUs 0..{self.config.num_cpus - 1}"
                )
        elif trace.num_vcpus > self.config.num_cpus:
            raise ValueError(
                f"trace needs {trace.num_vcpus} vCPUs but the system has "
                f"{self.config.num_cpus} CPUs"
            )
        if trace.vm_of_vcpu is not None:
            if len(trace.vm_of_vcpu) != trace.num_vcpus:
                raise ValueError("vm_of_vcpu must name one VM per stream")
            if min(trace.vm_of_vcpu) < 0:
                raise ValueError("vm_of_vcpu indices must be non-negative")

    def _create_guests(self, trace: WorkloadTrace) -> list[GuestProcess]:
        """Create the trace's VMs and guest processes; return per-stream
        address-space contexts.

        Legacy (single-VM) traces take the historical path unchanged:
        one VM spanning the trace's streams.  Multi-VM traces create one
        VM per guest with its own nested page table and pCPU affinity,
        switch on per-VM statistics, and install any per-guest
        die-stacked memory caps the topology declares.
        """
        pcpus = trace.pcpu_of_vcpu or list(range(trace.num_vcpus))
        vm_of_vcpu = trace.vm_of_vcpu
        if vm_of_vcpu is None:
            vm = self.hypervisor.create_vm(vcpu_pcpus=pcpus)
            processes = [vm.create_process() for _ in range(trace.num_processes)]
            return [processes[p] for p in trace.process_of_vcpu]

        num_vms = trace.num_vms
        vms = []
        for index in range(num_vms):
            vcpu_pcpus = [
                pcpus[s]
                for s in range(trace.num_vcpus)
                if vm_of_vcpu[s] == index
            ]
            if not vcpu_pcpus:
                raise ValueError(f"VM {index} has no vCPU streams")
            vm = self.hypervisor.create_vm(vcpu_pcpus=vcpu_pcpus)
            vm.stats_index = index
            vms.append(vm)

        vm_of_process: dict[int, int] = {}
        for stream, process in enumerate(trace.process_of_vcpu):
            owner = vm_of_process.setdefault(process, vm_of_vcpu[stream])
            if owner != vm_of_vcpu[stream]:
                raise ValueError(f"process {process} spans more than one VM")
        processes = [
            vms[vm_of_process[p]].create_process()
            for p in range(trace.num_processes)
        ]

        self.stats.configure_vms(num_vms)
        for stream in range(trace.num_vcpus - 1, -1, -1):
            # seed the scheduling map with each pCPU's first stream
            self.stats.vm_of_cpu[pcpus[stream]] = vm_of_vcpu[stream]
        if trace.topology is not None:
            usable = self.chip.memory.fast.num_frames
            for index, guest in enumerate(trace.topology.guests):
                if guest.mem_share is not None:
                    self.hypervisor.set_vm_fast_cap(
                        vms[index].vm_id, max(1, int(guest.mem_share * usable))
                    )
        return [processes[p] for p in trace.process_of_vcpu]

    # ------------------------------------------------------------------
    # execution internals
    # ------------------------------------------------------------------
    def _resolve_trace(
        self, workload: WorkloadLike, refs_total: Optional[int]
    ) -> WorkloadTrace:
        return resolve_trace(
            workload, self.config.num_cpus, self.config.seed, refs_total
        )

    def _execute_span(
        self,
        trace: WorkloadTrace,
        contexts: list[GuestProcess],
        starts: list[int],
        ends: list[int],
        on_round=None,
    ) -> int:
        """Execute streams between per-stream ``starts`` and ``ends``.

        This is the **reference engine** loop: one layered call path per
        reference.  The fast engine (:mod:`repro.sim.engine`) must stay
        bit-identical to it; treat this method and
        :meth:`_execute_reference` as the specification.

        Streams map to physical CPUs through ``trace.pcpu_of_vcpu``
        (identity when absent); on consolidated machines two guests'
        streams may share a pCPU, which the round-robin chunks
        time-multiplex.  On multi-VM traces the per-VM scheduling map
        (:attr:`MachineStats.vm_of_cpu`) is updated at every chunk
        boundary so cycle charges land on the guest the pCPU is
        executing.

        ``on_round`` (when given) is called after every full round-robin
        round with the total references executed so far in this span --
        the hook the telemetry/checkpoint driver builds on.
        """
        positions = list(starts)
        pcpus = trace.pcpu_of_vcpu or list(range(trace.num_vcpus))
        vm_of_stream = trace.vm_of_vcpu if self.stats.vms else None
        vm_of_cpu = self.stats.vm_of_cpu
        executed = 0
        active = True
        while active:
            active = False
            for vcpu in range(trace.num_vcpus):
                pos = positions[vcpu]
                end = min(pos + _INTERLEAVE_CHUNK, ends[vcpu])
                if pos >= end:
                    continue
                active = True
                cpu = pcpus[vcpu]
                if vm_of_stream is not None:
                    vm_of_cpu[cpu] = vm_of_stream[vcpu]
                stream = trace.streams[vcpu]
                writes = trace.writes[vcpu]
                ctx = contexts[vcpu]
                for index in range(pos, end):
                    self._execute_reference(
                        cpu, ctx, int(stream[index]), bool(writes[index])
                    )
                    executed += 1
                positions[vcpu] = end
            if active and on_round is not None:
                on_round(executed)
        return executed

    def _execute_reference(
        self, cpu: int, ctx: GuestProcess, gva: int, is_write: bool
    ) -> None:
        core = self.chip.core(cpu)
        stats = self.stats
        stats.cpus[cpu].instructions += 1
        if stats.vms:
            stats.vms[stats.vm_of_cpu[cpu]].instructions += 1
        gvp = gva >> PAGE_SHIFT
        offset = gva & (PAGE_SIZE - 1)

        outcome = None
        for _ in range(_MAX_FAULT_RETRIES):
            outcome = core.translate(ctx, gvp, is_write)
            stats.charge_cpu(cpu, outcome.cycles)
            if outcome.fault is None:
                break
            if outcome.fault == "guest":
                ctx.ensure_guest_mapping(gvp)
                stats.charge_cpu(cpu, self.config.costs.page_fault_overhead // 2)
                stats.count("guest.minor_faults")
            elif outcome.fault == "nested":
                gpp = ctx.gpp_of(gvp)
                if gpp is None:
                    ctx.ensure_guest_mapping(gvp)
                    gpp = ctx.gpp_of(gvp)
                cycles = self.hypervisor.handle_nested_fault(ctx, gpp, cpu)
                stats.charge_cpu(cpu, cycles)
        else:
            raise RuntimeError(
                f"reference to gva {gva:#x} did not resolve after "
                f"{_MAX_FAULT_RETRIES} fault retries"
            )

        if self.validate:
            self._check_translation(ctx, gvp, outcome.spp)

        defrag_cycles = self.hypervisor.on_data_access(outcome.spp, cpu)
        if defrag_cycles:
            stats.count("paging.defrag_access_stalls")
        spa = (outcome.spp << PAGE_SHIFT) | offset
        stats.charge_cpu(cpu, core.access_data(spa, is_write))

    def _check_translation(self, ctx: GuestProcess, gvp: int, spp: int) -> None:
        """Cross-check a translation against the page tables (validation mode)."""
        guest_entry = ctx.guest_page_table.lookup(gvp)
        if guest_entry is None:
            raise TranslationCorrectnessError(
                f"gvp {gvp:#x} translated but has no guest mapping"
            )
        nested_entry = ctx.nested_page_table.lookup(guest_entry.pfn)
        if nested_entry is None:
            raise TranslationCorrectnessError(
                f"gpp {guest_entry.pfn:#x} translated but has no nested mapping"
            )
        if nested_entry.pfn != spp:
            raise TranslationCorrectnessError(
                f"stale translation used for gvp {gvp:#x}: got spp {spp:#x}, "
                f"page tables say {nested_entry.pfn:#x}"
            )

    def _reset_statistics(self) -> None:
        """Discard statistics accumulated so far (end of warmup)."""
        self.stats.reset()
        self.chip.reset_statistics()

    def _per_app_cycles(self, trace: WorkloadTrace) -> dict[str, int]:
        """Per-application busy cycles for multiprogrammed traces.

        Applications are labelled with the real per-vCPU workload names
        carried by the trace, falling back to positional labels for
        traces built before the names were recorded.  Multi-VM traces
        report per-guest accounting through ``stats.vms`` instead: with
        pCPUs potentially time-shared between guests, a per-stream CPU
        readout would double-count.
        """
        if trace.num_processes <= 1 or trace.vm_of_vcpu is not None:
            return {}
        per_app: dict[str, int] = {}
        for cpu in range(trace.num_vcpus):
            if trace.app_names is not None and cpu < len(trace.app_names):
                name = trace.app_names[cpu]
            else:
                name = f"app{cpu:02d}"
            per_app[name] = self.stats.cpus[cpu].busy_cycles
        return per_app


class SteppedRun:
    """Externally driven execution: advance a machine span by span.

    :meth:`Simulator.run` owns its whole execution; a *stepped* run
    hands that control to the caller, which is what multi-machine
    drivers (the fleet layer) need: every simulated host advances
    through the same global schedule of round-aligned spans, with the
    driver interleaving snapshot transport between spans.  Both engines
    execute each span bit-identically, so a stepped run remains as
    deterministic as a straight-through one.

    The run executes with no warmup (statistics accumulate from the
    first reference) and assembles a perfectly ordinary
    :class:`SimulationResult` on demand.
    """

    def __init__(self, simulator: Simulator, trace: WorkloadTrace) -> None:
        simulator._validate_trace_shape(trace)
        self.simulator = simulator
        self.trace = trace
        self.contexts = simulator._create_guests(trace)
        self.executor = make_executor(simulator, trace, self.contexts)
        self.positions = [0] * trace.num_vcpus
        self.executed_refs = 0
        self.intervals: list[IntervalSample] = []
        self._anchor = simulator.telemetry_aggregate()
        self._anchor_refs = 0

    def advance(self, spans: dict[int, int]) -> int:
        """Execute streams up to per-stream target positions.

        ``spans`` maps stream index to its new end position; unnamed
        streams do not move (their span is empty, which both engines
        skip identically).  Targets may not move a stream backwards.
        Returns the references executed.
        """
        ends = list(self.positions)
        for stream, end in spans.items():
            if end < self.positions[stream]:
                raise ValueError(
                    f"stream {stream} cannot move backwards: "
                    f"{self.positions[stream]} -> {end}"
                )
            if end > len(self.trace.streams[stream]):
                raise ValueError(
                    f"stream {stream} target {end} beyond its "
                    f"{len(self.trace.streams[stream])} references"
                )
            ends[stream] = end
        executed = self.executor.execute_span(list(self.positions), ends)
        self.positions = ends
        self.executed_refs += executed
        return executed

    def sample_interval(self) -> IntervalSample:
        """Close the current telemetry interval and start the next.

        The sample is the statistics delta since the previous call (or
        construction), exactly like the interval telemetry a
        :meth:`Simulator.run` with ``interval_refs`` emits; samples are
        collected on :attr:`intervals` and carried into the result.
        """
        current = self.simulator.telemetry_aggregate()
        sample = Simulator._interval_delta(
            self._anchor_refs, self.executed_refs, self._anchor, current
        )
        self._anchor = current
        self._anchor_refs = self.executed_refs
        self.intervals.append(sample)
        return sample

    def result(self) -> SimulationResult:
        """Assemble the run's measurements so far."""
        simulator = self.simulator
        return SimulationResult(
            config=simulator.config,
            workload=self.trace.name,
            stats=simulator.stats,
            energy=simulator.energy_model.compute(
                simulator.chip, simulator.stats
            ),
            warmup_references=0,
            per_app_cycles=simulator._per_app_cycles(self.trace),
            vm_names=list(self.trace.vm_names or []),
            intervals=self.intervals,
        )
