"""Trace-driven simulator: ties the chip, hypervisor and protocol together.

The simulator executes per-vCPU reference streams in round-robin chunks
(approximating concurrent execution), charging cycles per CPU.  Each
reference is translated through the TLBs / MMU cache / nTLB / page
walker, triggers guest and nested page faults on first touch, flows
through the hypervisor's paging machinery (which is what generates
nested page table remaps and hence translation coherence), and finally
accesses the data through the cache hierarchy.

Runs report a :class:`SimulationResult` carrying cycle counts, event
counters and the energy breakdown; the experiment modules combine
results from multiple runs into the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.cotag import CoTagScheme
from repro.core.protocol import TranslationCoherenceProtocol, make_protocol
from repro.cpu.chip import Chip
from repro.energy.model import EnergyBreakdown, EnergyModel, EnergyParameters
from repro.sim.engine import (
    ENGINE_FAST,
    ENGINE_REFERENCE,
    install_fast_paths,
    make_executor,
    resolve_engine,
)
from repro.sim.config import SystemConfig
from repro.sim.stats import MachineStats
from repro.translation.address import PAGE_SHIFT, PAGE_SIZE
from repro.virt.kvm import KvmHypervisor
from repro.virt.vm import GuestProcess
from repro.virt.xen import XenHypervisor
from repro.workloads.base import (
    MultiprogrammedWorkload,
    Workload,
    WorkloadTrace,
)

#: references processed per vCPU before moving to the next one.
_INTERLEAVE_CHUNK = 32
#: maximum fault-retry attempts for one reference.
_MAX_FAULT_RETRIES = 4

WorkloadLike = Union[Workload, MultiprogrammedWorkload, WorkloadTrace]


class TranslationCorrectnessError(AssertionError):
    """Raised in validation mode when a stale translation is observed."""


def resolve_trace(
    workload: WorkloadLike,
    num_cpus: int,
    seed: int,
    refs_total: Optional[int] = None,
) -> WorkloadTrace:
    """Materialize a workload into per-vCPU streams for a machine shape.

    Already-generated traces pass through unchanged; multiprogrammed
    workloads get one vCPU per application (capped at ``num_cpus``),
    multithreaded workloads one stream per CPU.  Fully deterministic
    given the arguments.
    """
    if isinstance(workload, WorkloadTrace):
        return workload
    if isinstance(workload, MultiprogrammedWorkload):
        return workload.generate(
            num_vcpus=min(num_cpus, len(workload.specs)),
            seed=seed,
            refs_total=refs_total,
        )
    return workload.generate(
        num_vcpus=num_cpus, seed=seed, refs_total=refs_total
    )


@dataclass
class SimulationResult:
    """Everything measured during one simulation run."""

    config: SystemConfig
    workload: str
    stats: MachineStats
    energy: EnergyBreakdown
    warmup_references: int = 0
    per_app_cycles: dict[str, int] = field(default_factory=dict)

    @property
    def runtime_cycles(self) -> int:
        """Wall-clock runtime in cycles (busiest CPU)."""
        return self.stats.runtime_cycles

    @property
    def total_cycles(self) -> int:
        """Sum of cycles across CPUs."""
        return self.stats.total_cycles

    @property
    def coherence_cycles(self) -> int:
        """Cycles attributed to translation coherence."""
        return self.stats.coherence_cycles

    @property
    def energy_total(self) -> float:
        """Total energy in model units."""
        return self.energy.total

    @property
    def events(self) -> dict[str, int]:
        """Event counters as a plain dictionary."""
        return dict(self.stats.events)

    def normalized_runtime(self, baseline: "SimulationResult") -> float:
        """Runtime normalized to another run (the paper's main metric)."""
        if baseline.runtime_cycles == 0:
            raise ValueError("baseline runtime is zero")
        return self.runtime_cycles / baseline.runtime_cycles

    def normalized_energy(self, baseline: "SimulationResult") -> float:
        """Energy normalized to another run."""
        if baseline.energy_total == 0:
            raise ValueError("baseline energy is zero")
        return self.energy_total / baseline.energy_total


class Simulator:
    """Builds one simulated machine and runs workloads on it.

    Args:
        config: the machine to simulate.
        validate: cross-check every translation against the page tables
            (always runs on the reference engine).
        energy_parameters: overrides for the energy model.
        engine: execution engine, ``"reference"`` or ``"fast"`` (see
            :mod:`repro.sim.engine`).  ``None`` consults the
            ``REPRO_SIM_ENGINE`` environment variable and defaults to
            the fast engine; both engines produce bit-identical results.
    """

    def __init__(
        self,
        config: SystemConfig,
        validate: bool = False,
        energy_parameters: Optional[EnergyParameters] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.protocol: TranslationCoherenceProtocol = make_protocol(config.protocol)
        hypervisor_cls = XenHypervisor if config.hypervisor == "xen" else KvmHypervisor
        config = config.replace(costs=hypervisor_cls.adjust_costs(config.costs))
        self.config = config
        self.validate = validate

        cotag_scheme = (
            CoTagScheme(config.translation.cotag_bytes)
            if self.protocol.uses_cotags
            else None
        )
        self.stats = MachineStats(config.num_cpus)
        self.chip = Chip(
            config,
            self.stats,
            cotag_scheme=cotag_scheme,
            track_translation_sharers=self.protocol.tracks_translation_sharers,
        )
        self.protocol.bind(self.chip, self.stats, config.costs)
        self.hypervisor = hypervisor_cls(
            self.chip, config, self.protocol, self.stats
        )
        self.energy_model = EnergyModel(
            params=energy_parameters,
            cotag_bytes=(
                config.translation.cotag_bytes if self.protocol.uses_cotags else 0
            ),
            fine_grained_directory=config.directory.fine_grained,
        )
        self.engine = resolve_engine(engine, validate=validate)
        if self.engine == ENGINE_FAST and not install_fast_paths(self.chip):
            self.engine = ENGINE_REFERENCE  # pragma: no cover - exotic geometry

    # ------------------------------------------------------------------
    # running workloads
    # ------------------------------------------------------------------
    def run(
        self,
        workload: WorkloadLike,
        warmup_fraction: float = 0.2,
        refs_total: Optional[int] = None,
    ) -> SimulationResult:
        """Run a workload to completion and return its measurements.

        The first ``warmup_fraction`` of each stream is executed with
        statistics discarded afterwards, so cold-start effects (initial
        population of die-stacked DRAM) do not dominate the short
        synthetic traces the way they never would in the paper's
        50-billion-reference traces.
        """
        trace = self._resolve_trace(workload, refs_total)
        if trace.num_vcpus > self.config.num_cpus:
            raise ValueError(
                f"trace needs {trace.num_vcpus} vCPUs but the system has "
                f"{self.config.num_cpus} CPUs"
            )
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")

        vm = self.hypervisor.create_vm(vcpu_pcpus=list(range(trace.num_vcpus)))
        processes = [vm.create_process() for _ in range(trace.num_processes)]
        contexts = [processes[p] for p in trace.process_of_vcpu]
        executor = make_executor(self, trace, contexts)

        warmup_refs = 0
        if warmup_fraction > 0.0:
            warmup_refs = executor.execute(fraction=warmup_fraction)
            self._reset_statistics()
        executor.execute(fraction=1.0, skip_fraction=warmup_fraction)

        energy = self.energy_model.compute(self.chip, self.stats)
        per_app = self._per_app_cycles(trace)
        return SimulationResult(
            config=self.config,
            workload=trace.name,
            stats=self.stats,
            energy=energy,
            warmup_references=warmup_refs,
            per_app_cycles=per_app,
        )

    # ------------------------------------------------------------------
    # execution internals
    # ------------------------------------------------------------------
    def _resolve_trace(
        self, workload: WorkloadLike, refs_total: Optional[int]
    ) -> WorkloadTrace:
        return resolve_trace(
            workload, self.config.num_cpus, self.config.seed, refs_total
        )

    def _execute(
        self,
        trace: WorkloadTrace,
        contexts: list[GuestProcess],
        fraction: float,
        skip_fraction: float = 0.0,
    ) -> int:
        """Execute streams between ``skip_fraction`` and ``fraction``.

        This is the **reference engine** loop: one layered call path per
        reference.  The fast engine (:mod:`repro.sim.engine`) must stay
        bit-identical to it; treat this method and
        :meth:`_execute_reference` as the specification.
        """
        starts = [int(len(s) * skip_fraction) for s in trace.streams]
        ends = [int(len(s) * fraction) for s in trace.streams]
        positions = list(starts)
        executed = 0
        active = True
        while active:
            active = False
            for cpu in range(trace.num_vcpus):
                pos = positions[cpu]
                end = min(pos + _INTERLEAVE_CHUNK, ends[cpu])
                if pos >= end:
                    continue
                active = True
                stream = trace.streams[cpu]
                writes = trace.writes[cpu]
                ctx = contexts[cpu]
                for index in range(pos, end):
                    self._execute_reference(
                        cpu, ctx, int(stream[index]), bool(writes[index])
                    )
                    executed += 1
                positions[cpu] = end
        return executed

    def _execute_reference(
        self, cpu: int, ctx: GuestProcess, gva: int, is_write: bool
    ) -> None:
        core = self.chip.core(cpu)
        stats = self.stats
        stats.cpus[cpu].instructions += 1
        gvp = gva >> PAGE_SHIFT
        offset = gva & (PAGE_SIZE - 1)

        outcome = None
        for _ in range(_MAX_FAULT_RETRIES):
            outcome = core.translate(ctx, gvp, is_write)
            stats.charge_cpu(cpu, outcome.cycles)
            if outcome.fault is None:
                break
            if outcome.fault == "guest":
                ctx.ensure_guest_mapping(gvp)
                stats.charge_cpu(cpu, self.config.costs.page_fault_overhead // 2)
                stats.count("guest.minor_faults")
            elif outcome.fault == "nested":
                gpp = ctx.gpp_of(gvp)
                if gpp is None:
                    ctx.ensure_guest_mapping(gvp)
                    gpp = ctx.gpp_of(gvp)
                cycles = self.hypervisor.handle_nested_fault(ctx, gpp, cpu)
                stats.charge_cpu(cpu, cycles)
        else:
            raise RuntimeError(
                f"reference to gva {gva:#x} did not resolve after "
                f"{_MAX_FAULT_RETRIES} fault retries"
            )

        if self.validate:
            self._check_translation(ctx, gvp, outcome.spp)

        defrag_cycles = self.hypervisor.on_data_access(outcome.spp, cpu)
        if defrag_cycles:
            stats.count("paging.defrag_access_stalls")
        spa = (outcome.spp << PAGE_SHIFT) | offset
        stats.charge_cpu(cpu, core.access_data(spa, is_write))

    def _check_translation(self, ctx: GuestProcess, gvp: int, spp: int) -> None:
        """Cross-check a translation against the page tables (validation mode)."""
        guest_entry = ctx.guest_page_table.lookup(gvp)
        if guest_entry is None:
            raise TranslationCorrectnessError(
                f"gvp {gvp:#x} translated but has no guest mapping"
            )
        nested_entry = ctx.nested_page_table.lookup(guest_entry.pfn)
        if nested_entry is None:
            raise TranslationCorrectnessError(
                f"gpp {guest_entry.pfn:#x} translated but has no nested mapping"
            )
        if nested_entry.pfn != spp:
            raise TranslationCorrectnessError(
                f"stale translation used for gvp {gvp:#x}: got spp {spp:#x}, "
                f"page tables say {nested_entry.pfn:#x}"
            )

    def _reset_statistics(self) -> None:
        """Discard statistics accumulated so far (end of warmup)."""
        self.stats.reset()
        self.chip.reset_statistics()

    def _per_app_cycles(self, trace: WorkloadTrace) -> dict[str, int]:
        """Per-application busy cycles for multiprogrammed traces.

        Applications are labelled with the real per-vCPU workload names
        carried by the trace, falling back to positional labels for
        traces built before the names were recorded.
        """
        if trace.num_processes <= 1:
            return {}
        per_app: dict[str, int] = {}
        for cpu in range(trace.num_vcpus):
            if trace.app_names is not None and cpu < len(trace.app_names):
                name = trace.app_names[cpu]
            else:
                name = f"app{cpu:02d}"
            per_app[name] = self.stats.cpus[cpu].busy_cycles
        return per_app
