"""Trace-driven simulator: ties the chip, hypervisor and protocol together.

The simulator executes per-vCPU reference streams in round-robin chunks
(approximating concurrent execution), charging cycles per CPU.  Each
reference is translated through the TLBs / MMU cache / nTLB / page
walker, triggers guest and nested page faults on first touch, flows
through the hypervisor's paging machinery (which is what generates
nested page table remaps and hence translation coherence), and finally
accesses the data through the cache hierarchy.

Runs report a :class:`SimulationResult` carrying cycle counts, event
counters and the energy breakdown; the experiment modules combine
results from multiple runs into the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.cotag import CoTagScheme
from repro.core.protocol import TranslationCoherenceProtocol, make_protocol
from repro.cpu.chip import Chip
from repro.energy.model import EnergyBreakdown, EnergyModel, EnergyParameters
from repro.sim.engine import (
    ENGINE_FAST,
    ENGINE_REFERENCE,
    install_fast_paths,
    make_executor,
    resolve_engine,
)
from repro.sim.config import SystemConfig
from repro.sim.stats import MachineStats
from repro.translation.address import PAGE_SHIFT, PAGE_SIZE
from repro.virt.kvm import KvmHypervisor
from repro.virt.vm import GuestProcess
from repro.virt.xen import XenHypervisor
from repro.workloads.base import (
    MultiprogrammedWorkload,
    Workload,
    WorkloadTrace,
)

#: references processed per vCPU before moving to the next one.
_INTERLEAVE_CHUNK = 32
#: maximum fault-retry attempts for one reference.
_MAX_FAULT_RETRIES = 4

WorkloadLike = Union[Workload, MultiprogrammedWorkload, WorkloadTrace]


class TranslationCorrectnessError(AssertionError):
    """Raised in validation mode when a stale translation is observed."""


def resolve_trace(
    workload: WorkloadLike,
    num_cpus: int,
    seed: int,
    refs_total: Optional[int] = None,
) -> WorkloadTrace:
    """Materialize a workload into per-vCPU streams for a machine shape.

    Already-generated traces pass through unchanged; multiprogrammed
    workloads get one vCPU per application (capped at ``num_cpus``),
    multithreaded workloads one stream per CPU.  Fully deterministic
    given the arguments.
    """
    if isinstance(workload, WorkloadTrace):
        return workload
    if isinstance(workload, MultiprogrammedWorkload):
        return workload.generate(
            num_vcpus=min(num_cpus, len(workload.specs)),
            seed=seed,
            refs_total=refs_total,
        )
    return workload.generate(
        num_vcpus=num_cpus, seed=seed, refs_total=refs_total
    )


@dataclass
class SimulationResult:
    """Everything measured during one simulation run."""

    config: SystemConfig
    workload: str
    stats: MachineStats
    energy: EnergyBreakdown
    warmup_references: int = 0
    per_app_cycles: dict[str, int] = field(default_factory=dict)
    #: per-VM display names for consolidated runs (aligned with
    #: ``stats.vms``); empty for legacy single-VM runs.
    vm_names: list[str] = field(default_factory=list)

    @property
    def runtime_cycles(self) -> int:
        """Wall-clock runtime in cycles (busiest CPU)."""
        return self.stats.runtime_cycles

    @property
    def total_cycles(self) -> int:
        """Sum of cycles across CPUs."""
        return self.stats.total_cycles

    @property
    def coherence_cycles(self) -> int:
        """Cycles attributed to translation coherence."""
        return self.stats.coherence_cycles

    @property
    def energy_total(self) -> float:
        """Total energy in model units."""
        return self.energy.total

    @property
    def events(self) -> dict[str, int]:
        """Event counters as a plain dictionary."""
        return dict(self.stats.events)

    def normalized_runtime(self, baseline: "SimulationResult") -> float:
        """Runtime normalized to another run (the paper's main metric)."""
        if baseline.runtime_cycles == 0:
            raise ValueError("baseline runtime is zero")
        return self.runtime_cycles / baseline.runtime_cycles

    def normalized_energy(self, baseline: "SimulationResult") -> float:
        """Energy normalized to another run."""
        if baseline.energy_total == 0:
            raise ValueError("baseline energy is zero")
        return self.energy_total / baseline.energy_total

    def per_vm_energy(self) -> list[float]:
        """Total energy attributed to each VM by its busy-cycle share.

        The energy model has no per-VM instrumentation, so the split is
        proportional; the shares sum to :attr:`energy_total` (modulo
        floating point) by construction.
        """
        vms = self.stats.vms
        if not vms:
            return []
        total_busy = sum(vm.busy_cycles for vm in vms)
        if total_busy == 0:
            return [self.energy_total / len(vms)] * len(vms)
        return [
            self.energy_total * vm.busy_cycles / total_busy for vm in vms
        ]

    def per_vm_summary(self) -> list[dict]:
        """JSON-friendly per-VM breakdown of a consolidated run."""
        energies = self.per_vm_energy()
        summaries = []
        for index, vm in enumerate(self.stats.vms):
            name = (
                self.vm_names[index]
                if index < len(self.vm_names)
                else f"vm{index}"
            )
            summaries.append(
                {
                    "vm": name,
                    "instructions": vm.instructions,
                    "busy_cycles": vm.busy_cycles,
                    "coherence_cycles": vm.coherence_cycles,
                    "energy": energies[index],
                    "events": dict(vm.events),
                }
            )
        return summaries


class Simulator:
    """Builds one simulated machine and runs workloads on it.

    Args:
        config: the machine to simulate.
        validate: cross-check every translation against the page tables
            (always runs on the reference engine).
        energy_parameters: overrides for the energy model.
        engine: execution engine, ``"reference"`` or ``"fast"`` (see
            :mod:`repro.sim.engine`).  ``None`` consults the
            ``REPRO_SIM_ENGINE`` environment variable and defaults to
            the fast engine; both engines produce bit-identical results.
    """

    def __init__(
        self,
        config: SystemConfig,
        validate: bool = False,
        energy_parameters: Optional[EnergyParameters] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.protocol: TranslationCoherenceProtocol = make_protocol(config.protocol)
        hypervisor_cls = XenHypervisor if config.hypervisor == "xen" else KvmHypervisor
        config = config.replace(costs=hypervisor_cls.adjust_costs(config.costs))
        self.config = config
        self.validate = validate

        cotag_scheme = (
            CoTagScheme(config.translation.cotag_bytes)
            if self.protocol.uses_cotags
            else None
        )
        self.stats = MachineStats(config.num_cpus)
        self.chip = Chip(
            config,
            self.stats,
            cotag_scheme=cotag_scheme,
            track_translation_sharers=self.protocol.tracks_translation_sharers,
        )
        self.protocol.bind(self.chip, self.stats, config.costs)
        self.hypervisor = hypervisor_cls(
            self.chip, config, self.protocol, self.stats
        )
        self.energy_model = EnergyModel(
            params=energy_parameters,
            cotag_bytes=(
                config.translation.cotag_bytes if self.protocol.uses_cotags else 0
            ),
            fine_grained_directory=config.directory.fine_grained,
        )
        self.engine = resolve_engine(engine, validate=validate)
        if self.engine == ENGINE_FAST and not install_fast_paths(self.chip):
            self.engine = ENGINE_REFERENCE  # pragma: no cover - exotic geometry

    # ------------------------------------------------------------------
    # running workloads
    # ------------------------------------------------------------------
    def run(
        self,
        workload: WorkloadLike,
        warmup_fraction: float = 0.2,
        refs_total: Optional[int] = None,
    ) -> SimulationResult:
        """Run a workload to completion and return its measurements.

        The first ``warmup_fraction`` of each stream is executed with
        statistics discarded afterwards, so cold-start effects (initial
        population of die-stacked DRAM) do not dominate the short
        synthetic traces the way they never would in the paper's
        50-billion-reference traces.
        """
        trace = self._resolve_trace(workload, refs_total)
        self._validate_trace_shape(trace)
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")

        contexts = self._create_guests(trace)
        executor = make_executor(self, trace, contexts)

        warmup_refs = 0
        if warmup_fraction > 0.0:
            warmup_refs = executor.execute(fraction=warmup_fraction)
            self._reset_statistics()
        executor.execute(fraction=1.0, skip_fraction=warmup_fraction)

        energy = self.energy_model.compute(self.chip, self.stats)
        per_app = self._per_app_cycles(trace)
        return SimulationResult(
            config=self.config,
            workload=trace.name,
            stats=self.stats,
            energy=energy,
            warmup_references=warmup_refs,
            per_app_cycles=per_app,
            vm_names=list(trace.vm_names or []),
        )

    def _validate_trace_shape(self, trace: WorkloadTrace) -> None:
        if trace.pcpu_of_vcpu is not None:
            if len(trace.pcpu_of_vcpu) != trace.num_vcpus:
                raise ValueError("pcpu_of_vcpu must name one pCPU per stream")
            if not all(
                0 <= pcpu < self.config.num_cpus
                for pcpu in trace.pcpu_of_vcpu
            ):
                raise ValueError(
                    f"trace pins streams to pCPUs {trace.pcpu_of_vcpu} but "
                    f"the system has CPUs 0..{self.config.num_cpus - 1}"
                )
        elif trace.num_vcpus > self.config.num_cpus:
            raise ValueError(
                f"trace needs {trace.num_vcpus} vCPUs but the system has "
                f"{self.config.num_cpus} CPUs"
            )
        if trace.vm_of_vcpu is not None:
            if len(trace.vm_of_vcpu) != trace.num_vcpus:
                raise ValueError("vm_of_vcpu must name one VM per stream")
            if min(trace.vm_of_vcpu) < 0:
                raise ValueError("vm_of_vcpu indices must be non-negative")

    def _create_guests(self, trace: WorkloadTrace) -> list[GuestProcess]:
        """Create the trace's VMs and guest processes; return per-stream
        address-space contexts.

        Legacy (single-VM) traces take the historical path unchanged:
        one VM spanning the trace's streams.  Multi-VM traces create one
        VM per guest with its own nested page table and pCPU affinity,
        switch on per-VM statistics, and install any per-guest
        die-stacked memory caps the topology declares.
        """
        pcpus = trace.pcpu_of_vcpu or list(range(trace.num_vcpus))
        vm_of_vcpu = trace.vm_of_vcpu
        if vm_of_vcpu is None:
            vm = self.hypervisor.create_vm(vcpu_pcpus=pcpus)
            processes = [vm.create_process() for _ in range(trace.num_processes)]
            return [processes[p] for p in trace.process_of_vcpu]

        num_vms = trace.num_vms
        vms = []
        for index in range(num_vms):
            vcpu_pcpus = [
                pcpus[s]
                for s in range(trace.num_vcpus)
                if vm_of_vcpu[s] == index
            ]
            if not vcpu_pcpus:
                raise ValueError(f"VM {index} has no vCPU streams")
            vm = self.hypervisor.create_vm(vcpu_pcpus=vcpu_pcpus)
            vm.stats_index = index
            vms.append(vm)

        vm_of_process: dict[int, int] = {}
        for stream, process in enumerate(trace.process_of_vcpu):
            owner = vm_of_process.setdefault(process, vm_of_vcpu[stream])
            if owner != vm_of_vcpu[stream]:
                raise ValueError(f"process {process} spans more than one VM")
        processes = [
            vms[vm_of_process[p]].create_process()
            for p in range(trace.num_processes)
        ]

        self.stats.configure_vms(num_vms)
        for stream in range(trace.num_vcpus - 1, -1, -1):
            # seed the scheduling map with each pCPU's first stream
            self.stats.vm_of_cpu[pcpus[stream]] = vm_of_vcpu[stream]
        if trace.topology is not None:
            usable = self.chip.memory.fast.num_frames
            for index, guest in enumerate(trace.topology.guests):
                if guest.mem_share is not None:
                    self.hypervisor.set_vm_fast_cap(
                        vms[index].vm_id, max(1, int(guest.mem_share * usable))
                    )
        return [processes[p] for p in trace.process_of_vcpu]

    # ------------------------------------------------------------------
    # execution internals
    # ------------------------------------------------------------------
    def _resolve_trace(
        self, workload: WorkloadLike, refs_total: Optional[int]
    ) -> WorkloadTrace:
        return resolve_trace(
            workload, self.config.num_cpus, self.config.seed, refs_total
        )

    def _execute(
        self,
        trace: WorkloadTrace,
        contexts: list[GuestProcess],
        fraction: float,
        skip_fraction: float = 0.0,
    ) -> int:
        """Execute streams between ``skip_fraction`` and ``fraction``.

        This is the **reference engine** loop: one layered call path per
        reference.  The fast engine (:mod:`repro.sim.engine`) must stay
        bit-identical to it; treat this method and
        :meth:`_execute_reference` as the specification.

        Streams map to physical CPUs through ``trace.pcpu_of_vcpu``
        (identity when absent); on consolidated machines two guests'
        streams may share a pCPU, which the round-robin chunks
        time-multiplex.  On multi-VM traces the per-VM scheduling map
        (:attr:`MachineStats.vm_of_cpu`) is updated at every chunk
        boundary so cycle charges land on the guest the pCPU is
        executing.
        """
        starts = [int(len(s) * skip_fraction) for s in trace.streams]
        ends = [int(len(s) * fraction) for s in trace.streams]
        positions = list(starts)
        pcpus = trace.pcpu_of_vcpu or list(range(trace.num_vcpus))
        vm_of_stream = trace.vm_of_vcpu if self.stats.vms else None
        vm_of_cpu = self.stats.vm_of_cpu
        executed = 0
        active = True
        while active:
            active = False
            for vcpu in range(trace.num_vcpus):
                pos = positions[vcpu]
                end = min(pos + _INTERLEAVE_CHUNK, ends[vcpu])
                if pos >= end:
                    continue
                active = True
                cpu = pcpus[vcpu]
                if vm_of_stream is not None:
                    vm_of_cpu[cpu] = vm_of_stream[vcpu]
                stream = trace.streams[vcpu]
                writes = trace.writes[vcpu]
                ctx = contexts[vcpu]
                for index in range(pos, end):
                    self._execute_reference(
                        cpu, ctx, int(stream[index]), bool(writes[index])
                    )
                    executed += 1
                positions[vcpu] = end
        return executed

    def _execute_reference(
        self, cpu: int, ctx: GuestProcess, gva: int, is_write: bool
    ) -> None:
        core = self.chip.core(cpu)
        stats = self.stats
        stats.cpus[cpu].instructions += 1
        if stats.vms:
            stats.vms[stats.vm_of_cpu[cpu]].instructions += 1
        gvp = gva >> PAGE_SHIFT
        offset = gva & (PAGE_SIZE - 1)

        outcome = None
        for _ in range(_MAX_FAULT_RETRIES):
            outcome = core.translate(ctx, gvp, is_write)
            stats.charge_cpu(cpu, outcome.cycles)
            if outcome.fault is None:
                break
            if outcome.fault == "guest":
                ctx.ensure_guest_mapping(gvp)
                stats.charge_cpu(cpu, self.config.costs.page_fault_overhead // 2)
                stats.count("guest.minor_faults")
            elif outcome.fault == "nested":
                gpp = ctx.gpp_of(gvp)
                if gpp is None:
                    ctx.ensure_guest_mapping(gvp)
                    gpp = ctx.gpp_of(gvp)
                cycles = self.hypervisor.handle_nested_fault(ctx, gpp, cpu)
                stats.charge_cpu(cpu, cycles)
        else:
            raise RuntimeError(
                f"reference to gva {gva:#x} did not resolve after "
                f"{_MAX_FAULT_RETRIES} fault retries"
            )

        if self.validate:
            self._check_translation(ctx, gvp, outcome.spp)

        defrag_cycles = self.hypervisor.on_data_access(outcome.spp, cpu)
        if defrag_cycles:
            stats.count("paging.defrag_access_stalls")
        spa = (outcome.spp << PAGE_SHIFT) | offset
        stats.charge_cpu(cpu, core.access_data(spa, is_write))

    def _check_translation(self, ctx: GuestProcess, gvp: int, spp: int) -> None:
        """Cross-check a translation against the page tables (validation mode)."""
        guest_entry = ctx.guest_page_table.lookup(gvp)
        if guest_entry is None:
            raise TranslationCorrectnessError(
                f"gvp {gvp:#x} translated but has no guest mapping"
            )
        nested_entry = ctx.nested_page_table.lookup(guest_entry.pfn)
        if nested_entry is None:
            raise TranslationCorrectnessError(
                f"gpp {guest_entry.pfn:#x} translated but has no nested mapping"
            )
        if nested_entry.pfn != spp:
            raise TranslationCorrectnessError(
                f"stale translation used for gvp {gvp:#x}: got spp {spp:#x}, "
                f"page tables say {nested_entry.pfn:#x}"
            )

    def _reset_statistics(self) -> None:
        """Discard statistics accumulated so far (end of warmup)."""
        self.stats.reset()
        self.chip.reset_statistics()

    def _per_app_cycles(self, trace: WorkloadTrace) -> dict[str, int]:
        """Per-application busy cycles for multiprogrammed traces.

        Applications are labelled with the real per-vCPU workload names
        carried by the trace, falling back to positional labels for
        traces built before the names were recorded.  Multi-VM traces
        report per-guest accounting through ``stats.vms`` instead: with
        pCPUs potentially time-shared between guests, a per-stream CPU
        readout would double-count.
        """
        if trace.num_processes <= 1 or trace.vm_of_vcpu is not None:
            return {}
        per_app: dict[str, int] = {}
        for cpu in range(trace.num_vcpus):
            if trace.app_names is not None and cpu < len(trace.app_names):
                name = trace.app_names[cpu]
            else:
                name = f"app{cpu:02d}"
            per_app[name] = self.stats.cpus[cpu].busy_cycles
        return per_app
