"""Statistics collection for simulation runs.

The simulator and its components record events into a
:class:`MachineStats` object; experiments then derive the paper's
metrics (normalized runtime, weighted runtime, energy) from it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping


class EventCounter(Counter):
    """A :class:`collections.Counter` with a convenience ``add`` method."""

    def add(self, event: str, count: int = 1) -> None:
        """Increment ``event`` by ``count``."""
        self[event] += count


@dataclass
class CpuStats:
    """Per-CPU cycle accounting.

    Attributes:
        busy_cycles: cycles spent executing the workload (translation,
            data access, and any coherence work charged to this CPU).
        coherence_cycles: the subset of ``busy_cycles`` attributable to
            translation coherence (VM exits, flushes, invalidations).
        instructions: references retired (one per trace record).
    """

    busy_cycles: int = 0
    coherence_cycles: int = 0
    instructions: int = 0

    def charge(self, cycles: int, coherence: bool = False) -> None:
        """Add ``cycles`` of work, optionally tagged as coherence overhead."""
        self.busy_cycles += cycles
        if coherence:
            self.coherence_cycles += cycles


@dataclass
class MachineStats:
    """Aggregated statistics for one simulation run."""

    num_cpus: int
    cpus: list[CpuStats] = field(init=False)
    events: EventCounter = field(default_factory=EventCounter)
    #: cycles charged to background activity (migration daemon) rather
    #: than any CPU's critical path.
    background_cycles: int = 0

    def __post_init__(self) -> None:
        self.cpus = [CpuStats() for _ in range(self.num_cpus)]

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every counter (used when discarding warmup statistics)."""
        self.cpus = [CpuStats() for _ in range(self.num_cpus)]
        self.events = EventCounter()
        self.background_cycles = 0

    def charge_cpu(self, cpu: int, cycles: int, coherence: bool = False) -> None:
        """Charge cycles to one CPU's critical path."""
        self.cpus[cpu].charge(cycles, coherence)

    def charge_background(self, cycles: int) -> None:
        """Charge cycles to background (off critical path) work."""
        self.background_cycles += cycles

    def count(self, event: str, n: int = 1) -> None:
        """Count an event occurrence."""
        self.events.add(event, n)

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def runtime_cycles(self) -> int:
        """Wall-clock runtime: the busiest CPU defines the critical path."""
        return max((c.busy_cycles for c in self.cpus), default=0)

    @property
    def total_cycles(self) -> int:
        """Sum of cycles across all CPUs (for energy accounting)."""
        return sum(c.busy_cycles for c in self.cpus)

    @property
    def coherence_cycles(self) -> int:
        """Total cycles attributed to translation coherence."""
        return sum(c.coherence_cycles for c in self.cpus)

    @property
    def total_instructions(self) -> int:
        """Total references retired across CPUs."""
        return sum(c.instructions for c in self.cpus)

    def per_cpu_runtime(self) -> list[int]:
        """Return each CPU's busy cycle count."""
        return [c.busy_cycles for c in self.cpus]

    def merge_events(self, other: Mapping[str, int]) -> None:
        """Fold an external event mapping into this object's counters."""
        for key, value in other.items():
            self.events.add(key, value)

    def summary(self, keys: Iterable[str] | None = None) -> dict[str, int]:
        """Return a plain-dict snapshot of selected (or all) event counters."""
        if keys is None:
            return dict(self.events)
        return {key: self.events.get(key, 0) for key in keys}
