"""Statistics collection for simulation runs.

The simulator and its components record events into a
:class:`MachineStats` object; experiments then derive the paper's
metrics (normalized runtime, weighted runtime, energy) from it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence


class EventCounter(Counter):
    """A :class:`collections.Counter` with a convenience ``add`` method."""

    def add(self, event: str, count: int = 1) -> None:
        """Increment ``event`` by ``count``."""
        self[event] += count


@dataclass
class IntervalSample:
    """Machine-stats delta over one telemetry interval of a run.

    The execution driver emits one sample per ``interval_refs`` retired
    references (at round boundaries, so both engines agree bit-exactly)
    plus a trailing sample covering the tail.  Every field is a *delta*
    relative to the previous sample, so summing a run's samples
    reproduces its final aggregate statistics (the conservation law
    ``tests/test_snapshot.py`` enforces).

    Attributes:
        start_refs: post-warmup references retired when the interval
            began.
        end_refs: post-warmup references retired when it ended.
        busy_cycles: cycles charged to CPU critical paths in the window.
        coherence_cycles: subset of ``busy_cycles`` attributed to
            translation coherence.
        background_cycles: off-critical-path (migration daemon) cycles.
        instructions: references retired in the window.
        energy: energy accrued in the window (model units).
        events: event-counter deltas (only events that moved).
        vms: per-guest-VM deltas for consolidated runs (aligned with
            :attr:`MachineStats.vms`); empty for single-VM runs.
    """

    start_refs: int
    end_refs: int
    busy_cycles: int
    coherence_cycles: int
    background_cycles: int
    instructions: int
    energy: float
    events: dict[str, int] = field(default_factory=dict)
    vms: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Plain JSON-compatible representation."""
        data = {
            "start_refs": self.start_refs,
            "end_refs": self.end_refs,
            "busy_cycles": self.busy_cycles,
            "coherence_cycles": self.coherence_cycles,
            "background_cycles": self.background_cycles,
            "instructions": self.instructions,
            "energy": self.energy,
            "events": dict(self.events),
        }
        if self.vms:
            data["vms"] = [dict(vm) for vm in self.vms]
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "IntervalSample":
        """Rebuild a sample from :meth:`to_dict` output."""
        return cls(
            start_refs=data["start_refs"],
            end_refs=data["end_refs"],
            busy_cycles=data["busy_cycles"],
            coherence_cycles=data["coherence_cycles"],
            background_cycles=data["background_cycles"],
            instructions=data["instructions"],
            energy=data["energy"],
            events=dict(data.get("events", {})),
            vms=[dict(vm) for vm in data.get("vms", [])],
        )


def nearest_rank_percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of ``values`` (inclusive, exact).

    Deterministic and interpolation-free, so percentile columns in
    committed experiment tables never drift with a numerics library
    version: the ``pct``-th percentile is the smallest value such that
    at least ``pct`` percent of the samples are <= it.
    """
    if not values:
        raise ValueError(
            f"cannot take the {pct} percentile of an empty sequence"
        )
    if not 0.0 < pct <= 100.0:
        raise ValueError(
            f"pct must be in (0, 100], got {pct} (nearest-rank has no "
            f"0th percentile; use min() for the smallest sample)"
        )
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * pct // 100))  # ceil without floats
    return ordered[int(rank) - 1]


def cycles_per_ref_series(
    samples: Iterable["IntervalSample"], vm_index: Optional[int] = None
) -> list[float]:
    """Per-interval cycles-per-reference, the telemetry latency proxy.

    With ``vm_index`` the series is scoped to one guest VM of a
    consolidated run (using the per-VM deltas each sample carries);
    intervals in which that VM retired nothing are skipped, since a
    latency has no meaning for work that did not run.
    """
    series: list[float] = []
    for sample in samples:
        if vm_index is None:
            busy, refs = sample.busy_cycles, sample.instructions
        else:
            if vm_index >= len(sample.vms):
                continue
            vm = sample.vms[vm_index]
            busy, refs = vm["busy_cycles"], vm["instructions"]
        if refs > 0:
            series.append(busy / refs)
    return series


def tail_latency_percentiles(
    samples: Iterable["IntervalSample"],
    vm_index: Optional[int] = None,
    percentiles: Sequence[float] = (50, 95, 99),
) -> dict[str, float]:
    """p50/p95/p99 (by default) cycles-per-ref over interval telemetry.

    The fleet metrics layer uses this per VM: a migration wave shows up
    as a fat p99 relative to p50 in the cycles-per-ref distribution.
    Returns an empty dict when no interval retired any references.
    """
    series = cycles_per_ref_series(samples, vm_index)
    if not series:
        return {}
    return {
        f"p{pct:g}": nearest_rank_percentile(series, pct)
        for pct in percentiles
    }


@dataclass
class CpuStats:
    """Per-CPU cycle accounting.

    Attributes:
        busy_cycles: cycles spent executing the workload (translation,
            data access, and any coherence work charged to this CPU).
        coherence_cycles: the subset of ``busy_cycles`` attributable to
            translation coherence (VM exits, flushes, invalidations).
        instructions: references retired (one per trace record).
    """

    busy_cycles: int = 0
    coherence_cycles: int = 0
    instructions: int = 0

    def charge(self, cycles: int, coherence: bool = False) -> None:
        """Add ``cycles`` of work, optionally tagged as coherence overhead."""
        self.busy_cycles += cycles
        if coherence:
            self.coherence_cycles += cycles


@dataclass
class VmStats:
    """Per-guest-VM accounting on a consolidated machine.

    Cycles are attributed to the VM whose reference a CPU was executing
    when the charge landed (see :attr:`MachineStats.vm_of_cpu`), so the
    target-side cost of a shootdown aimed at guest A but paid on a CPU
    currently running guest B is booked against B -- exactly the
    cross-VM interference the paper quantifies.  Events are attributed
    to the VM the event acted on (the faulting guest, the remap victim).
    """

    busy_cycles: int = 0
    coherence_cycles: int = 0
    instructions: int = 0
    events: EventCounter = field(default_factory=EventCounter)

    def charge(self, cycles: int, coherence: bool = False) -> None:
        """Add ``cycles`` of work, optionally tagged as coherence overhead."""
        self.busy_cycles += cycles
        if coherence:
            self.coherence_cycles += cycles

    def to_dict(self) -> dict:
        """Plain-dict form shared by telemetry, snapshots and the cache.

        One encoder for all three serialization sites, so a new
        :class:`VmStats` field cannot silently go missing from one of
        them.
        """
        return {
            "busy_cycles": self.busy_cycles,
            "coherence_cycles": self.coherence_cycles,
            "instructions": self.instructions,
            "events": dict(self.events),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "VmStats":
        """Rebuild from :meth:`to_dict` output (shared by all decoders)."""
        return cls(
            busy_cycles=data["busy_cycles"],
            coherence_cycles=data["coherence_cycles"],
            instructions=data["instructions"],
            events=EventCounter(data["events"]),
        )


@dataclass
class MachineStats:
    """Aggregated statistics for one simulation run."""

    num_cpus: int
    cpus: list[CpuStats] = field(init=False)
    events: EventCounter = field(default_factory=EventCounter)
    #: cycles charged to background activity (migration daemon) rather
    #: than any CPU's critical path.
    background_cycles: int = 0
    #: per-guest-VM counters; empty on single-VM machines, where per-VM
    #: tracking is disabled entirely (zero overhead, identical results).
    vms: list[VmStats] = field(default_factory=list)
    #: VM index currently executing on each pCPU; the executors update
    #: it as their round-robin hands a pCPU to another guest's stream.
    #: Scheduling state, not a statistic: it survives ``reset``.
    vm_of_cpu: list[int] = field(init=False)

    def __post_init__(self) -> None:
        self.cpus = [CpuStats() for _ in range(self.num_cpus)]
        self.vm_of_cpu = [0] * self.num_cpus

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def configure_vms(self, num_vms: int) -> None:
        """Enable per-VM tracking for a consolidated run."""
        self.vms = [VmStats() for _ in range(num_vms)]

    def reset(self) -> None:
        """Zero every counter (used when discarding warmup statistics)."""
        self.cpus = [CpuStats() for _ in range(self.num_cpus)]
        self.events = EventCounter()
        self.background_cycles = 0
        self.vms = [VmStats() for _ in self.vms]

    def charge_cpu(self, cpu: int, cycles: int, coherence: bool = False) -> None:
        """Charge cycles to one CPU's critical path."""
        self.cpus[cpu].charge(cycles, coherence)
        if self.vms:
            self.vms[self.vm_of_cpu[cpu]].charge(cycles, coherence)

    def charge_background(self, cycles: int) -> None:
        """Charge cycles to background (off critical path) work."""
        self.background_cycles += cycles

    def count(self, event: str, n: int = 1) -> None:
        """Count an event occurrence."""
        self.events.add(event, n)

    def count_vm(self, vm_index: int, event: str, n: int = 1) -> None:
        """Count an event against one guest VM (no-op when not tracking)."""
        if self.vms and 0 <= vm_index < len(self.vms):
            self.vms[vm_index].events.add(event, n)

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def runtime_cycles(self) -> int:
        """Wall-clock runtime: the busiest CPU defines the critical path."""
        return max((c.busy_cycles for c in self.cpus), default=0)

    @property
    def total_cycles(self) -> int:
        """Sum of cycles across all CPUs (for energy accounting)."""
        return sum(c.busy_cycles for c in self.cpus)

    @property
    def coherence_cycles(self) -> int:
        """Total cycles attributed to translation coherence."""
        return sum(c.coherence_cycles for c in self.cpus)

    @property
    def total_instructions(self) -> int:
        """Total references retired across CPUs."""
        return sum(c.instructions for c in self.cpus)

    def per_cpu_runtime(self) -> list[int]:
        """Return each CPU's busy cycle count."""
        return [c.busy_cycles for c in self.cpus]

    def merge_events(self, other: Mapping[str, int]) -> None:
        """Fold an external event mapping into this object's counters."""
        for key, value in other.items():
            self.events.add(key, value)

    def summary(self, keys: Iterable[str] | None = None) -> dict[str, int]:
        """Return a plain-dict snapshot of selected (or all) event counters."""
        if keys is None:
            return dict(self.events)
        return {key: self.events.get(key, 0) for key in keys}
