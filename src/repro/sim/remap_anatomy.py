"""Single-remap cost microbenchmark (Figure 3 and Section 3.2/3.3).

Triggers exactly one nested page table remap after every CPU has cached
the victim page's translation and reports what the configured
translation coherence mechanism does about it: IPIs, VM exits, entries
invalidated versus flushed, and the cycles landing on the initiator and
the targets.

This lives in :mod:`repro.sim` (not in the experiments layer) so the
:mod:`repro.api` session engine can execute remap-anatomy requests the
same way it executes trace-driven simulation requests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cotag import CoTagScheme
from repro.core.protocol import RemapEvent, make_protocol
from repro.cpu.chip import Chip
from repro.sim.config import SystemConfig
from repro.sim.stats import MachineStats
from repro.virt.kvm import KvmHypervisor


@dataclass
class AnatomyRow:
    """Cost breakdown of one remap under one mechanism."""

    protocol: str
    initiator_cycles: int
    total_target_cycles: int
    max_target_cycles: int
    ipis: int
    vm_exits: int
    entries_invalidated: int
    entries_flushed: int


def single_remap_cost(config: SystemConfig) -> AnatomyRow:
    """Measure one fully-shared page remap on ``config``'s machine."""
    num_cpus = config.num_cpus
    protocol = make_protocol(config.protocol)
    stats = MachineStats(num_cpus)
    cotag_scheme = (
        CoTagScheme(config.translation.cotag_bytes) if protocol.uses_cotags else None
    )
    chip = Chip(
        config,
        stats,
        cotag_scheme=cotag_scheme,
        track_translation_sharers=protocol.tracks_translation_sharers,
    )
    protocol.bind(chip, stats, config.costs)
    hypervisor = KvmHypervisor(chip, config, protocol, stats)
    vm = hypervisor.create_vm(vcpu_pcpus=list(range(num_cpus)))
    process = vm.create_process()

    # Every CPU touches the same page so all of them cache its translation.
    gvp = 0x40000
    gpp = process.ensure_guest_mapping(gvp)
    hypervisor.handle_nested_fault(process, gpp, cpu=0)
    for cpu in range(num_cpus):
        outcome = chip.core(cpu).translate(process, gvp)
        assert outcome.fault is None

    resident_before = chip.total_resident_translations()
    leaf = process.nested_page_table.lookup(gpp)
    event = RemapEvent(
        initiator_cpu=0,
        target_cpus=vm.target_cpus,
        gpp=gpp,
        old_spp=leaf.pfn,
        new_spp=None,
        pte_address=leaf.address,
        vm_id=vm.vm_id,
    )
    cost = protocol.on_nested_remap(event)
    resident_after = chip.total_resident_translations()

    events = stats.events
    return AnatomyRow(
        protocol=config.protocol,
        initiator_cycles=cost.initiator_cycles,
        total_target_cycles=sum(cost.target_cycles.values()),
        max_target_cycles=max(cost.target_cycles.values(), default=0),
        ipis=events.get("coherence.ipis", 0),
        vm_exits=events.get("coherence.vm_exits", 0),
        entries_invalidated=resident_before - resident_after,
        entries_flushed=events.get("coherence.flushed_entries", 0)
        + events.get("unitd.flushed_entries", 0),
    )
