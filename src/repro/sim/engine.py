"""Execution engines: the reference loop, the fast path, and the SoA core.

The simulator supports three interchangeable execution engines:

* the **reference engine** walks every reference through the layered
  component APIs (:meth:`repro.cpu.core.CpuCore.translate`, the cache
  hierarchy, the hypervisor access hooks).  It is the specification:
  small, obvious, and the thing every other engine is measured against;

* the **fast engine** executes the same simulation through a batch
  executor that retires steady-state references in bulk.  When a
  reference hits the L1 TLB and its data line is resident in the L1
  cache -- the overwhelmingly common case the paper calls steady state
  -- nothing architecturally interesting happens, so the fast path
  retires it inline with precomputed hit costs and accumulates
  statistics as per-chunk array sums instead of per-reference attribute
  updates.  The moment any slow-path condition holds (TLB miss, data
  miss, pending defragmentation remap, a fault) the executor falls back
  to the exact reference code path for that reference;

* the **soa engine** (struct-of-arrays) goes one representation step
  further: it mirrors the hot lookup state -- L1 TLB entries and L1
  data tags -- into flat power-of-2 numpy tables, scans each stream's
  upcoming references through a vectorized (optionally compiled, see
  :mod:`repro.sim.soa_kernel`) steady-prefix kernel, and retires whole
  multi-round windows of steady references with array sums and
  batched LRU updates.  The first slow-path condition ends the window
  and the engine drops to the fast engine's exact per-chunk path, so
  every architecturally interesting reference still runs the reference
  semantics.

The fast and soa engines additionally install flattened implementations of the
hottest component paths on the machine it runs -- the cache hierarchy
access path and co-tag/line-indexed translation structure invalidation.
These are pure implementation swaps: they mutate the *same* state
objects in the *same* order and count the *same* statistics, so results
are **bit-identical** to the reference engine.  That property is load
bearing (``CACHE_SCHEMA_VERSION`` is not bumped by engine selection)
and is enforced by ``tests/test_fastpath.py``, the golden snapshots,
and the ``REPRO_VALIDATE_FASTPATH=1`` run-both-and-diff mode.

Engine selection: ``Simulator(config, engine=...)`` explicitly,
``REPRO_SIM_ENGINE`` globally, default :data:`ENGINE_FAST`.  Validation
mode (``validate=True``) always uses the reference engine, since the
per-reference cross-checks are what that mode is for.
"""

from __future__ import annotations

import gc
import os
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.coherence.directory import DirectoryEntry, SharerKind
from repro.cpu.chip import _CacheListener
from repro.mem.cache import CacheLine
from repro.mem.hierarchy import AccessResult, CacheHierarchy
from repro.sim.config import PLACEMENT_PAGED
from repro.translation.address import (
    CACHE_LINE_SIZE,
    LEVEL_INDEX_BITS,
    PAGE_SHIFT,
    PAGE_SIZE,
)
from repro.translation.page_table import GuestPageTable, NestedPageTable
from repro.translation.structures import (
    MMUCache,
    NestedTLB,
    TLB,
    TranslationEntry,
)
from repro.translation.walker import PageTableWalker, WalkResult
from repro.virt.paging import ClockPolicy, FifoPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.sim.simulator import SimulationResult, Simulator
    from repro.workloads.base import WorkloadTrace

#: Engine names.  ``ENGINE_DEFAULT`` is what ``engine=None`` resolves to
#: (overridable per process with ``REPRO_SIM_ENGINE``).
ENGINE_REFERENCE = "reference"
ENGINE_FAST = "fast"
ENGINE_SOA = "soa"
ENGINES = (ENGINE_REFERENCE, ENGINE_FAST, ENGINE_SOA)
ENGINE_DEFAULT = ENGINE_FAST

#: Environment variable selecting the engine for simulators that were
#: not given one explicitly (``reference``, ``fast`` or ``soa``).
ENGINE_ENV_VAR = "REPRO_SIM_ENGINE"

#: When set, :func:`repro.api.session.execute_request` runs every
#: non-reference trace request through the reference engine as well (and
#: for ``soa`` also through ``fast``) and raises
#: :class:`FastPathMismatchError` unless the results are bit-identical.
#: Valid values: ``1``/``true`` (on), ``0``/``false``/unset (off);
#: anything else is a loud error, not a silent boolean guess.
VALIDATE_ENV_VAR = "REPRO_VALIDATE_FASTPATH"

_VALIDATE_ON = ("1", "true")
_VALIDATE_OFF = ("", "0", "false")


#: radix-level index width, hoisted for the walker's inline prefix math.
_LEVEL_BITS = LEVEL_INDEX_BITS


class FastPathMismatchError(AssertionError):
    """Fast and reference engines disagreed on a supposedly equal run."""


def resolve_engine(engine: Optional[str], validate: bool = False) -> str:
    """Resolve an engine request to a concrete engine name.

    ``None`` (or ``""``) consults ``REPRO_SIM_ENGINE`` and falls back to
    :data:`ENGINE_DEFAULT`.  Validation mode always resolves to the
    reference engine.
    """
    source = ""
    if not engine:
        engine = os.environ.get(ENGINE_ENV_VAR) or ENGINE_DEFAULT
        source = f" (from {ENGINE_ENV_VAR})"
    if engine not in ENGINES:
        known = ", ".join(ENGINES)
        raise ValueError(
            f"unknown simulation engine {engine!r}{source}; known: {known}"
        )
    if validate:
        return ENGINE_REFERENCE
    return engine


def validate_fastpath_requested() -> bool:
    """True when ``REPRO_VALIDATE_FASTPATH`` asks for run-both-and-diff.

    The flag is parsed strictly: a value that is neither clearly on nor
    clearly off (say, ``REPRO_VALIDATE_FASTPATH=ture``) raises instead
    of silently disabling the validation the caller asked for.
    """
    value = os.environ.get(VALIDATE_ENV_VAR, "")
    if value in _VALIDATE_OFF:
        return False
    if value in _VALIDATE_ON:
        return True
    on = ", ".join(_VALIDATE_ON)
    off = ", ".join(repr(v) for v in _VALIDATE_OFF if v)
    raise ValueError(
        f"invalid {VALIDATE_ENV_VAR} value {value!r}; "
        f"valid values: {on} (on) or {off} or unset (off)"
    )


# ----------------------------------------------------------------------
# flattened component implementations (installed on fast-engine machines)
# ----------------------------------------------------------------------
class FastCacheHierarchy(CacheHierarchy):
    """Flattened :class:`CacheHierarchy` with identical semantics.

    ``access_cycles`` (installed per instance by
    :func:`install_fast_paths`, built by :func:`_make_access_cycles`)
    performs the same probes, fills, statistics updates and directory
    notifications as the reference :meth:`CacheHierarchy.access` but in
    one closure with every stable object hoisted into cells.  Directory
    bookkeeping for the common case (known line, no capacity pressure,
    coarse-grained lazy directory) is inlined; every uncommon case falls
    back to the reference chip methods so back-invalidations,
    fine-grained tracking and eager sharer updates behave identically.
    """

    #: set by :func:`install_fast_paths`.
    _fast_chip: Any = None
    _fast_inline_dir: bool = False

    def access(
        self, spa: int, is_write: bool = False, is_page_table: bool = False
    ) -> AccessResult:
        """Reference-compatible wrapper returning an :class:`AccessResult`."""
        return AccessResult(
            cycles=self.access_cycles(spa, is_write, is_page_table), level="fast"
        )

    def _notify_eviction(self, line: int, is_page_table: bool) -> None:
        """Mirror a line leaving the private caches in the directory."""
        if self._fast_inline_dir:
            directory = self._fast_chip.directory
            entry = directory._entries.get(line)
            if entry is None:
                return
            if entry.is_nested_pt or entry.is_guest_pt:
                # lazy page-table sharer updates: leave the sharer list.
                return
            entry.sharers.discard(self.cpu_id)
            if not entry.sharers:
                del directory._entries[line]
            return
        self.listener.on_private_eviction(self.cpu_id, line, is_page_table)


def _make_access_cycles(hierarchy: FastCacheHierarchy):
    """Build the hierarchy's flattened access function.

    Exact reference semantics (:meth:`CacheHierarchy.access` plus
    :meth:`Cache.access`/:meth:`Cache.fill` plus the chip's directory
    listener) with all stable objects -- caches, set lists, latencies,
    geometry, the directory -- bound as closure cells.  Statistics
    objects are fetched per call: warmup reset replaces them.
    """
    l1, l2, llc = hierarchy.l1, hierarchy.l2, hierarchy.llc
    s1_list, s2_list, s3_list = l1._sets, l2._sets, llc._sets
    n1, n2, n3 = l1.num_sets, l2.num_sets, llc.num_sets
    a1, a2, a3 = l1.associativity, l2.associativity, llc.associativity
    lat1 = l1.latency
    lat12 = lat1 + l2.latency
    lat123 = lat12 + llc.latency
    line_size = l1.line_size
    line_mask = ~(line_size - 1)
    tier_of = hierarchy.memory.tier_of
    listener = hierarchy.listener
    notify_eviction = hierarchy._notify_eviction
    cpu_id = hierarchy.cpu_id
    inline_dir = hierarchy._fast_inline_dir and listener is not None
    directory = hierarchy._fast_chip.directory if inline_dir else None

    def fill_private(cache, cset, other_list, other_sets, line, is_write,
                     is_page_table, associativity):
        """Insert ``line`` into a private level that just missed it."""
        stats = cache.stats
        stats.fills += 1
        if len(cset) >= associativity:
            _, victim = cset.popitem(last=False)
            stats.evictions += 1
            if victim.dirty:
                stats.writebacks += 1
            victim_address = victim.address
            victim_page_table = victim.is_page_table
            # recycle the victim object (identity is unobservable)
            victim.address = line
            victim.dirty = is_write
            victim.is_page_table = is_page_table
            cset[line] = victim
            if (
                victim_address
                not in other_list[(victim_address // line_size) % other_sets]
                and listener is not None
            ):
                notify_eviction(victim_address, victim_page_table)
        else:
            cset[line] = CacheLine(
                address=line, dirty=is_write, is_page_table=is_page_table
            )

    def access_cycles(
        spa: int, is_write: bool = False, is_page_table: bool = False
    ) -> int:
        """Access ``spa``; return cycles (flattened reference semantics)."""
        line = spa & line_mask
        set_number = line // line_size
        s1 = s1_list[set_number % n1]
        st = l1.stats
        st.accesses += 1
        cl = s1.get(line)
        if cl is not None:
            st.hits += 1
            s1.move_to_end(line)
            if is_write:
                cl.dirty = True
            return lat1
        st.misses += 1
        s2 = s2_list[set_number % n2]
        st = l2.stats
        st.accesses += 1
        cl = s2.get(line)
        if cl is not None:
            st.hits += 1
            s2.move_to_end(line)
            if is_write:
                cl.dirty = True
            fill_private(l1, s1, s2_list, n2, line, is_write, is_page_table, a1)
            return lat12
        st.misses += 1
        cycles = lat123
        s3 = s3_list[set_number % n3]
        st = llc.stats
        st.accesses += 1
        cl = s3.get(line)
        if cl is not None:
            st.hits += 1
            s3.move_to_end(line)
            if is_write:
                cl.dirty = True
        else:
            st.misses += 1
            tier = tier_of(spa >> PAGE_SHIFT)
            tier.accesses += 1
            cycles += tier.access_latency
            st.fills += 1
            if len(s3) >= a3:
                _, victim = s3.popitem(last=False)
                st.evictions += 1
                if victim.dirty:
                    st.writebacks += 1
                # recycle the victim object (identity is unobservable)
                victim.address = line
                victim.dirty = is_write
                victim.is_page_table = is_page_table
                s3[line] = victim
            else:
                s3[line] = CacheLine(
                    address=line, dirty=is_write, is_page_table=is_page_table
                )
        # The line just missed both private levels, so it is newly
        # resident: fill L2 then L1, then report the private fill
        # (reference ``_fill_private_levels`` order).
        fill_private(l2, s2, s1_list, n1, line, is_write, is_page_table, a2)
        fill_private(l1, s1, s2_list, n2, line, is_write, is_page_table, a1)
        # newly-resident private line -> directory (reference
        # ``listener.on_private_fill``), common case inlined.
        if listener is not None:
            if inline_dir:
                entries = directory._entries
                entry = entries.get(line)
                if entry is not None:
                    directory.stats.lookups += 1
                    entries.move_to_end(line)
                    entry.sharers.add(cpu_id)
                    return cycles
                capacity = directory.capacity
                if capacity is None or len(entries) < capacity:
                    directory.stats.lookups += 1
                    directory.stats.allocations += 1
                    entries[line] = DirectoryEntry(line=line, sharers={cpu_id})
                    return cycles
            # capacity pressure / fine-grained directory: reference
            # path (handles back-invalidations).
            listener.on_private_fill(cpu_id, line, is_page_table)
        return cycles

    return access_cycles


class _IndexedInvalidationMixin:
    """Co-tag / page-table-line indexes over a translation structure.

    The reference :meth:`TranslationStructure.invalidate_matching_cotag`
    scans every resident entry (the hardware CAM search costs a counter
    tick, the Python scan costs real time on every remap).  The fast
    engine maintains reverse indexes so invalidations touch only the
    matching keys, leaving entry order, statistics and results
    unchanged.
    """

    def _fast_init_index(self) -> None:
        self._by_cotag: dict[int, set] = {}
        self._by_line: dict[int, set] = {}
        for key, entry in self._entries.items():
            self._index_add(key, entry)

    def _index_add(self, key, entry) -> None:
        if entry.cotag is not None:
            self._by_cotag.setdefault(entry.cotag, set()).add(key)
        if entry.pt_line is not None:
            self._by_line.setdefault(entry.pt_line, set()).add(key)

    def _index_discard(self, key, entry) -> None:
        if entry.cotag is not None:
            keys = self._by_cotag.get(entry.cotag)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_cotag[entry.cotag]
        if entry.pt_line is not None:
            keys = self._by_line.get(entry.pt_line)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_line[entry.pt_line]

    # -- overrides maintaining the indexes ------------------------------
    def insert(self, key, value, cotag=None, pt_line=None):
        self.stats.insertions += 1
        entries = self._entries
        entry = entries.get(key)
        if entry is not None:
            if entry.cotag != cotag or entry.pt_line != pt_line:
                self._index_discard(key, entry)
                entry.cotag = cotag
                entry.pt_line = pt_line
                self._index_add(key, entry)
            entry.value = value
            entries.move_to_end(key)
            return None
        evicted = None
        if len(entries) >= self.capacity:
            evicted_key, evicted = entries.popitem(last=False)
            self.stats.evictions += 1
            self._index_discard(evicted_key, evicted)
        entry = TranslationEntry(key=key, value=value, cotag=cotag, pt_line=pt_line)
        entries[key] = entry
        self._index_add(key, entry)
        return evicted

    def invalidate_key(self, key) -> bool:
        entry = self._entries.get(key)
        if entry is None:
            return False
        self._index_discard(key, entry)
        del self._entries[key]
        self.stats.invalidations += 1
        return True

    def invalidate_matching_cotag(self, cotag: int) -> int:
        self.stats.cotag_searches += 1
        keys = self._by_cotag.pop(cotag, None)
        if not keys:
            return 0
        entries = self._entries
        for key in keys:
            entry = entries.pop(key)
            if entry.pt_line is not None:
                line_keys = self._by_line.get(entry.pt_line)
                if line_keys is not None:
                    line_keys.discard(key)
                    if not line_keys:
                        del self._by_line[entry.pt_line]
        self.stats.invalidations += len(keys)
        return len(keys)

    def invalidate_matching_line(self, pt_line: int) -> int:
        keys = self._by_line.pop(pt_line, None)
        if not keys:
            return 0
        entries = self._entries
        for key in keys:
            entry = entries.pop(key)
            if entry.cotag is not None:
                cotag_keys = self._by_cotag.get(entry.cotag)
                if cotag_keys is not None:
                    cotag_keys.discard(key)
                    if not cotag_keys:
                        del self._by_cotag[entry.cotag]
        self.stats.invalidations += len(keys)
        return len(keys)

    def flush(self) -> int:
        dropped = len(self._entries)
        self._entries.clear()
        self._by_cotag.clear()
        self._by_line.clear()
        self.stats.flushes += 1
        self.stats.flushed_entries += dropped
        return dropped


class FastTLB(_IndexedInvalidationMixin, TLB):
    """Indexed-invalidation TLB (fast engine)."""


class FastNestedTLB(_IndexedInvalidationMixin, NestedTLB):
    """Indexed-invalidation nested TLB (fast engine)."""


class FastMMUCache(_IndexedInvalidationMixin, MMUCache):
    """Indexed-invalidation MMU cache (fast engine)."""


_FAST_STRUCTURE_CLASSES = {
    TLB: FastTLB,
    NestedTLB: FastNestedTLB,
    MMUCache: FastMMUCache,
}


class _MemoizedTableMixin:
    """Walk-path / leaf-lookup memoization for a radix page table.

    ``walk_path`` and ``lookup`` are pure functions of the table
    *structure* (the entry objects they return are shared, so bit
    mutation like accessed/dirty flags needs no invalidation, and
    ``remap`` changes an entry in place without touching structure).
    Only ``map`` and ``unmap`` change structure:

    * ``unmap`` removes one leaf -- drop that page's memo entries;
    * ``map`` adds one leaf and possibly intermediate tables that
      lengthen previously-*short* (faulting) walk paths -- drop that
      page's entries plus every memoized short path.
    """

    def _fast_init_memo(self) -> None:
        self._walk_memo: dict[int, list] = {}
        self._leaf_memo: dict[int, Any] = {}
        self._short_keys: set[int] = set()

    def map(self, vpn: int, pfn: int):
        self._leaf_memo.pop(vpn, None)
        self._walk_memo.pop(vpn, None)
        if self._short_keys:
            walk_memo = self._walk_memo
            for key in self._short_keys:
                walk_memo.pop(key, None)
            self._short_keys.clear()
        return super().map(vpn, pfn)

    def unmap(self, vpn: int):
        self._leaf_memo.pop(vpn, None)
        self._walk_memo.pop(vpn, None)
        return super().unmap(vpn)

    def lookup(self, vpn: int):
        memo = self._leaf_memo
        entry = memo.get(vpn, _MISSING)
        if entry is _MISSING:
            entry = super().lookup(vpn)
            memo[vpn] = entry
        return entry

    def walk_path(self, vpn: int) -> list:
        memo = self._walk_memo
        path = memo.get(vpn)
        if path is None:
            path = super().walk_path(vpn)
            memo[vpn] = path
            if len(path) < 4:
                self._short_keys.add(vpn)
        return path


_MISSING = object()


class FastGuestPageTable(_MemoizedTableMixin, GuestPageTable):
    """Memoizing guest page table (fast engine)."""


class FastNestedPageTable(_MemoizedTableMixin, NestedPageTable):
    """Memoizing nested page table (fast engine)."""


class FastPageTableWalker(PageTableWalker):
    """Flattened two-dimensional walker (identical semantics).

    The reference walker routes every page-table reference through
    :meth:`CacheHierarchy.access` and allocates one result object per
    nested translation; at up to 24 page-table references per walk that
    is the single hottest non-data path in the simulator.  This variant
    calls the flattened :meth:`FastCacheHierarchy.access_cycles`
    directly and passes nested translations as tuples, keeping every
    statistic, fill, co-tag and listener notification identical.
    """

    #: set by :func:`install_fast_paths`.
    _fast_dir: Any = None
    _fast_track: bool = True
    _fast_cpu: int = 0

    def walk(self, ctx, gvp: int, is_write: bool = False) -> WalkResult:
        stats = self.stats
        stats.walks += 1
        result = WalkResult()

        # -- consult the MMU cache (reference _consult_mmu_cache) ------
        mmu = self.mmu_cache
        mmu_entries = mmu._entries
        mmu_stats = mmu.stats
        vm_id = ctx.vm_id
        start_level = 4
        table_spp = None
        for level in (1, 2, 3):
            key = (vm_id, level, gvp >> (level * _LEVEL_BITS))
            mmu_stats.lookups += 1
            entry = mmu_entries.get(key)
            if entry is None:
                mmu_stats.misses += 1
                continue
            mmu_entries.move_to_end(key)
            mmu_stats.hits += 1
            stats.mmu_cache_hits += 1
            start_level = level
            table_spp = entry.value
            break
        result.cycles += 1
        if table_spp is None:
            spp, ncycles, nrefs, leaf, fault = self._translate_gpp_fast(
                ctx, ctx.guest_root_gpp
            )
            result.cycles += ncycles
            result.memory_references += nrefs
            if fault:
                return self._fault(result, "nested")
            table_spp = spp

        guest_path = ctx.guest_page_table.walk_path(gvp)
        if len(guest_path) < 4:
            return self._fault(result, "guest")
        hierarchy = self.hierarchy
        access_cycles = hierarchy.access_cycles
        l1 = hierarchy.l1
        line_size = l1.line_size
        l1_sets = l1._sets
        l1_num_sets = l1.num_sets
        l1_latency = l1.latency
        line_mask = ~(line_size - 1)
        offset_mask = PAGE_SIZE - 1
        for level in range(start_level, 0, -1):
            guest_entry = guest_path[4 - level]
            entry_spa = (table_spp << PAGE_SHIFT) | (
                guest_entry.address & offset_mask
            )
            # page-table read; L1 hits inlined (reads never set dirty)
            line = entry_spa & line_mask
            line_set = l1_sets[(line // line_size) % l1_num_sets]
            if line in line_set:
                l1_stats = l1.stats
                l1_stats.accesses += 1
                l1_stats.hits += 1
                line_set.move_to_end(line)
                result.cycles += l1_latency
            else:
                result.cycles += access_cycles(entry_spa, False, True)
            result.memory_references += 1
            if not guest_entry.accessed:
                guest_entry.accessed = True
                self._notify_pt_fill(SharerKind.CACHE, line, False, True)
            next_gpp = guest_entry.pfn

            spp, ncycles, nrefs, leaf, fault = self._translate_gpp_fast(
                ctx, next_gpp
            )
            result.cycles += ncycles
            result.memory_references += nrefs
            if fault:
                return self._fault(result, "nested")

            if level > 1:
                table_spp = spp
                # reference _fill_mmu_cache
                cotag = None
                pt_line = None
                if leaf is not None:
                    pt_line = leaf.address & line_mask
                    if self.cotag_scheme is not None:
                        cotag = self.cotag_scheme.cotag_of(leaf.address)
                key = (vm_id, level - 1, gvp >> ((level - 1) * _LEVEL_BITS))
                mmu.insert(key, spp, cotag=cotag, pt_line=pt_line)
                if pt_line is not None:
                    self._notify_pt_fill(SharerKind.MMU_CACHE, pt_line, True, False)
            else:
                result.gpp = next_gpp
                result.spp = spp
                if is_write:
                    if leaf is not None:
                        leaf.dirty = True
                    guest_entry.dirty = True
                # reference _fill_tlbs
                cotag = None
                pt_line = None
                if leaf is not None:
                    result.nested_leaf_address = leaf.address
                    pt_line = leaf.address & line_mask
                    if self.cotag_scheme is not None:
                        cotag = self.cotag_scheme.cotag_of(leaf.address)
                result.cotag = cotag
                key = (vm_id, gvp)
                self.tlb_l1.insert(key, spp, cotag=cotag, pt_line=pt_line)
                self.tlb_l2.insert(key, spp, cotag=cotag, pt_line=pt_line)
                if pt_line is not None:
                    self._notify_pt_fill(SharerKind.TLB, pt_line, True, False)

        stats.cycles += result.cycles
        stats.memory_references += result.memory_references
        return result

    def _translate_gpp_fast(self, ctx, gpp: int):
        """GPP -> SPP via nTLB or nested walk; returns a plain tuple.

        Tuple layout: ``(spp, cycles, references, leaf, fault)`` --
        the reference ``_NestedTranslation`` without the allocation.
        """
        ntlb = self.ntlb
        ntlb_stats = ntlb.stats
        ntlb_stats.lookups += 1
        key = (ctx.vm_id, gpp)
        hit = ntlb._entries.get(key)
        if hit is not None:
            ntlb._entries.move_to_end(key)
            ntlb_stats.hits += 1
            self.stats.ntlb_hits += 1
            return hit.value, 1, 0, ctx.nested_page_table.lookup(gpp), False
        ntlb_stats.misses += 1

        self.stats.nested_walks += 1
        path = ctx.nested_page_table.walk_path(gpp)
        cycles = 0
        references = 0
        hierarchy = self.hierarchy
        access_cycles = hierarchy.access_cycles
        l1 = hierarchy.l1
        line_size = l1.line_size
        l1_sets = l1._sets
        l1_num_sets = l1.num_sets
        l1_latency = l1.latency
        line_mask = ~(line_size - 1)
        for entry in path:
            address = entry.address
            line = address & line_mask
            line_set = l1_sets[(line // line_size) % l1_num_sets]
            if line in line_set:
                l1_stats = l1.stats
                l1_stats.accesses += 1
                l1_stats.hits += 1
                line_set.move_to_end(line)
                cycles += l1_latency
            else:
                cycles += access_cycles(address, False, True)
            references += 1
            if not entry.accessed:
                entry.accessed = True
                self._notify_pt_fill(SharerKind.CACHE, line, True, False)
        if len(path) < 4:
            return 0, cycles, references, None, True
        leaf = path[-1]
        cotag = (
            self.cotag_scheme.cotag_of(leaf.address)
            if self.cotag_scheme is not None
            else None
        )
        pt_line = leaf.address & line_mask
        ntlb.insert(key, leaf.pfn, cotag=cotag, pt_line=pt_line)
        self._notify_pt_fill(SharerKind.NTLB, pt_line, True, False)
        return leaf.pfn, cycles, references, leaf, False

    def _notify_pt_fill(
        self, kind, line: int, nested: bool, guest: bool
    ) -> None:
        """Inline of the chip's walker fill listener (common case).

        Replicates ``Chip._make_fill_listener``: CACHE-kind messages mark
        the line's nPT/gPT directory bits; translation-structure fills
        additionally record the CPU as a sharer when the protocol tracks
        translation sharers.  Capacity pressure and fine-grained
        directories fall back to the reference listener (which handles
        back-invalidations).
        """
        directory = self._fast_dir
        if directory is not None:
            entries = directory._entries
            entry = entries.get(line)
            if entry is None:
                capacity = directory.capacity
                if capacity is None or len(entries) < capacity:
                    directory.stats.lookups += 1
                    directory.stats.allocations += 1
                    entry = DirectoryEntry(line=line)
                    entries[line] = entry
                else:
                    entry = None
            else:
                directory.stats.lookups += 1
                entries.move_to_end(line)
            if entry is not None:
                if (
                    kind is not SharerKind.CACHE
                    and self._fast_track
                ):
                    entry.sharers.add(self._fast_cpu)
                if nested and not entry.is_nested_pt:
                    entry.is_nested_pt = True
                if guest and not entry.is_guest_pt:
                    entry.is_guest_pt = True
                return
        if self.fill_listener is not None:
            self.fill_listener(kind, line, nested, guest)


def install_fast_paths(chip) -> bool:
    """Swap a chip's hot components for their fast implementations.

    The swap is pure implementation: each component keeps its state and
    statistics objects, only the method implementations change.  Only
    simulator-built machines (whose hierarchies use the chip's own
    listener) are eligible; returns False when any core could not be
    swapped, in which case the caller should stay on the reference
    engine.
    """
    directory = chip.directory
    inline_dir = not directory.fine_grained and directory.lazy_pt_sharer_updates
    # eligibility is checked read-only for every core BEFORE any class
    # swap, so an ineligible machine is left fully untouched (a partial
    # swap would make the reference-engine fallback run fast-path code)
    for core in chip.cores:
        hierarchy = core.hierarchy
        if not (
            hierarchy.l1.line_size
            == hierarchy.l2.line_size
            == hierarchy.llc.line_size
            == CACHE_LINE_SIZE
        ):
            return False  # pragma: no cover - simulator caches share a line size
        if hierarchy.listener is not None and not isinstance(
            hierarchy.listener, _CacheListener
        ):
            return False  # pragma: no cover - foreign listener, stay on reference
    for core in chip.cores:
        hierarchy = core.hierarchy
        hierarchy.__class__ = FastCacheHierarchy
        hierarchy._fast_chip = chip
        hierarchy._fast_inline_dir = inline_dir
        hierarchy.access_cycles = _make_access_cycles(hierarchy)
        if type(core.walker) is PageTableWalker:
            walker = core.walker
            walker.__class__ = FastPageTableWalker
            walker._fast_dir = None if directory.fine_grained else directory
            walker._fast_track = chip.track_translation_sharers
            walker._fast_cpu = core.cpu_id
        for structure in core.translation_structures():
            fast_cls = _FAST_STRUCTURE_CLASSES.get(type(structure))
            if fast_cls is not None:
                structure.__class__ = fast_cls
                structure._fast_init_index()
    return True


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------
class ReferenceExecutor:
    """Drives the reference per-reference loop (the specification)."""

    def __init__(self, simulator: "Simulator", trace, contexts) -> None:
        self.simulator = simulator
        self.trace = trace
        self.contexts = contexts

    def execute_span(self, starts, ends, on_round=None) -> int:
        """Execute streams between per-stream ``starts`` and ``ends``."""
        return self.simulator._execute_span(
            self.trace, self.contexts, starts, ends, on_round
        )


class FastPathExecutor:
    """Batch executor retiring steady-state references in bulk.

    Keeps the reference engine's exact round-robin interleaving (chunks
    of ``_INTERLEAVE_CHUNK`` references per vCPU) and falls back to
    :meth:`Simulator._execute_reference` for any reference that is not
    fully steady-state.
    """

    def __init__(self, simulator: "Simulator", trace, contexts) -> None:
        self.simulator = simulator
        self.trace = trace
        self.contexts = contexts
        # One bulk conversion instead of two numpy-scalar conversions
        # per reference in the inner loop.
        self._gvas = [stream.tolist() for stream in trace.streams]
        self._writes = [flags.tolist() for flags in trace.writes]
        # Stream-to-pCPU placement (identity for legacy traces) and the
        # per-VM attribution map, mirroring Simulator._execute_span
        # exactly.
        self._pcpus = trace.pcpu_of_vcpu or list(range(trace.num_vcpus))
        self._vm_of_stream = (
            trace.vm_of_vcpu if simulator.stats.vms else None
        )
        # Memoize the page tables the traced contexts walk.
        installed: set[int] = set()
        for ctx in contexts:
            for table, fast_cls in (
                (ctx.guest_page_table, FastGuestPageTable),
                (ctx.nested_page_table, FastNestedPageTable),
            ):
                if id(table) in installed:
                    continue
                installed.add(id(table))
                if type(table) in (GuestPageTable, NestedPageTable):
                    table.__class__ = fast_cls
                    table._fast_init_memo()
        config = simulator.config
        self._paged = config.placement == PLACEMENT_PAGED
        self._defrag = config.paging.defrag_interval > 0
        policy = simulator.hypervisor.policy
        if isinstance(policy, ClockPolicy):
            self._policy_kind = "clock"
        elif isinstance(policy, FifoPolicy):
            self._policy_kind = "fifo"
        else:  # pragma: no cover - no third policy exists today
            self._policy_kind = "other"

    def execute_span(self, starts, ends, on_round=None) -> int:
        """Execute streams between per-stream ``starts`` and ``ends``.

        Cyclic garbage collection is suspended for the duration: the hot
        path allocates no reference cycles (cache lines, translation
        entries and directory entries are acyclic), so generational GC
        sweeps are pure overhead at this allocation rate.

        ``on_round`` mirrors the reference engine's hook: it fires after
        every full round-robin round with the references executed so far
        in this span, which is a state both engines reach bit-exactly.
        """
        from repro.sim.simulator import _INTERLEAVE_CHUNK

        trace = self.trace
        positions = list(starts)
        executed = 0
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            active = True
            while active:
                active = False
                for vcpu in range(trace.num_vcpus):
                    pos = positions[vcpu]
                    end = min(pos + _INTERLEAVE_CHUNK, ends[vcpu])
                    if pos >= end:
                        continue
                    active = True
                    executed += self._run_chunk(vcpu, pos, end)
                    positions[vcpu] = end
                if active and on_round is not None:
                    on_round(executed)
        finally:
            if gc_was_enabled:
                gc.enable()
        return executed

    def _run_chunk(self, vcpu: int, pos: int, end: int) -> int:
        """Retire one vCPU's chunk ``[pos, end)``; return references run."""
        sim = self.simulator
        ctx = self.contexts[vcpu]
        gvas = self._gvas[vcpu]
        writes = self._writes[vcpu]
        cpu = self._pcpus[vcpu]
        core = sim.chip.cores[cpu]
        stats = sim.stats
        cpu_stats = stats.cpus[cpu]
        vm_stats = None
        if self._vm_of_stream is not None:
            # chunk boundary: hand the pCPU to this stream's guest
            # (reference-engine attribution order)
            stats.vm_of_cpu[cpu] = self._vm_of_stream[vcpu]
            vm_stats = stats.vms[self._vm_of_stream[vcpu]]
        costs = sim.config.costs
        l1_tlb_latency = costs.l1_tlb_latency
        l2_tlb_latency = costs.l2_tlb_latency

        tlb1 = core.tlb_l1
        tlb1_entries = tlb1._entries
        tlb1_move = tlb1_entries.move_to_end
        tlb2_entries = core.tlb_l2._entries
        l1 = core.l1
        l1_sets = l1._sets
        l1_latency = l1.latency
        l1_line_size = l1.line_size
        l1_num_sets = l1.num_sets
        access_cycles = core.hierarchy.access_cycles
        slow_reference = self._slow_reference
        vm_id = ctx.vm_id

        hypervisor = sim.hypervisor
        paged = self._paged
        defrag = self._defrag
        on_data_access = hypervisor.on_data_access
        resident_get = hypervisor._resident_by_spp.get
        policy_kind = self._policy_kind
        clock_pages = (
            hypervisor.policy._pages if policy_kind == "clock" else None
        )
        policy_on_access = hypervisor.policy.on_access

        warm_cost = l1_tlb_latency + l1_latency
        line_mask = ~(l1_line_size - 1)
        offset_mask = PAGE_SIZE - 1

        # per-chunk accumulators, flushed once at the end
        tlb1_lookups = tlb1_hits = tlb1_misses = 0
        tlb2_lookups = tlb2_hits = 0
        l1_accesses = l1_hits = 0
        warm_refs = 0
        extra_cycles = 0
        instructions = 0
        # steady-state chain: last reference was fully warm on this page
        prev_gvp = -1
        prev_spp = 0

        for gva, is_write in zip(gvas[pos:end], writes[pos:end]):
            gvp = gva >> PAGE_SHIFT
            if gvp == prev_gvp:
                # Same page as the previous fully-warm reference: its
                # TLB entry is already most-recently-used, so the
                # reference lookup is pure statistics.
                tlb1_lookups += 1
                tlb1_hits += 1
                spp = prev_spp
                base_cycles = l1_tlb_latency
            else:
                prev_gvp = -1
                key = (vm_id, gvp)
                entry = tlb1_entries.get(key)
                if entry is not None:
                    tlb1_move(key)
                    tlb1_lookups += 1
                    tlb1_hits += 1
                    spp = entry.value
                    base_cycles = l1_tlb_latency
                else:
                    entry = tlb2_entries.get(key)
                    if entry is None:
                        # TLB miss: full reference path (walk / faults).
                        slow_reference(cpu, ctx, gva, is_write)
                        continue
                    tlb2_entries.move_to_end(key)
                    tlb1_lookups += 1
                    tlb1_misses += 1
                    tlb2_lookups += 1
                    tlb2_hits += 1
                    tlb1.insert(
                        key, entry.value, cotag=entry.cotag, pt_line=entry.pt_line
                    )
                    spp = entry.value
                    base_cycles = l1_tlb_latency + l2_tlb_latency
            instructions += 1
            if paged:
                if defrag:
                    if on_data_access(spp, cpu):
                        stats.count("paging.defrag_access_stalls")
                    prev_gvp = -1
                elif policy_kind == "clock":
                    resident_key = resident_get(spp)
                    if resident_key is not None and resident_key in clock_pages:
                        clock_pages[resident_key] = True
                elif policy_kind == "other":  # pragma: no cover
                    resident_key = resident_get(spp)
                    if resident_key is not None:
                        policy_on_access(resident_key)
                # fifo: on_access is a no-op, nothing to record
            spa = (spp << PAGE_SHIFT) | (gva & offset_mask)
            line = spa & line_mask
            line_set = l1_sets[(line // l1_line_size) % l1_num_sets]
            cache_line = line_set.get(line)
            if cache_line is not None:
                line_set.move_to_end(line)
                if is_write:
                    cache_line.dirty = True
                l1_accesses += 1
                l1_hits += 1
                if base_cycles == l1_tlb_latency:
                    warm_refs += 1
                    if not defrag:
                        prev_gvp = gvp
                        prev_spp = spp
                else:
                    extra_cycles += base_cycles + l1_latency
                continue
            # L1 data miss: the flattened hierarchy handles the rest
            # (it may back-invalidate translations, so break the chain).
            prev_gvp = -1
            extra_cycles += base_cycles + access_cycles(spa, is_write)

        if instructions:
            cpu_stats.instructions += instructions
            cpu_stats.busy_cycles += warm_refs * warm_cost + extra_cycles
            if vm_stats is not None:
                vm_stats.instructions += instructions
                vm_stats.busy_cycles += warm_refs * warm_cost + extra_cycles
            tlb1_stats = tlb1.stats
            tlb1_stats.lookups += tlb1_lookups
            tlb1_stats.hits += tlb1_hits
            tlb1_stats.misses += tlb1_misses
            tlb2_stats = core.tlb_l2.stats
            tlb2_stats.lookups += tlb2_lookups
            tlb2_stats.hits += tlb2_hits
            l1_stats = l1.stats
            l1_stats.accesses += l1_accesses
            l1_stats.hits += l1_hits
        return end - pos

    def _slow_reference(self, cpu: int, ctx, gva: int, is_write: bool) -> None:
        """One non-steady-state reference (reference ``_execute_reference``).

        Inline replica of :meth:`Simulator._execute_reference` for the
        fast engine (which never runs in validation mode): the TLB
        probes, fault-retry loop, hypervisor hooks and data access are
        the same operations against the same state, minus the per-layer
        call frames and result objects.
        """
        from repro.sim.simulator import _MAX_FAULT_RETRIES

        sim = self.simulator
        stats = sim.stats
        cpu_stats = stats.cpus[cpu]
        # cycle charges below go through stats.charge_cpu, which owns the
        # per-VM attribution (vm_of_cpu) shared with the reference engine
        charge_cpu = stats.charge_cpu
        core = sim.chip.cores[cpu]
        costs = sim.config.costs
        l1_tlb_latency = costs.l1_tlb_latency
        l2_tlb_latency = costs.l2_tlb_latency
        tlb1 = core.tlb_l1
        tlb2 = core.tlb_l2
        walker_walk = core.walker.walk
        cpu_stats.instructions += 1
        if stats.vms:
            stats.vms[stats.vm_of_cpu[cpu]].instructions += 1
        gvp = gva >> PAGE_SHIFT
        key = (ctx.vm_id, gvp)
        spp = 0

        for _ in range(_MAX_FAULT_RETRIES):
            # inline core.translate
            stats1 = tlb1.stats
            stats1.lookups += 1
            entry = tlb1._entries.get(key)
            cycles = l1_tlb_latency
            fault = None
            if entry is not None:
                stats1.hits += 1
                tlb1._entries.move_to_end(key)
                spp = entry.value
            else:
                stats1.misses += 1
                cycles += l2_tlb_latency
                stats2 = tlb2.stats
                stats2.lookups += 1
                entry = tlb2._entries.get(key)
                if entry is not None:
                    stats2.hits += 1
                    tlb2._entries.move_to_end(key)
                    tlb1.insert(
                        key, entry.value, cotag=entry.cotag, pt_line=entry.pt_line
                    )
                    spp = entry.value
                else:
                    stats2.misses += 1
                    walk = walker_walk(ctx, gvp, is_write=is_write)
                    cycles += walk.cycles
                    spp = walk.spp
                    fault = walk.fault
            charge_cpu(cpu, cycles)
            if fault is None:
                break
            if fault == "guest":
                ctx.ensure_guest_mapping(gvp)
                charge_cpu(cpu, costs.page_fault_overhead // 2)
                stats.count("guest.minor_faults")
            elif fault == "nested":
                gpp = ctx.gpp_of(gvp)
                if gpp is None:
                    ctx.ensure_guest_mapping(gvp)
                    gpp = ctx.gpp_of(gvp)
                # evaluate BEFORE charging: the handler charges eviction
                # and coherence cycles to the same counters internally
                fault_cycles = sim.hypervisor.handle_nested_fault(ctx, gpp, cpu)
                charge_cpu(cpu, fault_cycles)
        else:
            raise RuntimeError(
                f"reference to gva {gva:#x} did not resolve after "
                f"{_MAX_FAULT_RETRIES} fault retries"
            )

        # The slow path runs once per non-steady reference, so the
        # hypervisor hook is called directly (exactly as the reference
        # engine does) rather than inlined like the warm loop.
        if sim.hypervisor.on_data_access(spp, cpu):
            stats.count("paging.defrag_access_stalls")
        spa = (spp << PAGE_SHIFT) | (gva & (PAGE_SIZE - 1))
        charge_cpu(cpu, core.hierarchy.access_cycles(spa, is_write))


def _last_occurrence_order(values: np.ndarray) -> np.ndarray:
    """Distinct values of ``values`` ordered by ascending last occurrence.

    Replaying ``move_to_end`` once per distinct key in this order yields
    the exact OrderedDict order that per-reference ``move_to_end`` calls
    would have produced -- provided membership did not change, which is
    the invariant of an all-steady window.
    """
    reversed_values = values[::-1]
    distinct, first_in_reversed = np.unique(
        reversed_values, return_index=True
    )
    last = values.shape[0] - 1 - first_in_reversed
    return distinct[np.argsort(last, kind="stable")]


class SoAExecutor(FastPathExecutor):
    """Struct-of-arrays executor: vectorized multi-round steady windows.

    The fast engine retires steady references one Python iteration at a
    time; this engine retires them in *windows* of whole round-robin
    rounds.  Per window it (1) rebuilds per-core direct-mapped mirror
    tables (flat int64 arrays with power-of-2 index masks) of the L1 TLB
    and the L1 data tags from the authoritative structures, (2) runs the
    :mod:`repro.sim.soa_kernel` steady-prefix scan over each stream's
    precomputed address columns, and (3) bulk-retires ``R`` full rounds
    where ``R`` is the largest round count every active stream can cover
    steadily.  Bulk retirement applies exactly the effects the fast
    engine's steady path would have applied reference by reference:
    statistic sums, LRU ``move_to_end`` replayed per distinct key in
    last-occurrence order, dirty bits for written lines, idempotent
    clock-policy touched bits, and per-VM attribution.  That is sound
    because an all-steady window cannot change TLB or cache membership,
    only recency metadata and counters.

    Anything else -- a TLB or L1 miss, a partial tail chunk, a
    defragmenting configuration, an unknown paging policy -- drops to
    the inherited :class:`FastPathExecutor` exact path, chunk by chunk,
    so slow references execute the reference semantics unchanged.
    Mirror collisions only ever produce false *negatives* (a steady
    reference classified slow), never false positives, so they cost
    speed, not correctness.
    """

    #: Initial per-stream scan horizon in references.  Doubles each time
    #: a scan is cut short by the horizon rather than by a slow
    #: reference, so long steady phases converge to O(log) scans.
    _SCAN_START = 2048
    _SCAN_MAX = 1 << 21

    def __init__(self, simulator: "Simulator", trace, contexts) -> None:
        super().__init__(simulator, trace, contexts)
        self._bulk = self._bulk_eligible()
        if self._bulk:
            self._prepare_columns()

    def _bulk_eligible(self) -> bool:
        """Whether bulk windows are sound for this simulator + trace.

        Ineligible shapes are rare and still correct: the executor then
        behaves exactly like the fast engine.
        """
        if self._defrag or self._policy_kind == "other":
            # defrag interposes on_data_access on every steady
            # reference; "other" policies have per-access callbacks.
            return False
        # TLB mirror tags pack (gvp << 6) | vm_code into an int64, where
        # vm_code is a dense per-executor index over the traced VM ids.
        vm_ids = sorted({ctx.vm_id for ctx in self.contexts})
        if len(vm_ids) >= 64:  # pragma: no cover - fleets are far smaller
            return False
        self._vm_code = {vm_id: code for code, vm_id in enumerate(vm_ids)}
        self._vm_of_code = vm_ids
        for stream in self.trace.streams:
            if stream.shape[0] and int(stream.max()) >= 1 << 55:
                return False  # pragma: no cover - addresses are < 2^55
        return True

    def _prepare_columns(self) -> None:
        """Precompute per-stream SoA address columns and mirror shapes."""
        chip = self.simulator.chip
        core0 = chip.cores[0]
        tlb_capacity = max(
            core.tlb_l1.capacity for core in chip.cores
        )
        l1_lines = max(
            core.l1.num_sets * core.l1.associativity for core in chip.cores
        )
        # 4x the structure capacity keeps direct-mapped collisions (and
        # therefore spurious exact-path rounds) rare.
        self._tmask = (1 << max(4 * tlb_capacity - 1, 1).bit_length()) - 1
        self._lmask = (1 << max(2 * l1_lines - 1, 1).bit_length()) - 1
        self._warm_cost = (
            self.simulator.config.costs.l1_tlb_latency + core0.l1.latency
        )
        line_mask = ~(CACHE_LINE_SIZE - 1)
        self._col_tag: list[np.ndarray] = []
        self._col_tidx: list[np.ndarray] = []
        self._col_loff: list[np.ndarray] = []
        self._col_write: list[np.ndarray] = []
        for vcpu, stream in enumerate(self.trace.streams):
            gva = np.ascontiguousarray(stream, dtype=np.int64)
            gvp = gva >> PAGE_SHIFT
            vm_code = self._vm_code[self.contexts[vcpu].vm_id]
            self._col_tag.append(np.ascontiguousarray((gvp << 6) | vm_code))
            self._col_tidx.append(np.ascontiguousarray(gvp & self._tmask))
            self._col_loff.append(
                np.ascontiguousarray((gva & (PAGE_SIZE - 1)) & line_mask)
            )
            self._col_write.append(
                np.ascontiguousarray(self.trace.writes[vcpu], dtype=bool)
            )
        from repro.sim.soa_kernel import get_kernel

        self.kernel_name, self._scan = get_kernel()

    # ------------------------------------------------------------------
    # the windowed span loop
    # ------------------------------------------------------------------
    def execute_span(self, starts, ends, on_round=None) -> int:
        """Execute streams between ``starts`` and ``ends`` in windows.

        Bit-identical to both other engines: bulk windows cover only
        references whose effects commute into sums and last-occurrence
        LRU replays, and ``on_round`` still fires after every full
        round-robin round (windows are retired round by round whenever a
        hook is attached, so observation points are unchanged).
        """
        if not self._bulk:
            return super().execute_span(starts, ends, on_round)
        from repro.sim.simulator import _INTERLEAVE_CHUNK

        num_vcpus = self.trace.num_vcpus
        positions = list(starts)
        executed = 0
        horizon = self._SCAN_START
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            zero_streak = 0
            while True:
                active = [
                    s for s in range(num_vcpus) if positions[s] < ends[s]
                ]
                if not active:
                    break
                rounds, limited, window = self._scan_window(
                    positions, ends, active, horizon
                )
                if rounds == 0:
                    # Slow content (or a sub-chunk tail) ahead on some
                    # stream: run exact interleaved rounds.  The batch
                    # grows with consecutive slow scans so scan overhead
                    # amortizes across slow-path-heavy phases.
                    for _ in range(1 << min(zero_streak, 6)):
                        advanced = self._exact_round(
                            positions, ends, executed, on_round
                        )
                        if advanced == executed:
                            break
                        executed = advanced
                    zero_streak += 1
                    horizon = self._SCAN_START
                    continue
                zero_streak = 0
                if on_round is None:
                    executed += self._retire_rounds(
                        active, positions, window, 0, rounds,
                        _INTERLEAVE_CHUNK,
                    )
                else:
                    for r in range(rounds):
                        executed += self._retire_rounds(
                            active, positions, window, r, r + 1,
                            _INTERLEAVE_CHUNK,
                        )
                        on_round(executed)
                if limited:
                    horizon = min(horizon * 2, self._SCAN_MAX)
        finally:
            if gc_was_enabled:
                gc.enable()
        return executed

    def _exact_round(self, positions, ends, executed, on_round) -> int:
        """One full round-robin round on the inherited exact chunk path."""
        from repro.sim.simulator import _INTERLEAVE_CHUNK

        advanced = False
        for vcpu in range(self.trace.num_vcpus):
            pos = positions[vcpu]
            end = min(pos + _INTERLEAVE_CHUNK, ends[vcpu])
            if pos >= end:
                continue
            advanced = True
            executed += self._run_chunk(vcpu, pos, end)
            positions[vcpu] = end
        if advanced and on_round is not None:
            on_round(executed)
        return executed

    def _build_mirrors(self, cpus):
        """Direct-mapped numpy mirrors of each core's L1 TLB and L1 tags.

        Mirrors hold full tags, so a probe hit proves the key is present
        in the authoritative structure; a slot lost to a collision is
        merely invisible (false negative).  The arrays are rebuilt per
        scan -- cheap, since the structures hold at most a few hundred
        entries -- which frees the executor from hooking every
        invalidation path in the machine.
        """
        mirrors = {}
        chip = self.simulator.chip
        tmask = self._tmask
        lmask = self._lmask
        for cpu in cpus:
            core = chip.cores[cpu]
            tlb_tag = np.full(tmask + 1, -1, dtype=np.int64)
            tlb_spp = np.zeros(tmask + 1, dtype=np.int64)
            vm_code_of = self._vm_code.get
            for (vm_id, gvp), entry in core.tlb_l1._entries.items():
                vm_code = vm_code_of(vm_id)
                if vm_code is None:
                    # An untraced VM's entry can never match a scanned
                    # tag; leaving it out only costs a false negative.
                    continue
                slot = gvp & tmask
                tlb_tag[slot] = (gvp << 6) | vm_code
                tlb_spp[slot] = entry.value
            l1_tag = np.full(lmask + 1, -1, dtype=np.int64)
            for line_set in core.l1._sets:
                for line in line_set:
                    l1_tag[(line >> 6) & lmask] = line
            mirrors[cpu] = (tlb_tag, tlb_spp, l1_tag)
        return mirrors

    def _scan_window(self, positions, ends, active, horizon):
        """Find how many whole rounds every active stream covers steadily.

        Returns ``(rounds, horizon_limited, window)`` where ``window``
        maps each scanned stream to its ``(tag, spp, line, write)``
        column views for the scanned region.
        """
        from repro.sim.simulator import _INTERLEAVE_CHUNK

        mirrors = self._build_mirrors({self._pcpus[s] for s in active})
        scan = self._scan
        lmask = self._lmask
        rounds = None
        limited = False
        window = {}
        for s in active:
            pos = positions[s]
            avail = ends[s] - pos
            look = min(avail, horizon)
            tlb_tag, tlb_spp, l1_tag = mirrors[self._pcpus[s]]
            tag = self._col_tag[s][pos:pos + look]
            tidx = self._col_tidx[s][pos:pos + look]
            loff = self._col_loff[s][pos:pos + look]
            spp_out = np.empty(look, dtype=np.int64)
            line_out = np.empty(look, dtype=np.int64)
            prefix = scan(
                tlb_tag, tlb_spp, l1_tag, tag, tidx, loff, lmask,
                spp_out, line_out,
            )
            if prefix == look and look < avail:
                limited = True
            stream_rounds = prefix // _INTERLEAVE_CHUNK
            if rounds is None or stream_rounds < rounds:
                rounds = stream_rounds
            if rounds == 0:
                return 0, limited, {}
            window[s] = (tag, spp_out, line_out,
                         self._col_write[s][pos:pos + look])
        return rounds, limited, window

    def _retire_rounds(
        self, active, positions, window, first_round, last_round, chunk
    ) -> int:
        """Bulk-retire rounds ``[first_round, last_round)`` of a window."""
        sim = self.simulator
        stats = sim.stats
        chip = sim.chip
        num_rounds = last_round - first_round
        per_stream = num_rounds * chunk
        lo = first_round * chunk
        hi = last_round * chunk
        warm_cost = self._warm_cost
        vm_of_stream = self._vm_of_stream

        by_core: dict[int, list[int]] = {}
        for s in active:
            by_core.setdefault(self._pcpus[s], []).append(s)

        executed = 0
        for cpu, streams in by_core.items():
            core = chip.cores[cpu]
            total = per_stream * len(streams)
            cpu_stats = stats.cpus[cpu]
            cpu_stats.instructions += total
            cpu_stats.busy_cycles += total * warm_cost
            tlb1 = core.tlb_l1
            tlb1_stats = tlb1.stats
            tlb1_stats.lookups += total
            tlb1_stats.hits += total
            l1 = core.l1
            l1_stats = l1.stats
            l1_stats.accesses += total
            l1_stats.hits += total
            if vm_of_stream is not None:
                for s in streams:
                    vm_stats = stats.vms[vm_of_stream[s]]
                    vm_stats.instructions += per_stream
                    vm_stats.busy_cycles += per_stream * warm_cost
                # the round's last chunk on this core hands it the pCPU
                stats.vm_of_cpu[cpu] = vm_of_stream[streams[-1]]
            # Interleave the streams' chunks exactly as the round-robin
            # loop would have: (round, stream-in-vcpu-order, chunk).
            if len(streams) == 1:
                tag_merged = window[streams[0]][0][lo:hi]
                line_merged = window[streams[0]][2][lo:hi]
                write_merged = window[streams[0]][3][lo:hi]
            else:
                tag_merged = np.stack(
                    [window[s][0][lo:hi].reshape(num_rounds, chunk)
                     for s in streams],
                    axis=1,
                ).reshape(-1)
                line_merged = np.stack(
                    [window[s][2][lo:hi].reshape(num_rounds, chunk)
                     for s in streams],
                    axis=1,
                ).reshape(-1)
                write_merged = np.stack(
                    [window[s][3][lo:hi].reshape(num_rounds, chunk)
                     for s in streams],
                    axis=1,
                ).reshape(-1)
            tlb1_move = tlb1._entries.move_to_end
            vm_of_code = self._vm_of_code
            for packed in _last_occurrence_order(tag_merged).tolist():
                tlb1_move((vm_of_code[packed & 63], packed >> 6))
            l1_sets = l1._sets
            num_sets = l1.num_sets
            for line in _last_occurrence_order(line_merged).tolist():
                l1_sets[(line >> 6) % num_sets].move_to_end(line)
            if write_merged.any():
                for line in np.unique(line_merged[write_merged]).tolist():
                    l1_sets[(line >> 6) % num_sets][line].dirty = True
            executed += total

        if self._paged and self._policy_kind == "clock":
            # Touched bits are idempotent, so distinct pages suffice.
            resident_get = sim.hypervisor._resident_by_spp.get
            clock_pages = sim.hypervisor.policy._pages
            for s in active:
                for spp in np.unique(window[s][1][lo:hi]).tolist():
                    resident_key = resident_get(spp)
                    if resident_key is not None and resident_key in clock_pages:
                        clock_pages[resident_key] = True

        for s in active:
            positions[s] += per_stream
        return executed


def make_executor(simulator: "Simulator", trace, contexts):
    """Build the executor matching the simulator's resolved engine."""
    if simulator.engine == ENGINE_FAST:
        return FastPathExecutor(simulator, trace, contexts)
    if simulator.engine == ENGINE_SOA:
        return SoAExecutor(simulator, trace, contexts)
    return ReferenceExecutor(simulator, trace, contexts)


# ----------------------------------------------------------------------
# equivalence checking
# ----------------------------------------------------------------------
def result_fingerprint(result: "SimulationResult") -> dict[str, Any]:
    """Canonical, comparable snapshot of everything a run measured."""
    stats = result.stats
    return {
        "workload": result.workload,
        "warmup_references": result.warmup_references,
        "cpus": [
            (c.busy_cycles, c.coherence_cycles, c.instructions)
            for c in stats.cpus
        ],
        "events": dict(stats.events),
        "background_cycles": stats.background_cycles,
        "energy_dynamic": result.energy.dynamic,
        "energy_static": result.energy.static,
        "energy_components": dict(result.energy.components),
        "per_app_cycles": dict(result.per_app_cycles),
        "vm_names": list(result.vm_names),
        "vms": [
            (v.busy_cycles, v.coherence_cycles, v.instructions, dict(v.events))
            for v in stats.vms
        ],
        "intervals": [sample.to_dict() for sample in result.intervals],
    }


def machine_digest(simulator: "Simulator") -> dict[str, Any]:
    """Deep post-run snapshot of the simulated machine's state.

    Captures every hardware statistic *and* the contents of every
    stateful structure (TLBs, caches, directory, memory tiers, the
    hypervisor's residency maps), so two engines that drift anywhere are
    caught even when the headline numbers happen to agree.
    """
    chip = simulator.chip
    digest: dict[str, Any] = {"cores": []}
    for core in chip.cores:
        core_digest: dict[str, Any] = {}
        for structure in core.translation_structures():
            core_digest[structure.name] = {
                "stats": vars(structure.stats).copy(),
                "entries": [
                    (entry.key, entry.value, entry.cotag, entry.pt_line)
                    for entry in structure.entries()
                ],
            }
        for cache in (core.l1, core.l2):
            core_digest[cache.name] = {
                "stats": vars(cache.stats).copy(),
                "lines": [
                    (line.address, line.dirty, line.is_page_table)
                    for cache_set in cache._sets
                    for line in cache_set.values()
                ],
            }
        core_digest["walker"] = vars(core.walker.stats).copy()
        digest["cores"].append(core_digest)
    digest["llc"] = {
        "stats": vars(chip.llc.stats).copy(),
        "lines": [
            (line.address, line.dirty, line.is_page_table)
            for cache_set in chip.llc._sets
            for line in cache_set.values()
        ],
    }
    digest["directory"] = {
        "stats": vars(chip.directory.stats).copy(),
        "entries": [
            (
                entry.line,
                tuple(sorted(entry.sharers)),
                entry.owner,
                entry.is_nested_pt,
                entry.is_guest_pt,
            )
            for entry in chip.directory._entries.values()
        ],
    }
    digest["memory"] = {
        "fast_accesses": chip.memory.fast.accesses,
        "slow_accesses": chip.memory.slow.accesses,
    }
    hypervisor = simulator.hypervisor
    digest["hypervisor"] = {
        "resident": dict(hypervisor.resident),
        "backing": dict(hypervisor.backing),
        "vm_resident": {
            vm_id: sorted(pages)
            for vm_id, pages in hypervisor._vm_pages.items()
            if pages
        },
    }
    return digest


def diff_fingerprints(
    reference: dict[str, Any], fast: dict[str, Any], prefix: str = ""
) -> list[str]:
    """Human-readable differences between two fingerprints (or digests)."""
    differences: list[str] = []
    for key in sorted(set(reference) | set(fast)):
        ref_value = reference.get(key)
        fast_value = fast.get(key)
        if ref_value == fast_value:
            continue
        path = f"{prefix}{key}"
        if isinstance(ref_value, dict) and isinstance(fast_value, dict):
            differences.extend(
                diff_fingerprints(ref_value, fast_value, prefix=f"{path}.")
            )
        else:
            differences.append(
                f"{path}: reference={ref_value!r} fast={fast_value!r}"
            )
    return differences
