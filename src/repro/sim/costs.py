"""Cycle cost model for virtualization and translation coherence events.

The values follow the measurements quoted in the paper where available
(Section 3.2/3.3: IPIs cost thousands of cycles, a VM exit averages 1300
cycles, a lightweight interrupt 640 cycles) and use conventional
Haswell-class figures for the memory hierarchy.  All values are plain
integers (cycles) so experiments can scale or override them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Per-event cycle costs charged by the simulator.

    Attributes are grouped by the subsystem that charges them.
    """

    # --- translation lookup path -------------------------------------
    l1_tlb_latency: int = 1
    l2_tlb_latency: int = 7

    # --- software translation coherence (the baseline, Section 3.2) ---
    #: initiator-side cost of preparing and firing one IPI.
    ipi_send: int = 500
    #: fixed initiator-side cost of kicking off a shootdown (bookkeeping,
    #: kvm_vcpu flag updates, APIC programming).
    shootdown_setup: int = 1000
    #: target-side cost of taking the interrupt when not in guest mode.
    interrupt_handling: int = 640
    #: target-side cost of a VM exit when the CPU is running a vCPU.
    vm_exit: int = 1300
    #: target-side cost of resuming the guest after the flush.
    vm_entry: int = 800
    #: cost of flushing all translation structures on one CPU.
    full_translation_flush: int = 250
    #: initiator-side cost of waiting for one acknowledgment.
    ack_wait: int = 100

    # --- hardware translation coherence (HATRIC / UNITD) --------------
    #: latency of one coherence directory lookup.
    directory_lookup: int = 12
    #: latency of one invalidation message delivered to a CPU.
    coherence_message: int = 24
    #: target-side cost of a co-tag CAM search in one translation
    #: structure (hardware, overlapped with execution).
    cotag_search: int = 2
    #: target-side cost of UNITD's larger reverse-lookup CAM search.
    unitd_cam_search: int = 4

    # --- hypervisor paging ---------------------------------------------
    #: software overhead of entering/exiting the hypervisor page-fault
    #: handler (excludes translation coherence and the copy itself).
    page_fault_overhead: int = 2200
    #: cycles to copy one 64-byte line between DRAM tiers.
    page_copy_per_line: int = 6
    #: number of cache lines per page (4 KB / 64 B).
    lines_per_page: int = 64
    #: overhead of one migration-daemon wakeup (charged off the critical
    #: path, to background cycles).
    daemon_wakeup: int = 1500

    @property
    def page_copy(self) -> int:
        """Cycles to copy one full page between tiers."""
        return self.page_copy_per_line * self.lines_per_page

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every cost scaled by ``factor`` (for sensitivity studies)."""
        fields = {
            name: max(1, int(round(getattr(self, name) * factor)))
            for name in self.__dataclass_fields__
        }
        return CostModel(**fields)

    def with_overrides(self, **overrides: int) -> "CostModel":
        """Return a copy with selected costs replaced."""
        return replace(self, **overrides)
