"""Per-CPU translation caching structures: TLBs, MMU caches, nested TLBs.

All three structures cache information derived from the page tables:

* the **TLB** caches requested GVP -> SPP translations, short-circuiting
  the whole two-dimensional walk;
* the **MMU cache** (modelled after Intel's paging-structure cache)
  caches GVP-prefix -> guest-page-table-location mappings, letting the
  walker skip the upper levels of the guest dimension;
* the **nested TLB (nTLB)** caches GPP -> SPP translations, letting the
  walker skip individual nested walks.

Because these structures are read-only caches of page table state, their
entries only need two coherence states -- Shared and Invalid -- realised
here as presence in / absence from the structure (Section 4.2).  Every
entry optionally carries a *co-tag* and the system-physical cache-line
address of the nested page table entry it was filled from; HATRIC's
coherence messages invalidate by co-tag, while the ideal protocol
invalidates by exact line address.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable, Optional


@dataclass(slots=True)
class TranslationEntry:
    """One cached translation.

    Attributes:
        key: the lookup key (structure specific, e.g. ``(vm_id, gvp)``).
        value: the cached datum (an SPP, or a table-page SPP for the MMU
            cache).
        cotag: co-tag derived from the source nested page table entry's
            system physical address, or None when the owning protocol
            does not use co-tags.
        pt_line: line-aligned system physical address of the nested page
            table entry the translation was filled from, or None.
    """

    key: Hashable
    value: int
    cotag: Optional[int] = None
    pt_line: Optional[int] = None


@dataclass
class TranslationStructureStats:
    """Event counters for one translation structure."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    flushes: int = 0
    flushed_entries: int = 0
    invalidations: int = 0
    cotag_searches: int = 0

    def hit_rate(self) -> float:
        """Return the hit rate over all lookups (0.0 when never used)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class TranslationStructure:
    """A fully-associative, LRU-replacement translation structure.

    The paper's structures are small (32..512 entries) and set
    associative; a fully-associative LRU model captures their capacity
    and flush behaviour, which is what translation coherence interacts
    with.
    """

    def __init__(self, name: str, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, TranslationEntry] = OrderedDict()
        self.stats = TranslationStructureStats()

    # ------------------------------------------------------------------
    # lookup / fill
    # ------------------------------------------------------------------
    def lookup(self, key: Hashable) -> Optional[TranslationEntry]:
        """Look up ``key``; a hit refreshes LRU state."""
        self.stats.lookups += 1
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def insert(
        self,
        key: Hashable,
        value: int,
        cotag: Optional[int] = None,
        pt_line: Optional[int] = None,
    ) -> Optional[TranslationEntry]:
        """Insert (or refresh) a translation; return any evicted entry."""
        self.stats.insertions += 1
        if key in self._entries:
            entry = self._entries[key]
            entry.value = value
            entry.cotag = cotag
            entry.pt_line = pt_line
            self._entries.move_to_end(key)
            return None
        evicted = None
        if len(self._entries) >= self.capacity:
            _, evicted = self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = TranslationEntry(
            key=key, value=value, cotag=cotag, pt_line=pt_line
        )
        return evicted

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate_key(self, key: Hashable) -> bool:
        """Invalidate the entry with exactly this key, if present."""
        if key in self._entries:
            del self._entries[key]
            self.stats.invalidations += 1
            return True
        return False

    def invalidate_matching_cotag(self, cotag: int) -> int:
        """Invalidate every entry whose co-tag matches ``cotag``.

        Models the co-tag CAM search HATRIC performs when a coherence
        invalidation reaches the structure; the search itself is counted
        so the energy model can charge it.
        """
        self.stats.cotag_searches += 1
        victims = [
            key
            for key, entry in self._entries.items()
            if entry.cotag == cotag
        ]
        for key in victims:
            del self._entries[key]
        self.stats.invalidations += len(victims)
        return len(victims)

    def invalidate_matching_line(self, pt_line: int) -> int:
        """Invalidate entries filled from the page-table line ``pt_line``.

        Used by the ideal protocol (perfect precision) and by tests to
        cross-check co-tag behaviour against exact tracking.
        """
        victims = [
            key
            for key, entry in self._entries.items()
            if entry.pt_line == pt_line
        ]
        for key in victims:
            del self._entries[key]
        self.stats.invalidations += len(victims)
        return len(victims)

    def flush(self) -> int:
        """Invalidate everything; return the number of entries dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.flushes += 1
        self.stats.flushed_entries += dropped
        return dropped

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def entries(self) -> list[TranslationEntry]:
        """Return a snapshot of all resident entries (LRU -> MRU order)."""
        return list(self._entries.values())


class TLB(TranslationStructure):
    """Translation lookaside buffer: ``(vm_id, gvp) -> spp``."""

    @staticmethod
    def key_for(vm_id: int, gvp: int) -> tuple[int, int]:
        """Build the lookup key for a guest virtual page of a VM."""
        return (vm_id, gvp)


class NestedTLB(TranslationStructure):
    """Nested TLB: ``(vm_id, gpp) -> spp`` (Section 2.1, structure c)."""

    @staticmethod
    def key_for(vm_id: int, gpp: int) -> tuple[int, int]:
        """Build the lookup key for a guest physical page of a VM."""
        return (vm_id, gpp)


class MMUCache(TranslationStructure):
    """Paging-structure cache: ``(vm_id, level, gvp_prefix) -> table spp``.

    An entry at ``level`` caches the system physical page of the guest
    page table page that the walker would reach *after* consuming the
    guest-virtual index bits of levels 4..level, letting it resume the
    guest walk there (Section 2.1, structure b).
    """

    @staticmethod
    def key_for(vm_id: int, level: int, gvp_prefix: int) -> tuple[int, int, int]:
        """Build the lookup key for a partial guest walk."""
        return (vm_id, level, gvp_prefix)
