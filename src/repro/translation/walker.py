"""Hardware two-dimensional page table walker.

On a TLB miss the walker performs the nested walk of Figure 1 of the
paper: up to 24 memory references (five 4-step nested walks plus four
guest page table reads), short-circuited by the MMU (paging-structure)
cache and the nested TLB.  Every page-table reference is charged through
the CPU's cache hierarchy, so walk latency depends on where the page
table lines currently live -- which is exactly why full translation
structure flushes are so expensive on virtualized systems.

The walker is also the agent that fills translation structures and sets
their co-tags (Section 4.1, "Who sets co-tags?"), and that informs the
coherence directory when a page-table cache line is cached in a
translation structure for the first time (Section 4.2, "Directory entry
changes").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Protocol

from repro.translation.address import (
    PAGE_SHIFT,
    cache_line_of,
    vpn_prefix,
)
from repro.translation.page_table import GuestPageTable, NestedPageTable, PageTableEntry
from repro.translation.structures import MMUCache, NestedTLB, TLB
from repro.coherence.directory import SharerKind

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.cotag import CoTagScheme
    from repro.mem.hierarchy import CacheHierarchy


class AddressSpaceContext(Protocol):
    """What the walker needs to know about the VM it is walking for."""

    vm_id: int
    guest_page_table: GuestPageTable
    nested_page_table: NestedPageTable
    guest_root_gpp: int


#: Callback invoked when the walker caches a translation derived from a
#: page-table cache line: (structure kind, line SPA, is_nested, is_guest).
FillListener = Callable[[SharerKind, int, bool, bool], None]


@dataclass
class WalkStats:
    """Counters describing walker activity on one CPU."""

    walks: int = 0
    faults: int = 0
    memory_references: int = 0
    cycles: int = 0
    nested_walks: int = 0
    ntlb_hits: int = 0
    mmu_cache_hits: int = 0


@dataclass(slots=True)
class WalkResult:
    """Outcome of one two-dimensional page table walk.

    Attributes:
        spp: translated system physical page (valid unless ``fault``).
        gpp: guest physical page of the data page.
        cycles: latency charged for the walk.
        memory_references: page-table references issued.
        fault: None on success, ``"guest"`` or ``"nested"`` when the
            corresponding page table had no mapping.
        nested_leaf_address: system physical address of the nested L1
            entry mapping the data page (what co-tags are derived from).
        cotag: co-tag value stored with the TLB fill (None without a
            co-tag scheme).
    """

    spp: int = 0
    gpp: int = 0
    cycles: int = 0
    memory_references: int = 0
    fault: Optional[str] = None
    nested_leaf_address: Optional[int] = None
    cotag: Optional[int] = None


@dataclass(slots=True)
class _NestedTranslation:
    """Internal result of translating one GPP through the nested dimension."""

    spp: int
    cycles: int
    references: int
    leaf: Optional[PageTableEntry]
    fault: bool = False


class PageTableWalker:
    """Per-CPU hardware page table walker."""

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        tlb_l1: TLB,
        tlb_l2: TLB,
        mmu_cache: MMUCache,
        ntlb: NestedTLB,
        cotag_scheme: Optional[CoTagScheme] = None,
        fill_listener: Optional[FillListener] = None,
        l2_tlb_latency: int = 7,
    ) -> None:
        self.hierarchy = hierarchy
        self.tlb_l1 = tlb_l1
        self.tlb_l2 = tlb_l2
        self.mmu_cache = mmu_cache
        self.ntlb = ntlb
        self.cotag_scheme = cotag_scheme
        self.fill_listener = fill_listener
        self.l2_tlb_latency = l2_tlb_latency
        self.stats = WalkStats()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def walk(
        self, ctx: AddressSpaceContext, gvp: int, is_write: bool = False
    ) -> WalkResult:
        """Walk the two-dimensional page tables for ``gvp``.

        Fills the TLBs, MMU cache and nTLB on success.  The caller is
        responsible for having checked the TLBs first.
        """
        self.stats.walks += 1
        result = WalkResult()

        # 1. Find the deepest guest page table location we already know.
        start_level, table_spp, cycles = self._consult_mmu_cache(ctx, gvp)
        result.cycles += cycles
        if table_spp is None:
            nested = self._translate_gpp(ctx, ctx.guest_root_gpp)
            result.cycles += nested.cycles
            result.memory_references += nested.references
            if nested.fault:
                return self._fault(result, "nested")
            table_spp = nested.spp

        # 2. Walk the guest dimension from start_level down to 1.
        guest_path = ctx.guest_page_table.walk_path(gvp)
        if len(guest_path) < 4:
            return self._fault(result, "guest")
        for level in range(start_level, 0, -1):
            guest_entry = guest_path[4 - level]
            entry_spa = self._guest_entry_spa(table_spp, guest_entry.address)
            access = self.hierarchy.access(
                entry_spa, is_write=False, is_page_table=True
            )
            result.cycles += access.cycles
            result.memory_references += 1
            self._note_accessed(ctx, guest_entry, entry_spa, guest=True)
            next_gpp = guest_entry.pfn

            nested = self._translate_gpp(ctx, next_gpp)
            result.cycles += nested.cycles
            result.memory_references += nested.references
            if nested.fault:
                return self._fault(result, "nested")

            if level > 1:
                # next_gpp is the guest table page for level-1; remember
                # where it lives so future walks can skip ahead.
                table_spp = nested.spp
                self._fill_mmu_cache(ctx, gvp, level - 1, nested)
            else:
                # next_gpp is the data page itself.
                result.gpp = next_gpp
                result.spp = nested.spp
                if is_write and nested.leaf is not None:
                    nested.leaf.dirty = True
                if is_write:
                    guest_entry.dirty = True
                result.nested_leaf_address = (
                    nested.leaf.address if nested.leaf is not None else None
                )
                self._fill_tlbs(ctx, gvp, result)

        self.stats.cycles += result.cycles
        self.stats.memory_references += result.memory_references
        return result

    def translate_gpp(self, ctx: AddressSpaceContext, gpp: int) -> WalkResult:
        """Translate a lone guest physical page (used by the hypervisor model)."""
        nested = self._translate_gpp(ctx, gpp)
        result = WalkResult(
            spp=nested.spp,
            gpp=gpp,
            cycles=nested.cycles,
            memory_references=nested.references,
            fault="nested" if nested.fault else None,
            nested_leaf_address=nested.leaf.address if nested.leaf else None,
        )
        return result

    # ------------------------------------------------------------------
    # guest dimension helpers
    # ------------------------------------------------------------------
    def _consult_mmu_cache(
        self, ctx: AddressSpaceContext, gvp: int
    ) -> tuple[int, Optional[int], int]:
        """Return (start_level, table_spp or None, cycles).

        ``start_level`` is the guest level whose table the walker will
        read first; ``table_spp`` is that table's system physical page
        when the MMU cache knows it (most specific entry wins).

        An entry describing the table at level *L* is tagged with the
        guest-virtual prefix that selects that table, i.e. the bits above
        level *L*'s index field (``vpn_prefix(gvp, L + 1)``), exactly
        like Intel's paging-structure caches.
        """
        for level in (1, 2, 3):
            key = MMUCache.key_for(ctx.vm_id, level, vpn_prefix(gvp, level + 1))
            entry = self.mmu_cache.lookup(key)
            if entry is not None:
                self.stats.mmu_cache_hits += 1
                return level, entry.value, 1
        return 4, None, 1

    def _guest_entry_spa(self, table_spp: int, entry_gpa: int) -> int:
        """System physical address of a guest PTE given its table's SPP."""
        offset = entry_gpa & ((1 << PAGE_SHIFT) - 1)
        return (table_spp << PAGE_SHIFT) | offset

    def _fill_mmu_cache(
        self,
        ctx: AddressSpaceContext,
        gvp: int,
        level: int,
        nested: _NestedTranslation,
    ) -> None:
        """Cache the location of the guest table page for ``level``."""
        cotag = None
        pt_line = None
        if nested.leaf is not None:
            pt_line = cache_line_of(nested.leaf.address)
            if self.cotag_scheme is not None:
                cotag = self.cotag_scheme.cotag_of(nested.leaf.address)
        key = MMUCache.key_for(ctx.vm_id, level, vpn_prefix(gvp, level + 1))
        self.mmu_cache.insert(key, nested.spp, cotag=cotag, pt_line=pt_line)
        if pt_line is not None and self.fill_listener is not None:
            self.fill_listener(SharerKind.MMU_CACHE, pt_line, True, False)

    def _fill_tlbs(
        self, ctx: AddressSpaceContext, gvp: int, result: WalkResult
    ) -> None:
        cotag = None
        pt_line = None
        if result.nested_leaf_address is not None:
            pt_line = cache_line_of(result.nested_leaf_address)
            if self.cotag_scheme is not None:
                cotag = self.cotag_scheme.cotag_of(result.nested_leaf_address)
        result.cotag = cotag
        key = TLB.key_for(ctx.vm_id, gvp)
        self.tlb_l1.insert(key, result.spp, cotag=cotag, pt_line=pt_line)
        self.tlb_l2.insert(key, result.spp, cotag=cotag, pt_line=pt_line)
        if pt_line is not None and self.fill_listener is not None:
            self.fill_listener(SharerKind.TLB, pt_line, True, False)

    # ------------------------------------------------------------------
    # nested dimension helpers
    # ------------------------------------------------------------------
    def _translate_gpp(
        self, ctx: AddressSpaceContext, gpp: int
    ) -> _NestedTranslation:
        """Translate GPP -> SPP via the nTLB or a 4-step nested walk."""
        key = NestedTLB.key_for(ctx.vm_id, gpp)
        hit = self.ntlb.lookup(key)
        if hit is not None:
            self.stats.ntlb_hits += 1
            leaf = ctx.nested_page_table.lookup(gpp)
            return _NestedTranslation(
                spp=hit.value, cycles=1, references=0, leaf=leaf
            )

        self.stats.nested_walks += 1
        path = ctx.nested_page_table.walk_path(gpp)
        cycles = 0
        references = 0
        for entry in path:
            access = self.hierarchy.access(
                entry.address, is_write=False, is_page_table=True
            )
            cycles += access.cycles
            references += 1
            self._note_accessed(ctx, entry, entry.address, guest=False)
        if len(path) < 4:
            return _NestedTranslation(
                spp=0, cycles=cycles, references=references, leaf=None, fault=True
            )
        leaf = path[-1]
        cotag = (
            self.cotag_scheme.cotag_of(leaf.address)
            if self.cotag_scheme is not None
            else None
        )
        pt_line = cache_line_of(leaf.address)
        self.ntlb.insert(key, leaf.pfn, cotag=cotag, pt_line=pt_line)
        if self.fill_listener is not None:
            self.fill_listener(SharerKind.NTLB, pt_line, True, False)
        return _NestedTranslation(
            spp=leaf.pfn, cycles=cycles, references=references, leaf=leaf
        )

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def _note_accessed(
        self,
        ctx: AddressSpaceContext,
        entry: PageTableEntry,
        entry_spa: int,
        guest: bool,
    ) -> None:
        """Set the accessed bit; first access marks the directory entry."""
        if entry.accessed:
            return
        entry.accessed = True
        if self.fill_listener is not None:
            self.fill_listener(
                SharerKind.CACHE,
                cache_line_of(entry_spa),
                not guest,
                guest,
            )

    def _fault(self, result: WalkResult, kind: str) -> WalkResult:
        result.fault = kind
        self.stats.faults += 1
        self.stats.cycles += result.cycles
        self.stats.memory_references += result.memory_references
        return result
