"""Address translation substrate.

Implements x86-64-style two-dimensional address translation for
virtualized systems: guest and nested 4-level radix page tables, the
hardware two-dimensional page table walker, and the per-CPU translation
caching structures (TLBs, MMU/paging-structure caches, nested TLBs).
"""

from repro.translation.address import (
    CACHE_LINE_SIZE,
    ENTRIES_PER_LINE,
    PAGE_SHIFT,
    PAGE_SIZE,
    PTE_SIZE,
    cache_line_of,
    gpp_of,
    gvp_of,
    page_offset,
    spp_of,
)
from repro.translation.page_table import (
    GuestPageTable,
    NestedPageTable,
    PageTableEntry,
    RadixPageTable,
)
from repro.translation.structures import (
    MMUCache,
    NestedTLB,
    TranslationEntry,
    TranslationStructure,
    TLB,
)
from repro.translation.walker import PageTableWalker, WalkResult

__all__ = [
    "CACHE_LINE_SIZE",
    "ENTRIES_PER_LINE",
    "GuestPageTable",
    "MMUCache",
    "NestedPageTable",
    "NestedTLB",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PTE_SIZE",
    "PageTableEntry",
    "PageTableWalker",
    "RadixPageTable",
    "TLB",
    "TranslationEntry",
    "TranslationStructure",
    "WalkResult",
    "cache_line_of",
    "gpp_of",
    "gvp_of",
    "page_offset",
    "spp_of",
]
