"""Four-level radix page tables (guest and nested).

Both dimensions of translation use x86-64-style 4-level forward-mapped
radix trees (Section 2.1 of the paper).  The *guest* page table maps
guest virtual pages (GVPs) to guest physical pages (GPPs) and its table
pages live in guest physical memory; the *nested* page table maps GPPs
to system physical pages (SPPs) and its table pages live directly in
system physical memory.

Every page table entry has a well-defined address in the address space
its table lives in.  Those addresses matter: HATRIC's co-tags store (a
hash of) the system physical address of the nested page table entry a
cached translation was read from, and the coherence directory tracks the
cache lines that hold page table entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.translation.address import (
    PAGE_SHIFT,
    PAGE_TABLE_LEVELS,
    PTE_SIZE,
    level_index,
)


@dataclass(slots=True)
class PageTableEntry:
    """One page table entry.

    Attributes:
        vpn: page number (in the table's input space) this entry translates.
        pfn: page frame number the entry points at -- either the next-level
            table page or, for a leaf, the translated data page.
        address: byte address of this entry in the address space where the
            table resides (GPA for guest tables, SPA for nested tables).
        level: table level the entry belongs to (4 = root, 1 = leaf).
        accessed: x86 accessed bit, set by the page table walker.
        dirty: x86 dirty bit, set on write accesses through the entry.
    """

    vpn: int
    pfn: int
    address: int
    level: int
    accessed: bool = False
    dirty: bool = False


@dataclass
class _Node:
    """Internal radix-tree node: one table page."""

    level: int
    page_number: int
    entries: dict[int, PageTableEntry] = field(default_factory=dict)
    children: dict[int, "_Node"] = field(default_factory=dict)

    def entry_address(self, index: int) -> int:
        """Byte address of the entry at ``index`` within this table page."""
        return (self.page_number << PAGE_SHIFT) | (index * PTE_SIZE)


class RadixPageTable:
    """A generic 4-level radix page table.

    Table pages are allocated lazily through ``allocate_table_page``, a
    callable returning a fresh page frame number in whichever address
    space the table lives in.  The class is agnostic to that space; the
    :class:`GuestPageTable` and :class:`NestedPageTable` subclasses fix
    the semantics.
    """

    def __init__(self, allocate_table_page: Callable[[], int]) -> None:
        self._allocate_table_page = allocate_table_page
        self.root = _Node(
            level=PAGE_TABLE_LEVELS, page_number=self._allocate_table_page()
        )
        self._mapped_pages = 0
        #: table pages allocated, including the root.
        self.table_pages = 1

    # ------------------------------------------------------------------
    # mapping operations
    # ------------------------------------------------------------------
    def map(self, vpn: int, pfn: int) -> PageTableEntry:
        """Map ``vpn`` to ``pfn``, creating intermediate tables as needed.

        Returns the leaf entry.  Remapping an existing ``vpn`` is an
        error; use :meth:`remap` for that.
        """
        node = self.root
        for level in range(PAGE_TABLE_LEVELS, 1, -1):
            index = level_index(vpn, level)
            child = node.children.get(index)
            if child is None:
                child = _Node(
                    level=level - 1, page_number=self._allocate_table_page()
                )
                node.children[index] = child
                self.table_pages += 1
                node.entries[index] = PageTableEntry(
                    vpn=vpn,
                    pfn=child.page_number,
                    address=node.entry_address(index),
                    level=level,
                )
            node = child
        index = level_index(vpn, 1)
        if index in node.entries:
            raise ValueError(f"page {vpn:#x} is already mapped")
        entry = PageTableEntry(
            vpn=vpn, pfn=pfn, address=node.entry_address(index), level=1
        )
        node.entries[index] = entry
        self._mapped_pages += 1
        return entry

    def lookup(self, vpn: int) -> Optional[PageTableEntry]:
        """Return the leaf entry for ``vpn`` or None if unmapped."""
        node = self.root
        for level in range(PAGE_TABLE_LEVELS, 1, -1):
            node = node.children.get(level_index(vpn, level))
            if node is None:
                return None
        return node.entries.get(level_index(vpn, 1))

    def remap(self, vpn: int, new_pfn: int) -> PageTableEntry:
        """Point an existing mapping at a new frame and return its entry.

        This is the operation a hypervisor performs when it migrates a
        page between memory tiers: the entry (and hence its address,
        which co-tags refer to) stays put, only the target frame changes.
        """
        entry = self.lookup(vpn)
        if entry is None:
            raise KeyError(f"page {vpn:#x} is not mapped")
        entry.pfn = new_pfn
        entry.accessed = False
        entry.dirty = False
        return entry

    def unmap(self, vpn: int) -> PageTableEntry:
        """Remove the mapping for ``vpn`` and return the removed entry."""
        node = self.root
        for level in range(PAGE_TABLE_LEVELS, 1, -1):
            node = node.children.get(level_index(vpn, level))
            if node is None:
                raise KeyError(f"page {vpn:#x} is not mapped")
        index = level_index(vpn, 1)
        entry = node.entries.pop(index, None)
        if entry is None:
            raise KeyError(f"page {vpn:#x} is not mapped")
        self._mapped_pages -= 1
        return entry

    # ------------------------------------------------------------------
    # walking
    # ------------------------------------------------------------------
    def walk_path(self, vpn: int) -> list[PageTableEntry]:
        """Return the entries visited walking ``vpn`` from root to leaf.

        The list is ordered level 4 .. level 1 and contains only the
        entries that exist; a partial list means the walk faulted at the
        level following the last returned entry.
        """
        path: list[PageTableEntry] = []
        node = self.root
        for level in range(PAGE_TABLE_LEVELS, 1, -1):
            index = level_index(vpn, level)
            entry = node.entries.get(index)
            if entry is None:
                return path
            path.append(entry)
            node = node.children[index]
        leaf = node.entries.get(level_index(vpn, 1))
        if leaf is not None:
            path.append(leaf)
        return path

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def mapped_pages(self) -> int:
        """Number of leaf mappings currently installed."""
        return self._mapped_pages

    def iter_leaf_entries(self) -> Iterator[PageTableEntry]:
        """Iterate over all leaf entries (order unspecified)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.level == 1:
                yield from node.entries.values()
            else:
                stack.extend(node.children.values())


class GuestPageTable(RadixPageTable):
    """Guest page table: GVP -> GPP, table pages in guest physical memory."""


class NestedPageTable(RadixPageTable):
    """Nested page table: GPP -> SPP, table pages in system physical memory."""
