"""Address-space constants and helpers.

The simulator distinguishes three address spaces, following the paper's
terminology (Section 2.1):

* **GVA / GVP** -- guest virtual address / guest virtual page, the
  addresses a process inside the guest VM issues;
* **GPA / GPP** -- guest physical address / guest physical page, what the
  guest OS believes is physical memory;
* **SPA / SPP** -- system physical address / system physical page, the
  real machine addresses managed by the hypervisor.

The guest page table maps GVP -> GPP; the nested page table maps
GPP -> SPP.  All page tables themselves live in system physical memory,
and their entries occupy system physical addresses -- those addresses are
what HATRIC's co-tags store.
"""

from __future__ import annotations

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT

#: Size in bytes of one page table entry (x86-64).
PTE_SIZE = 8

#: Bytes per cache line; 8 PTEs fit in one line, which is the coherence
#: granularity HATRIC operates at (Section 4.2, "Coherence granularity").
CACHE_LINE_SIZE = 64
ENTRIES_PER_LINE = CACHE_LINE_SIZE // PTE_SIZE

#: Number of PTEs per 4 KB page-table page and the per-level index width.
ENTRIES_PER_TABLE = PAGE_SIZE // PTE_SIZE
LEVEL_INDEX_BITS = 9

#: Radix page tables have four levels; level 4 is the root, level 1 the leaf.
PAGE_TABLE_LEVELS = 4


def gvp_of(gva: int) -> int:
    """Return the guest virtual page number of a guest virtual address."""
    return gva >> PAGE_SHIFT


def gpp_of(gpa: int) -> int:
    """Return the guest physical page number of a guest physical address."""
    return gpa >> PAGE_SHIFT


def spp_of(spa: int) -> int:
    """Return the system physical page number of a system physical address."""
    return spa >> PAGE_SHIFT


def page_offset(addr: int) -> int:
    """Return the byte offset of ``addr`` within its page."""
    return addr & (PAGE_SIZE - 1)


def cache_line_of(addr: int) -> int:
    """Return the cache-line address (line-aligned) containing ``addr``."""
    return addr & ~(CACHE_LINE_SIZE - 1)


def level_index(vpn: int, level: int) -> int:
    """Return the radix-tree index used at ``level`` for a page number.

    ``level`` follows the paper's numbering: 4 is the root, 1 is the leaf.
    The virtual page number is split into four 9-bit fields; the most
    significant field indexes the root table.
    """
    if not 1 <= level <= PAGE_TABLE_LEVELS:
        raise ValueError(f"page table level must be in 1..4, got {level}")
    shift = (level - 1) * LEVEL_INDEX_BITS
    return (vpn >> shift) & (ENTRIES_PER_TABLE - 1)


def vpn_prefix(vpn: int, level: int) -> int:
    """Return the part of ``vpn`` that selects the table at ``level``.

    Paging-structure (MMU) caches are tagged with this prefix: an entry
    for level *L* caches the location of the level *L-1* table reached
    after consuming the indexes of levels 4..L.
    """
    if not 1 <= level <= PAGE_TABLE_LEVELS:
        raise ValueError(f"page table level must be in 1..4, got {level}")
    shift = (level - 1) * LEVEL_INDEX_BITS
    return vpn >> shift
