"""Dual-grain coherence directory with page-table awareness.

The directory tracks, per cache line, which CPUs may hold the line in
their private caches *or* -- for lines holding page table entries -- in
their translation structures (TLB, MMU cache, nTLB).  It implements the
design decisions of Section 4.2 of the paper:

* **nPT / gPT bits** per entry mark lines belonging to the nested or
  guest page table; writes to such lines must also invalidate
  translation structures.
* **Coarse granularity**: tracking is per 64-byte line (8 PTEs), so a
  write to one PTE invalidates cached translations from all 8.
* **Pseudo-specificity**: a single sharer list covers both the private
  caches and the translation structures of a CPU, so invalidations are
  delivered to both even when only one holds the data (spurious messages
  are counted, not charged correctness-wise).
* **Lazy sharer updates**: evictions of page-table lines from private
  caches or translation structures do *not* remove the CPU from the
  sharer list; the CPU is demoted only when it later receives a spurious
  invalidation.  The eager alternative is available for the Figure 12
  ablation (``EGR-dir-update``).
* **Back-invalidations**: the directory has finite capacity; evicting an
  entry forces the corresponding line out of all sharers' caches and
  translation structures.  An infinite directory (``No-back-inv``) is
  available for the same ablation.
* **Fine-grained tracking** (``FG-tracking`` ablation): sharer lists are
  kept per structure kind, eliminating spurious messages at the cost of
  a larger, more energy-hungry directory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class SharerKind(Enum):
    """Which structure on a CPU holds (part of) a line."""

    CACHE = "cache"
    TLB = "tlb"
    MMU_CACHE = "mmu"
    NTLB = "ntlb"


@dataclass(slots=True)
class DirectoryEntry:
    """Directory state for one cache line."""

    line: int
    sharers: set[int] = field(default_factory=set)
    owner: Optional[int] = None
    is_nested_pt: bool = False
    is_guest_pt: bool = False
    #: Only populated when fine-grained tracking is enabled.
    fine_sharers: dict[SharerKind, set[int]] = field(default_factory=dict)

    @property
    def is_page_table(self) -> bool:
        """True when the line holds page table entries of either dimension."""
        return self.is_nested_pt or self.is_guest_pt


@dataclass
class DirectoryStats:
    """Counters for directory activity."""

    lookups: int = 0
    allocations: int = 0
    evictions: int = 0
    back_invalidations: int = 0
    invalidations_sent: int = 0
    spurious_invalidations: int = 0
    sharer_demotions: int = 0
    pt_writes_observed: int = 0


@dataclass
class WriteOutcome:
    """Result of notifying the directory about a write to a line.

    Attributes:
        invalidate_cpus: CPUs (other than the writer) that must receive an
            invalidation for the line.
        is_nested_pt: the line's nPT bit (write concerns the nested page
            table, so translation structures must also be invalidated).
        is_guest_pt: the line's gPT bit.
    """

    invalidate_cpus: frozenset[int]
    is_nested_pt: bool
    is_guest_pt: bool


@dataclass
class BackInvalidation:
    """A directory eviction forcing a line out of its sharers."""

    line: int
    cpus: frozenset[int]
    is_page_table: bool


class CoherenceDirectory:
    """Directory tracking private-cache and translation-structure sharers."""

    def __init__(
        self,
        num_cpus: int,
        capacity: Optional[int] = 65536,
        lazy_pt_sharer_updates: bool = True,
        fine_grained: bool = False,
    ) -> None:
        if num_cpus <= 0:
            raise ValueError("directory needs at least one CPU")
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None (infinite)")
        self.num_cpus = num_cpus
        self.capacity = capacity
        self.lazy_pt_sharer_updates = lazy_pt_sharer_updates
        self.fine_grained = fine_grained
        self._entries: OrderedDict[int, DirectoryEntry] = OrderedDict()
        self.stats = DirectoryStats()

    # ------------------------------------------------------------------
    # entry management
    # ------------------------------------------------------------------
    def lookup(self, line: int) -> Optional[DirectoryEntry]:
        """Return the directory entry for ``line``, if tracked."""
        self.stats.lookups += 1
        entry = self._entries.get(line)
        if entry is not None:
            self._entries.move_to_end(line)
        return entry

    def _get_or_allocate(self, line: int) -> tuple[DirectoryEntry, list[BackInvalidation]]:
        # Every fill/write consults the directory, so it counts as a lookup
        # for the energy model even when the entry must first be allocated.
        self.stats.lookups += 1
        entry = self._entries.get(line)
        back_invs: list[BackInvalidation] = []
        if entry is not None:
            self._entries.move_to_end(line)
            return entry, back_invs
        if self.capacity is not None and len(self._entries) >= self.capacity:
            _, victim = self._entries.popitem(last=False)
            self.stats.evictions += 1
            if victim.sharers:
                self.stats.back_invalidations += 1
                back_invs.append(
                    BackInvalidation(
                        line=victim.line,
                        cpus=frozenset(victim.sharers),
                        is_page_table=victim.is_page_table,
                    )
                )
        entry = DirectoryEntry(line=line)
        self._entries[line] = entry
        self.stats.allocations += 1
        return entry, back_invs

    # ------------------------------------------------------------------
    # fills and evictions
    # ------------------------------------------------------------------
    def record_fill(
        self,
        line: int,
        cpu: int,
        kind: SharerKind = SharerKind.CACHE,
        is_nested_pt: bool = False,
        is_guest_pt: bool = False,
    ) -> list[BackInvalidation]:
        """Record that ``cpu`` now caches ``line`` in the given structure.

        Returns back-invalidations caused by any directory entry evicted
        to make room.
        """
        self._check_cpu(cpu)
        entry, back_invs = self._get_or_allocate(line)
        entry.sharers.add(cpu)
        entry.is_nested_pt = entry.is_nested_pt or is_nested_pt
        entry.is_guest_pt = entry.is_guest_pt or is_guest_pt
        if self.fine_grained:
            entry.fine_sharers.setdefault(kind, set()).add(cpu)
        return back_invs

    def record_eviction(
        self, line: int, cpu: int, kind: SharerKind = SharerKind.CACHE
    ) -> None:
        """Record that ``cpu`` dropped ``line`` from the given structure.

        For page-table lines under lazy updates the sharer list is left
        untouched (Section 4.2, "Cache and translation structure
        evictions"); the CPU is demoted later, when it receives a
        spurious invalidation.
        """
        self._check_cpu(cpu)
        entry = self._entries.get(line)
        if entry is None:
            return
        if self.fine_grained and kind in entry.fine_sharers:
            entry.fine_sharers[kind].discard(cpu)
        if entry.is_page_table and self.lazy_pt_sharer_updates:
            return
        if self.fine_grained:
            still_shared = any(cpu in s for s in entry.fine_sharers.values())
            if still_shared:
                return
        entry.sharers.discard(cpu)
        if not entry.sharers:
            self._entries.pop(line, None)

    def demote_sharer(self, line: int, cpu: int) -> None:
        """Remove ``cpu`` from a line's sharer list after a spurious message."""
        entry = self._entries.get(line)
        if entry is None:
            return
        entry.sharers.discard(cpu)
        for sharers in entry.fine_sharers.values():
            sharers.discard(cpu)
        self.stats.sharer_demotions += 1
        if not entry.sharers:
            self._entries.pop(line, None)

    # ------------------------------------------------------------------
    # writes (the interesting path for translation coherence)
    # ------------------------------------------------------------------
    def record_write(self, line: int, writer: int) -> WriteOutcome:
        """Notify the directory that ``writer`` modifies ``line``.

        Returns which other CPUs must be sent invalidations and whether
        the line is marked as page-table data.  The writer becomes the
        exclusive owner.
        """
        self._check_cpu(writer)
        entry, _ = self._get_or_allocate(line)
        if entry.is_page_table:
            self.stats.pt_writes_observed += 1
        if self.fine_grained and entry.fine_sharers:
            targets: set[int] = set()
            for sharers in entry.fine_sharers.values():
                targets |= sharers
            targets.discard(writer)
        else:
            targets = set(entry.sharers)
            targets.discard(writer)
        self.stats.invalidations_sent += len(targets)
        outcome = WriteOutcome(
            invalidate_cpus=frozenset(targets),
            is_nested_pt=entry.is_nested_pt,
            is_guest_pt=entry.is_guest_pt,
        )
        entry.sharers = {writer}
        entry.owner = writer
        if self.fine_grained:
            entry.fine_sharers = {SharerKind.CACHE: {writer}}
        return outcome

    def note_spurious_invalidation(self, line: int, cpu: int) -> None:
        """Count a spurious invalidation and lazily demote the sharer."""
        self.stats.spurious_invalidations += 1
        self.demote_sharer(line, cpu)

    def mark_page_table_line(
        self, line: int, nested: bool = False, guest: bool = False
    ) -> list[BackInvalidation]:
        """Set the nPT/gPT bits of a line's entry (walker-initiated).

        The page table walker sends this message when it fills a
        translation from a line whose accessed bit shows it has never
        been walked before (Section 4.2, "Directory entry changes").
        """
        entry, back_invs = self._get_or_allocate(line)
        entry.is_nested_pt = entry.is_nested_pt or nested
        entry.is_guest_pt = entry.is_guest_pt or guest
        return back_invs

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def sharers_of(self, line: int) -> frozenset[int]:
        """Return the current sharer set of ``line`` (empty if untracked)."""
        entry = self._entries.get(line)
        if entry is None:
            return frozenset()
        return frozenset(entry.sharers)

    def __len__(self) -> int:
        return len(self._entries)

    def _check_cpu(self, cpu: int) -> None:
        if not 0 <= cpu < self.num_cpus:
            raise ValueError(f"cpu {cpu} out of range 0..{self.num_cpus - 1}")
