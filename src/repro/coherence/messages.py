"""Coherence message types exchanged between CPUs and the directory.

The simulator does not model an interconnect cycle-by-cycle; messages
are accounted for (count and latency) so that HATRIC's extra traffic and
the software baseline's IPI storms can be compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional


class MessageType(Enum):
    """Kinds of coherence traffic the directory generates or receives."""

    READ_REQUEST = "read"
    WRITE_REQUEST = "write"
    INVALIDATE = "invalidate"
    BACK_INVALIDATE = "back-invalidate"
    SHARER_DEMOTION = "sharer-demotion"
    ACKNOWLEDGE = "ack"


@dataclass(frozen=True)
class CoherenceMessage:
    """One coherence message, used for accounting and tests.

    Attributes:
        kind: what the message asks for.
        line: cache-line address the message concerns.
        source: CPU id (or None for the directory) that sent the message.
        destination: CPU id (or None for the directory) that receives it.
        is_page_table: True when the line holds page table entries, in
            which case HATRIC also delivers it to translation structures.
    """

    kind: MessageType
    line: int
    source: Optional[int]
    destination: Optional[int]
    is_page_table: bool = False
