"""MESI coherence states.

Translation structures are read-only, so their entries only ever use the
Shared and Invalid states (realised as presence/absence in the
structures); private data caches use the full MESI set.  HATRIC layers
on top of the protocol without adding states (Section 4.2).
"""

from __future__ import annotations

from enum import Enum


class MESIState(Enum):
    """Classic MESI cache-line states."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def is_valid(self) -> bool:
        """Return True for any state other than Invalid."""
        return self is not MESIState.INVALID

    @property
    def can_write(self) -> bool:
        """Return True if a local write needs no further coherence action."""
        return self in (MESIState.MODIFIED, MESIState.EXCLUSIVE)
