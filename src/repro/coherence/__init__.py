"""Cache coherence substrate.

A directory-based MESI protocol with dual-grain directories (after
Zebchuk et al., MICRO 2013, which the paper builds on).  HATRIC extends
the directory entries with nPT/gPT bits and delivers invalidations for
page-table lines to translation structures as well as private caches.
"""

from repro.coherence.mesi import MESIState
from repro.coherence.messages import CoherenceMessage, MessageType
from repro.coherence.directory import (
    CoherenceDirectory,
    DirectoryEntry,
    DirectoryStats,
    SharerKind,
)

__all__ = [
    "CoherenceDirectory",
    "CoherenceMessage",
    "DirectoryEntry",
    "DirectoryStats",
    "MESIState",
    "MessageType",
    "SharerKind",
]
