"""Virtualization substrate: VMs, guest processes, hypervisors and paging policies."""

from repro.virt.vm import GuestProcess, VirtualMachine
from repro.virt.paging import ClockPolicy, FifoPolicy, PagingPolicy, make_policy
from repro.virt.hypervisor import Hypervisor
from repro.virt.kvm import KvmHypervisor
from repro.virt.xen import XenHypervisor

__all__ = [
    "ClockPolicy",
    "FifoPolicy",
    "GuestProcess",
    "Hypervisor",
    "KvmHypervisor",
    "PagingPolicy",
    "VirtualMachine",
    "XenHypervisor",
    "make_policy",
]
