"""Hypervisor model: nested page table management and two-tier paging.

The hypervisor owns system physical memory.  It backs guest page table
pages eagerly (pinned), backs data pages on nested page faults, and --
in the ``paged`` placement mode -- migrates data pages between off-chip
and die-stacked DRAM the way the paper's modified KVM does (Section 3.1):

* an access to a page that is not resident in die-stacked DRAM takes a
  nested page fault and the page is migrated in on demand;
* when die-stacked DRAM fills up, a victim chosen by the paging policy is
  copied out to off-chip DRAM and its nested page table entry is torn
  down -- *this* is the remap that requires translation coherence,
  because other CPUs may still cache translations pointing at the old
  die-stacked frame;
* an optional migration daemon performs evictions in the background so
  their initiator-side cost stays off the critical path;
* optional prefetching migrates adjacent previously-evicted pages along
  with the demanded one.
"""

from __future__ import annotations

from typing import Optional

from repro.core.protocol import RemapEvent, TranslationCoherenceProtocol
from repro.cpu.chip import Chip
from repro.mem.memory import MemoryTier, OutOfMemoryError
from repro.sim.config import (
    PLACEMENT_FAST_ONLY,
    PLACEMENT_PAGED,
    PLACEMENT_SLOW_ONLY,
    SystemConfig,
)
from repro.sim.stats import MachineStats
from repro.virt.paging import make_policy
from repro.virt.vm import GuestProcess, VirtualMachine

PageKey = tuple[int, int]


class Hypervisor:
    """Base hypervisor model (KVM and Xen specialise the cost profile)."""

    name = "generic"

    def __init__(
        self,
        chip: Chip,
        config: SystemConfig,
        protocol: TranslationCoherenceProtocol,
        stats: MachineStats,
    ) -> None:
        self.chip = chip
        self.config = config
        self.protocol = protocol
        self.stats = stats
        self.costs = config.costs
        self.memory = chip.memory
        self.policy = make_policy(config.paging.policy)
        self._vms: dict[int, VirtualMachine] = {}
        #: data pages resident in die-stacked DRAM: (vm_id, gpp) -> fast SPP
        self.resident: dict[PageKey, int] = {}
        #: reverse map used on the hot access path: fast SPP -> (vm_id, gpp)
        self._resident_by_spp: dict[int, PageKey] = {}
        #: evicted data pages parked in off-chip DRAM: (vm_id, gpp) -> slow SPP
        self.backing: dict[PageKey, int] = {}
        #: accesses observed since the last defragmentation remap.
        self._accesses_since_defrag = 0
        #: per-VM caps on resident die-stacked data pages (static memory
        #: partitioning between consolidated guests); absent = the VM
        #: competes in the shared global pool.
        self._vm_fast_caps: dict[int, int] = {}
        #: per-VM insertion-ordered resident keys: cap enforcement reads
        #: a VM's residency as the map's length and its oldest resident
        #: page as the first key, both O(1).
        self._vm_pages: dict[int, dict[PageKey, None]] = {}

    # ------------------------------------------------------------------
    # VM lifecycle
    # ------------------------------------------------------------------
    def create_vm(self, vcpu_pcpus: list[int]) -> VirtualMachine:
        """Create a VM whose vCPUs are pinned to the given physical CPUs."""
        vm_id = len(self._vms) + 1
        vm = VirtualMachine(
            vm_id=vm_id,
            hypervisor=self,
            vcpu_pcpus=vcpu_pcpus,
            first_asid=vm_id * 1000 + 1,
        )
        self._vms[vm_id] = vm
        return vm

    def vm(self, vm_id: int) -> VirtualMachine:
        """Return a VM by id."""
        return self._vms[vm_id]

    def set_vm_fast_cap(self, vm_id: int, frames: int) -> None:
        """Cap a VM's resident die-stacked data pages at ``frames``.

        Once the VM reaches its cap, faulting in another of its pages
        first evicts the VM's own oldest resident page, so one guest's
        churn cannot displace a partitioned neighbour's hot set.
        """
        if frames <= 0:
            raise ValueError("a VM's fast-tier cap must be positive")
        self._vm_fast_caps[vm_id] = frames

    def _count_vm(self, vm: VirtualMachine, event: str, n: int = 1) -> None:
        """Mirror a global event counter against one guest VM.

        A no-op when the VM carries no stats index (single-VM machines
        and VMs created outside a tracked multi-VM run).
        """
        if vm.stats_index is not None:
            self.stats.count_vm(vm.stats_index, event, n)

    # ------------------------------------------------------------------
    # frame allocation helpers
    # ------------------------------------------------------------------
    def _page_table_tier(self) -> MemoryTier:
        """Tier used for page table pages (pinned, never migrated)."""
        if self.config.placement == PLACEMENT_SLOW_ONLY:
            return self.memory.slow
        return self.memory.fast

    def allocate_nested_table_frame(self) -> int:
        """Allocate a system frame for a nested page table page."""
        tier = self._page_table_tier()
        try:
            return tier.allocate()
        except OutOfMemoryError:
            return self.memory.slow.allocate()

    def back_guest_frame(
        self, vm: VirtualMachine, gpp: int, is_page_table: bool = False
    ) -> None:
        """Back a guest frame with system memory immediately (pinned)."""
        tier = self._page_table_tier()
        try:
            spp = tier.allocate()
        except OutOfMemoryError:
            spp = self.memory.slow.allocate()
        vm.nested_page_table.map(gpp, spp)

    # ------------------------------------------------------------------
    # nested fault handling and paging
    # ------------------------------------------------------------------
    def handle_nested_fault(
        self, process: GuestProcess, gpp: int, cpu: int
    ) -> int:
        """Handle a nested page fault for a data page; return cycles charged."""
        self.stats.count("paging.nested_faults")
        self._count_vm(process.vm, "paging.nested_faults")
        placement = self.config.placement
        if placement == PLACEMENT_SLOW_ONLY:
            return self._map_simple(process.vm, gpp, self.memory.slow)
        if placement == PLACEMENT_FAST_ONLY:
            return self._map_simple(process.vm, gpp, self.memory.fast)
        return self._handle_paged_fault(process, gpp, cpu)

    def _map_simple(self, vm: VirtualMachine, gpp: int, tier: MemoryTier) -> int:
        spp = tier.allocate()
        vm.nested_page_table.map(gpp, spp)
        self.stats.count("paging.first_touch")
        self._count_vm(vm, "paging.first_touch")
        return self.costs.page_fault_overhead

    def _handle_paged_fault(
        self, process: GuestProcess, gpp: int, cpu: int
    ) -> int:
        vm = process.vm
        cycles, _ = self._fault_in(vm, gpp, cpu, charge_fault_overhead=True)

        prefetch = self.config.paging.prefetch_pages
        for offset in range(1, prefetch + 1):
            neighbour = gpp + offset
            key = (vm.vm_id, neighbour)
            if key in self.resident or key not in self.backing:
                continue
            extra, _ = self._fault_in(
                vm, neighbour, cpu, charge_fault_overhead=False
            )
            cycles += extra
            self.stats.count("paging.prefetches")
            self._count_vm(vm, "paging.prefetches")

        if self.config.paging.migration_daemon:
            self._run_migration_daemon(cpu)
        return cycles

    def _fault_in(
        self,
        vm: VirtualMachine,
        gpp: int,
        cpu: int,
        charge_fault_overhead: bool,
    ) -> tuple[int, int]:
        """Bring one data page into die-stacked DRAM; return (cycles, spp)."""
        key = (vm.vm_id, gpp)
        cycles = self.costs.page_fault_overhead if charge_fault_overhead else 0

        cap = self._vm_fast_caps.get(vm.vm_id)
        if cap is not None:
            while len(self._vm_pages.get(vm.vm_id, ())) >= cap:
                evicted = self._evict_one(
                    cpu, background=False, victim=self._own_victim(vm.vm_id)
                )
                if evicted == 0:  # pragma: no cover - cap implies residents
                    break
                cycles += evicted
        while self.memory.fast.free_frames < 1:
            evicted = self._evict_one(cpu, background=False)
            if evicted == 0:
                raise OutOfMemoryError(
                    "die-stacked DRAM exhausted and nothing can be evicted"
                )
            cycles += evicted

        fast_spp = self.memory.fast.allocate()
        if key in self.backing:
            slow_spp = self.backing.pop(key)
            self.memory.slow.free(slow_spp)
            cycles += self.costs.page_copy
            self.stats.count("paging.demand_migrations")
            self._count_vm(vm, "paging.demand_migrations")
        else:
            # First touch: zero-fill, roughly half a page copy's traffic.
            cycles += self.costs.page_copy // 2
            self.stats.count("paging.first_touch")
            self._count_vm(vm, "paging.first_touch")

        vm.nested_page_table.map(gpp, fast_spp)
        self.resident[key] = fast_spp
        self._resident_by_spp[fast_spp] = key
        self._vm_pages.setdefault(vm.vm_id, {})[key] = None
        self.policy.on_page_resident(key)
        return cycles, fast_spp

    def _own_victim(self, vm_id: int) -> Optional[PageKey]:
        """The capped VM's own eviction victim: its oldest resident page.

        The per-VM key map is insertion-ordered (pages re-enter it on
        every fault-in), so its first key is the VM's oldest resident
        page -- FIFO within the partition, deterministic.
        """
        pages = self._vm_pages.get(vm_id)
        if not pages:
            return None
        return next(iter(pages))

    def _evict_one(
        self,
        initiator_cpu: int,
        background: bool,
        victim: Optional[PageKey] = None,
    ) -> int:
        """Evict one page from die-stacked DRAM; return initiator cycles.

        ``victim`` overrides the paging policy's global choice (used by
        per-VM cap enforcement to evict the capped guest's own page).
        """
        key = victim if victim is not None else self.policy.select_victim()
        if key is None:
            return 0
        vm_id, gpp = key
        vm = self._vms[vm_id]
        fast_spp = self.resident.pop(key)
        self._resident_by_spp.pop(fast_spp, None)
        vm_pages = self._vm_pages.get(vm_id)
        if vm_pages is not None:
            vm_pages.pop(key, None)
        leaf = vm.nested_page_table.lookup(gpp)
        pte_address = leaf.address
        old_spp = leaf.pfn

        slow_spp = self.memory.slow.allocate()
        vm.nested_page_table.unmap(gpp)
        self.backing[key] = slow_spp
        self.memory.fast.free(fast_spp)
        self.policy.on_page_evicted(key)

        cycles = self.costs.page_copy
        if background:
            self.stats.charge_background(cycles)
        else:
            self.stats.charge_cpu(initiator_cpu, cycles)
        self.stats.count("paging.evictions")
        self._count_vm(vm, "paging.evictions")
        self._count_vm(vm, "coherence.remaps")

        event = RemapEvent(
            initiator_cpu=initiator_cpu,
            target_cpus=vm.target_cpus,
            gpp=gpp,
            old_spp=old_spp,
            new_spp=None,
            pte_address=pte_address,
            vm_id=vm_id,
            background=background,
        )
        self.protocol.on_nested_remap(event)
        return cycles

    def _run_migration_daemon(self, cpu: int) -> None:
        """Keep a pool of free die-stacked frames, evicting in the background."""
        target = self.config.paging.daemon_free_target
        if self.memory.fast.free_frames >= target:
            return
        self.stats.charge_background(self.costs.daemon_wakeup)
        self.stats.count("paging.daemon_wakeups")
        while self.memory.fast.free_frames < target:
            if self._evict_one(cpu, background=True) == 0:
                break

    # ------------------------------------------------------------------
    # access-time hooks
    # ------------------------------------------------------------------
    def on_data_access(self, spp: int, cpu: int) -> int:
        """Observe a data access; return any cycles charged to the CPU.

        Keeps the paging policy's recency state up to date and, when the
        defragmentation knob is enabled, periodically remaps a resident
        page within die-stacked DRAM the way a real hypervisor compacts
        memory to create superpages -- a translation-coherence event that
        occurs even for workloads that never page to off-chip DRAM.
        """
        if self.config.placement != PLACEMENT_PAGED:
            return 0
        key = self._resident_by_spp.get(spp)
        if key is not None:
            self.policy.on_access(key)
        interval = self.config.paging.defrag_interval
        if interval <= 0:
            return 0
        self._accesses_since_defrag += 1
        if self._accesses_since_defrag < interval:
            return 0
        self._accesses_since_defrag = 0
        return self._defragment_one(cpu)

    def _defragment_one(self, cpu: int) -> int:
        """Remap one resident page to a different die-stacked frame."""
        if not self.resident or self.memory.fast.free_frames < 1:
            return 0
        key = next(iter(self.resident))
        vm_id, gpp = key
        vm = self._vms[vm_id]
        old_spp = self.resident[key]
        new_spp = self.memory.fast.allocate()
        leaf = vm.nested_page_table.remap(gpp, new_spp)
        self.memory.fast.free(old_spp)
        self._resident_by_spp.pop(old_spp, None)
        self.resident[key] = new_spp
        self._resident_by_spp[new_spp] = key
        cycles = self.costs.page_copy
        self.stats.charge_cpu(cpu, cycles)
        self.stats.count("paging.defrag_remaps")
        self._count_vm(vm, "paging.defrag_remaps")
        self._count_vm(vm, "coherence.remaps")
        event = RemapEvent(
            initiator_cpu=cpu,
            target_cpus=vm.target_cpus,
            gpp=gpp,
            old_spp=old_spp,
            new_spp=new_spp,
            pte_address=leaf.address,
            vm_id=vm_id,
            background=False,
        )
        self.protocol.on_nested_remap(event)
        return cycles

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def resident_pages(self) -> int:
        """Data pages currently resident in die-stacked DRAM."""
        return len(self.resident)

    @property
    def evicted_pages(self) -> int:
        """Data pages currently parked in off-chip DRAM."""
        return len(self.backing)

    def resident_pages_of(self, vm_id: int) -> int:
        """Data pages one VM currently keeps in die-stacked DRAM."""
        return len(self._vm_pages.get(vm_id, ()))

    @classmethod
    def adjust_costs(cls, costs):
        """Return the cost model adjusted for this hypervisor's software stack."""
        return costs
