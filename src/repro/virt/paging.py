"""Hypervisor paging policies for the die-stacked DRAM tier.

Section 5.2 of the paper studies FIFO and (pseudo-)LRU eviction, a
migration daemon that keeps a pool of free die-stacked frames so
evictions stay off the critical path, and prefetching of adjacent pages.
The policies here decide *which* resident page to evict; the migration
mechanics live in :mod:`repro.virt.hypervisor`.

Pages are identified by ``(vm_id, gpp)`` keys so a single policy
instance can manage die-stacked DRAM shared by several VMs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Hashable, Optional

PageKey = Hashable


class PagingPolicy(ABC):
    """Chooses eviction victims among pages resident in the fast tier."""

    name: str = "abstract"

    @abstractmethod
    def on_page_resident(self, key: PageKey) -> None:
        """A page became resident in the fast tier."""

    @abstractmethod
    def on_access(self, key: PageKey) -> None:
        """A resident page was accessed."""

    @abstractmethod
    def on_page_evicted(self, key: PageKey) -> None:
        """A page was removed from the fast tier."""

    @abstractmethod
    def select_victim(self) -> Optional[PageKey]:
        """Return the next page to evict, or None if nothing is resident."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of pages the policy currently tracks."""


class FifoPolicy(PagingPolicy):
    """Evict pages in the order they became resident.

    The queue is an insertion-ordered map so that pages evicted by the
    caller *without* going through :meth:`select_victim` (per-VM memory
    cap enforcement picks its own victims) leave no stale queue entry
    behind -- a stale entry would make a later global eviction pick a
    just-re-faulted page instead of the true oldest resident.
    """

    name = "fifo"

    def __init__(self) -> None:
        self._queue: OrderedDict[PageKey, None] = OrderedDict()

    def on_page_resident(self, key: PageKey) -> None:
        self._queue.setdefault(key, None)

    def on_access(self, key: PageKey) -> None:
        # FIFO ignores recency.
        return

    def on_page_evicted(self, key: PageKey) -> None:
        self._queue.pop(key, None)

    def select_victim(self) -> Optional[PageKey]:
        if not self._queue:
            return None
        # The caller will confirm the eviction via on_page_evicted;
        # remove the key now so repeated calls do not return the same
        # victim.
        key, _ = self._queue.popitem(last=False)
        return key

    def __len__(self) -> int:
        return len(self._queue)


class ClockPolicy(PagingPolicy):
    """Pseudo-LRU CLOCK policy, as KVM's use of Linux's CLOCK in the paper.

    Each resident page has a reference bit that accesses set.  The clock
    hand sweeps the resident list: pages with the bit set get a second
    chance (bit cleared, moved to the back), the first page found with a
    clear bit is the victim.
    """

    name = "lru"

    def __init__(self) -> None:
        self._pages: OrderedDict[PageKey, bool] = OrderedDict()

    def on_page_resident(self, key: PageKey) -> None:
        self._pages[key] = True
        self._pages.move_to_end(key)

    def on_access(self, key: PageKey) -> None:
        if key in self._pages:
            self._pages[key] = True

    def on_page_evicted(self, key: PageKey) -> None:
        self._pages.pop(key, None)

    def select_victim(self) -> Optional[PageKey]:
        sweeps = 0
        limit = 2 * len(self._pages) + 1
        while self._pages and sweeps < limit:
            key, referenced = next(iter(self._pages.items()))
            if referenced:
                self._pages[key] = False
                self._pages.move_to_end(key)
                sweeps += 1
                continue
            del self._pages[key]
            return key
        if not self._pages:
            return None
        # Every page was referenced during the sweep; fall back to the
        # oldest one.
        key, _ = self._pages.popitem(last=False)
        return key

    def __len__(self) -> int:
        return len(self._pages)


_POLICIES: dict[str, type[PagingPolicy]] = {
    FifoPolicy.name: FifoPolicy,
    ClockPolicy.name: ClockPolicy,
}


def make_policy(name: str) -> PagingPolicy:
    """Instantiate a paging policy by name (``"fifo"`` or ``"lru"``)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown paging policy {name!r}; known: {known}")
