"""KVM hypervisor model.

KVM is the hypervisor the paper evaluates in detail (Sections 5 and 6).
The generic :class:`~repro.virt.hypervisor.Hypervisor` already models
KVM's behaviour -- per-vCPU TLB flush request bits, IPI loops, VM exits
on every target -- so this subclass only pins the name and keeps the
measured Haswell/KVM cost profile unchanged.
"""

from __future__ import annotations

from repro.sim.costs import CostModel
from repro.virt.hypervisor import Hypervisor


class KvmHypervisor(Hypervisor):
    """KVM: the default hypervisor cost profile."""

    name = "kvm"

    @classmethod
    def adjust_costs(cls, costs: CostModel) -> CostModel:
        """KVM uses the baseline cost model unmodified."""
        return costs
