"""Xen hypervisor model.

The paper reports Xen results for canneal and data caching (Section 6,
"Xen results"): HATRIC improves them by 21% and 33% over the best
software paging policy.  Xen's translation coherence path differs from
KVM's in software structure -- hypercall-based shootdowns, a slightly
heavier VM entry/exit path, and per-domain rather than per-vCPU flush
bookkeeping -- which we capture as a modest scaling of the
software-mechanism costs.  HATRIC itself is hypervisor-agnostic, so its
hardware costs are untouched.
"""

from __future__ import annotations

from repro.sim.costs import CostModel
from repro.virt.hypervisor import Hypervisor


class XenHypervisor(Hypervisor):
    """Xen: heavier software shootdown path, identical hardware path."""

    name = "xen"

    @classmethod
    def adjust_costs(cls, costs: CostModel) -> CostModel:
        """Scale the software-visible virtualization costs for Xen."""
        return costs.with_overrides(
            vm_exit=int(costs.vm_exit * 1.15),
            vm_entry=int(costs.vm_entry * 1.15),
            shootdown_setup=int(costs.shootdown_setup * 1.3),
            ipi_send=int(costs.ipi_send * 1.1),
            page_fault_overhead=int(costs.page_fault_overhead * 1.1),
        )
