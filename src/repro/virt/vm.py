"""Virtual machines, vCPUs and guest processes.

A :class:`VirtualMachine` owns the nested page table (one per VM, managed
by the hypervisor) and a guest physical address space.  Inside it live
one or more :class:`GuestProcess` instances, each with its own guest page
table -- the distinction matters for the paper's multiprogrammed
experiments (Figure 10): the hypervisor only knows which physical CPUs a
*VM* has run on, not which ones a given *process* used, so software
translation coherence over-invalidates across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.translation.page_table import GuestPageTable, NestedPageTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.virt.hypervisor import Hypervisor


@dataclass
class VCpu:
    """One virtual CPU, pinned to a physical CPU for the whole run."""

    vcpu_id: int
    pcpu: int


class GuestProcess:
    """One process (address space) inside a guest VM.

    The process doubles as the walker's address-space context: its
    ``vm_id`` attribute is a globally unique address space identifier
    (ASID), so translations of different processes never alias in the
    TLBs even though they share the VM's nested page table.
    """

    def __init__(self, asid: int, vm: "VirtualMachine") -> None:
        self.asid = asid
        self.vm = vm
        self.guest_page_table = GuestPageTable(vm.allocate_guest_table_frame)
        self.guest_root_gpp = self.guest_page_table.root.page_number

    # The walker's AddressSpaceContext protocol -------------------------
    @property
    def vm_id(self) -> int:
        """Address space tag used by translation structure lookups."""
        return self.asid

    @property
    def nested_page_table(self) -> NestedPageTable:
        """The owning VM's nested page table."""
        return self.vm.nested_page_table

    # Guest OS behaviour -------------------------------------------------
    def ensure_guest_mapping(self, gvp: int) -> int:
        """Map ``gvp`` on first touch (guest OS demand allocation).

        Returns the guest physical page backing the virtual page.
        """
        entry = self.guest_page_table.lookup(gvp)
        if entry is not None:
            return entry.pfn
        gpp = self.vm.allocate_guest_data_frame()
        self.guest_page_table.map(gvp, gpp)
        return gpp

    def gpp_of(self, gvp: int) -> Optional[int]:
        """Return the GPP currently mapped for ``gvp``, if any."""
        entry = self.guest_page_table.lookup(gvp)
        return entry.pfn if entry is not None else None


class VirtualMachine:
    """A guest VM: nested page table, guest physical memory, vCPUs."""

    def __init__(
        self,
        vm_id: int,
        hypervisor: "Hypervisor",
        vcpu_pcpus: list[int],
        first_asid: int = 1,
    ) -> None:
        self.vm_id = vm_id
        self.hypervisor = hypervisor
        #: index of this VM in the machine's per-VM statistics
        #: (:attr:`repro.sim.stats.MachineStats.vms`); None when the run
        #: does not track per-VM counters.
        self.stats_index: Optional[int] = None
        self.vcpus = [VCpu(i, pcpu) for i, pcpu in enumerate(vcpu_pcpus)]
        self.nested_page_table = NestedPageTable(
            hypervisor.allocate_nested_table_frame
        )
        self._next_gpp = 1
        self._next_asid = first_asid
        self.processes: list[GuestProcess] = []

    # ------------------------------------------------------------------
    # guest physical memory management
    # ------------------------------------------------------------------
    def allocate_guest_table_frame(self) -> int:
        """Allocate a guest frame for a guest page table page.

        Page table pages are immediately backed with system memory (the
        hypervisor pins them), so page walks never take nested faults on
        the guest page table itself.
        """
        gpp = self._next_gpp
        self._next_gpp += 1
        self.hypervisor.back_guest_frame(self, gpp, is_page_table=True)
        return gpp

    def allocate_guest_data_frame(self) -> int:
        """Allocate a guest frame for data; backed lazily on first access."""
        gpp = self._next_gpp
        self._next_gpp += 1
        return gpp

    # ------------------------------------------------------------------
    # processes and CPUs
    # ------------------------------------------------------------------
    def create_process(self) -> GuestProcess:
        """Create a new guest process with its own guest page table."""
        process = GuestProcess(self._next_asid, self)
        self._next_asid += 1
        self.processes.append(process)
        return process

    @property
    def num_vcpus(self) -> int:
        """Number of virtual CPUs configured for this VM."""
        return len(self.vcpus)

    @property
    def target_cpus(self) -> list[int]:
        """Physical CPUs that may hold this VM's translations.

        The hypervisor tracks VM-to-physical-CPU affinity only at VM
        granularity, so this is the conservative set software translation
        coherence must interrupt.
        """
        return sorted({vcpu.pcpu for vcpu in self.vcpus})

    def pcpu_of(self, vcpu_id: int) -> int:
        """Return the physical CPU a vCPU is pinned to."""
        return self.vcpus[vcpu_id].pcpu
