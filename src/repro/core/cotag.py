"""Co-tags: the tag extensions HATRIC adds to translation structures.

A co-tag stores (a subset of the bits of) the *system physical address of
the nested page table entry* a cached translation was filled from
(Section 4.1).  Because the hypervisor knows which nested page table
entry it modified -- but not the guest virtual address of the affected
translations -- co-tags let translation structures be invalidated
precisely without any guest involvement.

Full 8-byte addresses would double TLB entry size, so HATRIC truncates
the co-tag.  Cache coherence operates at 64-byte cache-line granularity
(8 PTEs per line), so the three line-offset bits carry no information
and are dropped; the remaining least-significant (highest-entropy) bits
are kept up to the configured width.  Narrow co-tags therefore alias:
nested page table entries whose line addresses agree in the kept bits
invalidate each other's cached translations.  The paper's Figure 11
(right) sweeps this width; 2 bytes is the design point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.translation.address import CACHE_LINE_SIZE


@dataclass(frozen=True)
class CoTagScheme:
    """Co-tag encoding parameters.

    Attributes:
        size_bytes: storage dedicated to the co-tag in every translation
            structure entry (the paper studies 1, 2 and 3 bytes).
    """

    size_bytes: int = 2

    def __post_init__(self) -> None:
        if self.size_bytes < 1:
            raise ValueError("co-tags need at least one byte")

    @property
    def bits(self) -> int:
        """Number of address bits retained in the co-tag."""
        return self.size_bytes * 8

    @property
    def line_shift(self) -> int:
        """Bits dropped below the co-tag: the cache-line offset."""
        return CACHE_LINE_SIZE.bit_length() - 1

    def cotag_of(self, pte_address: int) -> int:
        """Compute the co-tag for a page table entry at ``pte_address``.

        The entry's cache-line address is truncated to the configured
        number of bits.  Two entries in the same cache line always share
        a co-tag (coherence cannot distinguish them); entries in distinct
        lines may still collide if the co-tag is narrow.
        """
        line = pte_address >> self.line_shift
        return line & ((1 << self.bits) - 1)

    def aliases(self, address_a: int, address_b: int) -> bool:
        """Return True if two PTE addresses map to the same co-tag."""
        return self.cotag_of(address_a) == self.cotag_of(address_b)


#: The paper's chosen design point: 2-byte co-tags (bits 19..3 of the
#: nested page table entry's system physical address).
DEFAULT_COTAG_SCHEME = CoTagScheme(size_bytes=2)
