"""HATRIC: hardware translation invalidation and coherence.

HATRIC (Section 4) folds translation coherence into the existing
directory-based cache coherence protocol:

* translation structure entries carry *co-tags* -- truncated system
  physical addresses of the nested page table entries they were filled
  from -- so they can be identified without knowing the guest virtual
  address;
* the coherence directory's sharer lists (extended with nPT/gPT bits)
  already name the CPUs that may cache the affected page table line, in
  their private caches *or* translation structures;
* when the hypervisor's store to the nested page table entry reaches the
  directory, invalidation messages flow to exactly those CPUs, which
  drop matching cache lines and co-tag-matching translation entries in
  hardware -- no IPIs, no VM exits, no flushes.
"""

from __future__ import annotations

from repro.core.cotag import CoTagScheme, DEFAULT_COTAG_SCHEME
from repro.core.protocol import (
    RemapCost,
    RemapEvent,
    TranslationCoherenceProtocol,
    register_protocol,
)
from repro.translation.address import cache_line_of


@register_protocol
class Hatric(TranslationCoherenceProtocol):
    """The paper's proposed mechanism (``hatric`` in the figures)."""

    name = "hatric"
    uses_cotags = True
    tracks_translation_sharers = True

    def __init__(self, cotag_scheme: CoTagScheme | None = None) -> None:
        super().__init__()
        self.cotag_scheme = cotag_scheme or DEFAULT_COTAG_SCHEME

    def on_nested_remap(self, event: RemapEvent) -> RemapCost:
        assert self.chip is not None and self.stats is not None and self.costs is not None
        chip, stats, costs = self.chip, self.stats, self.costs
        cost = RemapCost()

        line = cache_line_of(event.pte_address)
        cotag = self.cotag_scheme.cotag_of(event.pte_address)
        stats.count("coherence.remaps")

        # The hypervisor's store transitions the line towards Modified;
        # the directory replies with the sharer list.
        outcome = chip.page_table_write(line, event.initiator_cpu)
        initiator_cycles = costs.directory_lookup + costs.coherence_message
        self._charge_initiator(event, initiator_cycles, cost)

        # The initiator's own structures may cache the stale translation;
        # the local co-tag match happens as part of the store.
        own_report = chip.core(event.initiator_cpu).invalidate_by_cotag(cotag)
        stats.count(
            "hatric.invalidated_entries", own_report.translation_entries
        )

        page_table_line = outcome.is_nested_pt or outcome.is_guest_pt
        for cpu in outcome.invalidate_cpus:
            core = chip.core(cpu)
            held_cache = core.invalidate_private_line(line)
            invalidated = 0
            if page_table_line:
                report = core.invalidate_by_cotag(cotag)
                invalidated = report.translation_entries
                stats.count("hatric.invalidated_entries", invalidated)
                stats.count("hatric.cotag_searches", 4)
            stats.count("hatric.invalidation_messages")
            # Target-side handling is pure hardware: the co-tag CAM search
            # overlaps with execution, so only a small cost is charged.
            target_cycles = costs.coherence_message + 4 * costs.cotag_search
            self._charge_target(cpu, target_cycles, cost)
            if not held_cache and invalidated == 0:
                chip.note_spurious(line, cpu)

        return cost
