"""Software translation coherence: today's IPI + VM exit + flush baseline.

This is the mechanism Section 3.2 of the paper dissects (Figure 3):

1. the hypervisor sets the TLB-flush-request bit of *every* vCPU of the
   VM (it cannot tell which CPUs actually cache the stale translation);
2. it sends an IPI to every physical CPU running one of those vCPUs and
   waits for acknowledgments;
3. each target takes a VM exit, flushes its TLBs, MMU cache and nTLB
   completely (x86 has no instruction to selectively invalidate a TLB
   entry by guest *physical* address, and none at all for MMU caches and
   nTLBs), acknowledges, and re-enters the guest.

The costs of every step land on CPU critical paths, and the flushes
force expensive two-dimensional page table walks afterwards.
"""

from __future__ import annotations

from repro.core.protocol import (
    RemapCost,
    RemapEvent,
    TranslationCoherenceProtocol,
    register_protocol,
)
from repro.translation.address import cache_line_of


@register_protocol
class SoftwareShootdown(TranslationCoherenceProtocol):
    """The software shootdown baseline (``sw`` in the paper's figures)."""

    name = "software"
    uses_cotags = False
    tracks_translation_sharers = False

    def on_nested_remap(self, event: RemapEvent) -> RemapCost:
        assert self.chip is not None and self.stats is not None and self.costs is not None
        chip, stats, costs = self.chip, self.stats, self.costs
        cost = RemapCost()

        # The store to the nested PTE still goes through ordinary cache
        # coherence so other private caches drop their copy of the line.
        line = cache_line_of(event.pte_address)
        outcome = chip.page_table_write(line, event.initiator_cpu)
        chip.invalidate_private_caches(line, outcome.invalidate_cpus)

        targets = [c for c in event.target_cpus if c != event.initiator_cpu]
        stats.count("coherence.remaps")
        stats.count("coherence.ipis", len(targets))

        # Initiator: set the per-vCPU flush request bits, fire the IPIs,
        # then spin until every target acknowledges.
        initiator_cycles = (
            costs.shootdown_setup
            + costs.ipi_send * len(targets)
            + costs.ack_wait * len(targets)
            + costs.full_translation_flush
        )
        self._charge_initiator(event, initiator_cycles, cost)

        # The initiator's own translation structures are flushed as well
        # (it will re-enter the guest with the flush request pending).
        report = chip.core(event.initiator_cpu).flush_translation_structures()
        stats.count("coherence.full_flushes")
        stats.count("coherence.flushed_entries", report.translation_entries)

        # Targets: VM exit, flush everything, re-enter the guest.
        for cpu in targets:
            target_cycles = (
                costs.vm_exit + costs.full_translation_flush + costs.vm_entry
            )
            self._charge_target(cpu, target_cycles, cost)
            report = chip.core(cpu).flush_translation_structures()
            stats.count("coherence.vm_exits")
            stats.count("coherence.full_flushes")
            stats.count("coherence.flushed_entries", report.translation_entries)

        return cost
