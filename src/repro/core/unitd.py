"""UNITD++: the upgraded UNITD comparison point (Section 6, Figure 13).

UNITD (Romanescu et al., HPCA 2010) piggybacks TLB coherence on cache
coherence using a reverse-lookup CAM that maps page table entry physical
addresses to TLB entries.  The paper upgrades it for a fair comparison:

* virtualization support -- the CAM stores the system physical address
  of the *nested* page table entry;
* integration with coherence directories.

What UNITD++ still lacks, relative to HATRIC, is coverage of MMU caches
and nested TLBs: those structures must be flushed conservatively on
every remap, and its large reverse-lookup CAM costs more energy per
search than HATRIC's narrow co-tag comparison.
"""

from __future__ import annotations

from repro.core.protocol import (
    RemapCost,
    RemapEvent,
    TranslationCoherenceProtocol,
    register_protocol,
)
from repro.translation.address import cache_line_of


@register_protocol
class UnitdPlusPlus(TranslationCoherenceProtocol):
    """UNITD extended with virtualization support (``unitd++``)."""

    name = "unitd"
    uses_cotags = False
    tracks_translation_sharers = True

    def on_nested_remap(self, event: RemapEvent) -> RemapCost:
        assert self.chip is not None and self.stats is not None and self.costs is not None
        chip, stats, costs = self.chip, self.stats, self.costs
        cost = RemapCost()

        line = cache_line_of(event.pte_address)
        stats.count("coherence.remaps")

        outcome = chip.page_table_write(line, event.initiator_cpu)
        initiator_cycles = costs.directory_lookup + costs.coherence_message
        self._charge_initiator(event, initiator_cycles, cost)

        # The initiator handles its own structures as part of the store.
        own = chip.core(event.initiator_cpu)
        own.invalidate_tlb_by_line(line)
        own_flush = own.flush_mmu_and_ntlb()
        stats.count("unitd.flushed_entries", own_flush.translation_entries)

        page_table_line = outcome.is_nested_pt or outcome.is_guest_pt
        # MMU caches and nTLBs are outside UNITD's reach: they are flushed
        # on every CPU that may run the VM, not just directory sharers.
        conservative_targets = set(event.target_cpus) | set(outcome.invalidate_cpus)
        conservative_targets.discard(event.initiator_cpu)

        for cpu in sorted(conservative_targets):
            core = chip.core(cpu)
            held_cache = False
            tlb_invalidated = 0
            if cpu in outcome.invalidate_cpus:
                held_cache = core.invalidate_private_line(line)
                if page_table_line:
                    report = core.invalidate_tlb_by_line(line)
                    tlb_invalidated = report.translation_entries
                    stats.count("unitd.cam_searches", 2)
                stats.count("unitd.invalidation_messages")
            flush_report = core.flush_mmu_and_ntlb()
            stats.count("unitd.flushed_entries", flush_report.translation_entries)
            stats.count("unitd.tlb_invalidations", tlb_invalidated)
            target_cycles = costs.coherence_message + 2 * costs.unitd_cam_search
            self._charge_target(cpu, target_cycles, cost)
            if (
                cpu in outcome.invalidate_cpus
                and not held_cache
                and tlb_invalidated == 0
            ):
                chip.note_spurious(line, cpu)

        return cost
