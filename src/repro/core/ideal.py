"""Ideal zero-overhead translation coherence.

This is the paper's *achievable* / *ideal* configuration: translation
structures are kept coherent by an oracle that charges no cycles and no
energy.  Stale entries are still removed (correctness is preserved), and
only the stale entries are removed (perfect precision), so the remaining
runtime difference against HATRIC isolates HATRIC's residual overheads.
"""

from __future__ import annotations

from repro.core.protocol import (
    RemapCost,
    RemapEvent,
    TranslationCoherenceProtocol,
    register_protocol,
)
from repro.translation.address import cache_line_of


@register_protocol
class IdealCoherence(TranslationCoherenceProtocol):
    """Zero-cost oracle coherence (``ideal`` in the figures)."""

    name = "ideal"
    uses_cotags = False
    tracks_translation_sharers = False

    def on_nested_remap(self, event: RemapEvent) -> RemapCost:
        assert self.chip is not None and self.stats is not None
        chip, stats = self.chip, self.stats
        stats.count("coherence.remaps")

        # The store still propagates through ordinary cache coherence so
        # the simulated cache contents stay consistent, but no cycles are
        # charged anywhere.
        line = cache_line_of(event.pte_address)
        outcome = chip.page_table_write(line, event.initiator_cpu)
        chip.invalidate_private_caches(line, outcome.invalidate_cpus)

        for core in chip.cores:
            report = core.invalidate_by_pt_line(line)
            stats.count("ideal.invalidated_entries", report.translation_entries)
        return RemapCost()
