"""Translation coherence protocol interface and registry.

A translation coherence protocol is notified whenever privileged
software changes a nested page table entry (the paper's focus) and is
responsible for making sure no CPU keeps using a stale cached
translation -- charging whatever cycles and events its mechanism costs.

Four protocols are provided:

=============  =====================================================
``software``   today's baseline: IPIs, VM exits, full flushes
``unitd``      UNITD++: hardware TLB coherence, MMU cache/nTLB flushed
``hatric``     the paper's contribution: co-tag based selective
               invalidation of all translation structures
``ideal``      zero-overhead oracle (the paper's *ideal*/achievable)
=============  =====================================================
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.sim.costs import CostModel
from repro.sim.stats import MachineStats

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.cpu.chip import Chip


@dataclass
class RemapEvent:
    """Description of one nested page table modification.

    Attributes:
        initiator_cpu: physical CPU running the hypervisor code that
            performs the remap.
        target_cpus: physical CPUs that may hold translations of the VM
            whose page is being remapped -- i.e. every CPU that has run
            one of the VM's vCPUs.  This is the (imprecise) set software
            coherence must conservatively act on.
        gpp: guest physical page being remapped.
        old_spp: system physical page the mapping pointed at before the
            change (None if the page was not previously mapped).
        new_spp: the new system physical page (None for an unmap).
        pte_address: system physical address of the nested L1 page table
            entry that was written.
        vm_id: identifier of the affected VM.
        background: True when the remap was initiated by background
            hypervisor activity (migration daemon) whose initiator-side
            cost should not land on any CPU's critical path.
    """

    initiator_cpu: int
    target_cpus: Sequence[int]
    gpp: int
    old_spp: Optional[int]
    new_spp: Optional[int]
    pte_address: int
    vm_id: int = 0
    background: bool = False


@dataclass
class RemapCost:
    """Cycles a remap charged, split by where they landed."""

    initiator_cycles: int = 0
    target_cycles: dict[int, int] = field(default_factory=dict)

    def total(self) -> int:
        """Total cycles charged anywhere."""
        return self.initiator_cycles + sum(self.target_cycles.values())


class TranslationCoherenceProtocol(ABC):
    """Base class for translation coherence mechanisms."""

    #: registry name, overridden by subclasses.
    name: str = "abstract"
    #: True when translation structure entries must carry co-tags.
    uses_cotags: bool = False
    #: True when the coherence directory must track which CPUs cache
    #: translations (so invalidations can be piggybacked on it).
    tracks_translation_sharers: bool = False

    def __init__(self) -> None:
        self.chip: Optional["Chip"] = None
        self.stats: Optional[MachineStats] = None
        self.costs: Optional[CostModel] = None

    def bind(self, chip: "Chip", stats: MachineStats, costs: CostModel) -> None:
        """Attach the protocol to a simulated machine."""
        self.chip = chip
        self.stats = stats
        self.costs = costs

    @abstractmethod
    def on_nested_remap(self, event: RemapEvent) -> RemapCost:
        """Handle one nested page table change; return the cycles charged."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _charge_initiator(self, event: RemapEvent, cycles: int, cost: RemapCost) -> None:
        """Charge initiator-side cycles (to the CPU or to background work)."""
        assert self.stats is not None
        cost.initiator_cycles += cycles
        if event.background:
            self.stats.charge_background(cycles)
        else:
            self.stats.charge_cpu(event.initiator_cpu, cycles, coherence=True)

    def _charge_target(self, cpu: int, cycles: int, cost: RemapCost) -> None:
        """Charge target-side cycles to a CPU's critical path."""
        assert self.stats is not None
        cost.target_cycles[cpu] = cost.target_cycles.get(cpu, 0) + cycles
        self.stats.charge_cpu(cpu, cycles, coherence=True)


#: Registry mapping protocol names to classes; populated by the concrete
#: protocol modules at import time (see :mod:`repro.core`).
PROTOCOLS: dict[str, type[TranslationCoherenceProtocol]] = {}


def register_protocol(cls: type[TranslationCoherenceProtocol]):
    """Class decorator adding a protocol to :data:`PROTOCOLS`."""
    PROTOCOLS[cls.name] = cls
    return cls


def make_protocol(name: str) -> TranslationCoherenceProtocol:
    """Instantiate a protocol by registry name."""
    # Importing the implementations lazily avoids circular imports when a
    # user imports this module directly.
    from repro.core import hatric, ideal, software, unitd  # noqa: F401

    try:
        return PROTOCOLS[name]()
    except KeyError:
        known = ", ".join(sorted(PROTOCOLS))
        raise ValueError(f"unknown protocol {name!r}; known protocols: {known}")
