"""The paper's contribution: translation coherence protocols.

This subpackage contains HATRIC itself plus every comparison point the
paper evaluates: the software shootdown baseline used by KVM/Xen today,
UNITD++ (UNITD extended with virtualization support), and an ideal
zero-overhead protocol.
"""

from repro.core.cotag import CoTagScheme, DEFAULT_COTAG_SCHEME
from repro.core.protocol import (
    PROTOCOLS,
    RemapEvent,
    TranslationCoherenceProtocol,
    make_protocol,
)
from repro.core.software import SoftwareShootdown
from repro.core.hatric import Hatric
from repro.core.unitd import UnitdPlusPlus
from repro.core.ideal import IdealCoherence

__all__ = [
    "CoTagScheme",
    "DEFAULT_COTAG_SCHEME",
    "Hatric",
    "IdealCoherence",
    "PROTOCOLS",
    "RemapEvent",
    "SoftwareShootdown",
    "TranslationCoherenceProtocol",
    "UnitdPlusPlus",
    "make_protocol",
]
