"""Structured logging for the repro tree.

Every warning and diagnostic message in the codebase routes through
:func:`get_logger` so one knob — ``REPRO_LOG_LEVEL`` — controls
verbosity everywhere.  The function returns the ordinary stdlib logger
for ``name`` (so ``caplog`` fixtures and handler hierarchies keep
working), after installing a single stderr handler on the shared
``repro`` parent logger the first time it is called.

Levels follow :func:`repro.env.env_choice` semantics: unset or empty
means the default (``warning``); an unknown level raises ``ValueError``
naming the variable.
"""

from __future__ import annotations

import logging
import sys

from repro.env import env_choice

LOG_LEVEL_ENV_VAR = "REPRO_LOG_LEVEL"
LOG_LEVELS = ("debug", "info", "warning", "error")
DEFAULT_LOG_LEVEL = "warning"

_ROOT_NAME = "repro"
_FORMAT = "%(levelname)s %(name)s: %(message)s"

_configured = False


def log_level_from_environment() -> str:
    """Return the configured level name, parsing ``REPRO_LOG_LEVEL`` loudly."""

    return env_choice(LOG_LEVEL_ENV_VAR, DEFAULT_LOG_LEVEL, LOG_LEVELS)


def _configure() -> None:
    global _configured
    if _configured:
        return
    level = log_level_from_environment()
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(getattr(logging, level.upper()))
    if not any(isinstance(handler, logging.StreamHandler) for handler in root.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return the stdlib logger for ``name`` with shared repro configuration.

    The logger name is preserved verbatim (``repro.api.cache`` stays
    ``repro.api.cache``) so per-module filtering and test fixtures that
    pin logger names keep working; only the shared ``repro`` parent is
    configured, once per process.
    """

    _configure()
    return logging.getLogger(name)


def reset() -> None:
    """Forget cached configuration so the next get_logger re-reads the env.

    Intended for tests that monkeypatch ``REPRO_LOG_LEVEL``.
    """

    global _configured
    _configured = False
