"""A Prometheus-style metrics registry shared across the repro tree.

The registry holds counters, gauges, and histograms and renders them in
the Prometheus text exposition format (version 0.0.4) — ``# HELP`` /
``# TYPE`` comment lines followed by samples, optionally labelled.  The
serve layer's ``GET /metrics`` endpoint renders its
:class:`~repro.serve.metrics.ServiceMetrics` registry through
:meth:`MetricsRegistry.render`; the same registry backs the ``/stats``
JSON payload so the two surfaces can never disagree on a counter.

Percentile math is NOT re-implemented here: exact quantiles come from
:func:`repro.sim.stats.nearest_rank_percentile` (the single percentile
implementation in the tree, with its empty/range boundary contracts);
histograms only bucket observations for Prometheus-side aggregation.

Layering: this module may import :mod:`repro.sim` and nothing above it.
Store metrics for the api layer are therefore duck-typed — see
:func:`store_snapshot`.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects."""

    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{str(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


class Counter:
    """A monotonically increasing sample (``*_total`` by convention)."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.help_text = help_text
        self.labels = dict(labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def sample_lines(self) -> list[str]:
        return [f"{self.name}{_format_labels(self.labels)} {_format_value(self.value)}"]


class Gauge(Counter):
    """A sample that can go up and down (queue depths, in-flight work)."""

    kind = "gauge"

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


#: Default latency buckets (seconds): microseconds to minutes, roughly
#: logarithmic, suitable for both memoized hits and cold simulations.
DEFAULT_LATENCY_BUCKETS = (
    0.0001,
    0.001,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
    120.0,
)


class Histogram:
    """A cumulative-bucket histogram in Prometheus semantics.

    ``observe`` sorts each value into every bucket whose upper bound is
    >= the value (buckets are cumulative), and maintains ``_sum`` and
    ``_count`` samples.  Quantile *estimation* is left to the scraper;
    exact percentiles live in :func:`repro.sim.stats.nearest_rank_percentile`.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Mapping[str, str],
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        if list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name} buckets must be sorted: {buckets!r}")
        self.name = name
        self.help_text = help_text
        self.labels = dict(labels)
        self.bounds = tuple(buckets)
        self.bucket_counts = [0 for _ in self.bounds]
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1

    def sample_lines(self) -> list[str]:
        lines = []
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            cumulative = bucket_count
            labels = dict(self.labels)
            labels["le"] = _format_value(float(bound))
            lines.append(f"{self.name}_bucket{_format_labels(labels)} {cumulative}")
        labels = dict(self.labels)
        labels["le"] = "+Inf"
        lines.append(f"{self.name}_bucket{_format_labels(labels)} {self.count}")
        lines.append(
            f"{self.name}_sum{_format_labels(self.labels)} {_format_value(self.total)}"
        )
        lines.append(f"{self.name}_count{_format_labels(self.labels)} {self.count}")
        return lines


class MetricsRegistry:
    """Holds metric instances and renders the text exposition format.

    Metrics are keyed by ``(name, frozenset(labels))`` so one family
    (one ``# HELP``/``# TYPE`` pair) can carry several labelled series,
    e.g. ``repro_request_latency_seconds{class="hit"}`` and
    ``{class="miss"}``.
    """

    def __init__(self) -> None:
        self._metrics: dict = {}
        self._family_order: list[str] = []
        self._family_kind: dict[str, str] = {}

    def _register(self, metric) -> object:
        key = (metric.name, tuple(sorted(metric.labels.items())))
        if key in self._metrics:
            existing = self._metrics[key]
            if existing.kind != metric.kind:
                raise ValueError(
                    f"metric {metric.name} already registered as {existing.kind}"
                )
            return existing
        known_kind = self._family_kind.get(metric.name)
        if known_kind is not None and known_kind != metric.kind:
            raise ValueError(
                f"metric family {metric.name} already registered as {known_kind}"
            )
        if metric.name not in self._family_kind:
            self._family_kind[metric.name] = metric.kind
            self._family_order.append(metric.name)
        self._metrics[key] = metric
        return metric

    def counter(
        self, name: str, help_text: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        return self._register(Counter(name, help_text, labels or {}))

    def gauge(
        self, name: str, help_text: str, labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        return self._register(Gauge(name, help_text, labels or {}))

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help_text, labels or {}, buckets))

    def families(self) -> list[str]:
        return list(self._family_order)

    def render(self) -> str:
        """The Prometheus text exposition (format version 0.0.4)."""

        lines: list[str] = []
        for family in self._family_order:
            members = [
                metric
                for (name, _), metric in sorted(self._metrics.items())
                if name == family
            ]
            lines.append(f"# HELP {family} {members[0].help_text}")
            lines.append(f"# TYPE {family} {self._family_kind[family]}")
            for metric in members:
                lines.extend(metric.sample_lines())
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# canonical store metrics
# ----------------------------------------------------------------------
#: The one source of truth for store-introspection counter names.  Both
#: ``python -m repro cache info`` and the serve layer's ``/stats`` /
#: ``/metrics`` surfaces render from :func:`store_snapshot`, so the two
#: can never drift on what a counter is called.
STORE_METRIC_HELP = {
    "store_entries": "result entries on disk",
    "checkpoint_entries": "checkpoint entries on disk",
    "fleet_entries": "cached fleet runs on disk",
    "fleet_capture_total": "VM snapshot captures across cached fleet runs",
    "fleet_restore_total": "VM snapshot restores across cached fleet runs",
    "fleet_transport_bytes_total": "snapshot transport bytes across cached fleet runs",
    "stale_schema_miss_total": "cache lookups that hit a stale-schema entry",
    "decode_error_miss_total": "cache lookups that hit an undecodable entry",
}


def store_snapshot(results, checkpoints=None) -> dict[str, int]:
    """Canonical store metrics for a result cache (+ checkpoint store).

    Duck-typed (``len``, ``fleet_traffic()``, miss counters) so this
    module needs no import from :mod:`repro.api`.  Every key appears in
    :data:`STORE_METRIC_HELP`; callers render, they do not rename.
    """

    fleet = results.fleet_traffic() if hasattr(results, "fleet_traffic") else {}
    snapshot = {
        "store_entries": len(results),
        "checkpoint_entries": len(checkpoints) if checkpoints is not None else 0,
        "fleet_entries": int(fleet.get("entries", 0)),
        "fleet_capture_total": int(fleet.get("captures", 0)),
        "fleet_restore_total": int(fleet.get("restores", 0)),
        "fleet_transport_bytes_total": int(fleet.get("bytes", 0)),
        "stale_schema_miss_total": int(getattr(results, "stale_schema_misses", 0)),
        "decode_error_miss_total": int(getattr(results, "decode_error_misses", 0)),
    }
    if checkpoints is not None:
        snapshot["stale_schema_miss_total"] += int(
            getattr(checkpoints, "stale_schema_misses", 0)
        )
        snapshot["decode_error_miss_total"] += int(
            getattr(checkpoints, "decode_error_misses", 0)
        )
    assert set(snapshot) == set(STORE_METRIC_HELP)
    return snapshot
