"""Per-component cycle attribution and ASCII activity timelines.

Pure functions over the telemetry a run already produces — final event
counters, exact busy/coherence/background cycle splits, the energy
model's per-component breakdown, and the PR 5 interval samples.  The
``python -m repro profile`` report and ``timeline --chart`` sparklines
render from here; nothing in this module touches simulation state.

Two kinds of rows appear in the attribution tables and are labelled as
such:

* ``measured`` — exact values the simulator charged (busy, coherence,
  background cycles; per-component energy).  These are digest-pinned.
* ``modeled`` — event counts multiplied by :class:`~repro.sim.costs.CostModel`
  figures, attributing *within* a measured bucket (e.g. how much of the
  coherence bill is initiator-side IPI work vs target-side VM exits).
  Modeled rows are estimates: the simulator charges some of these costs
  with overlap, so sub-rows need not sum exactly to their parent.

Layering: imports :mod:`repro.sim` and nothing above it.
"""

from __future__ import annotations

from typing import Mapping, NamedTuple, Optional, Sequence

from repro.sim.costs import CostModel

#: Characters for ASCII sparklines, lowest to highest activity.  Pure
#: ASCII (no unicode blocks) so output survives every terminal and CI log.
SPARK_RAMP = " .:-=+*#%@"


class AttributionRow(NamedTuple):
    """One row of a per-component cycle attribution table."""

    component: str
    cycles: float
    #: "measured" (exact, digest-pinned) or "modeled" (events x costs).
    basis: str
    #: nesting depth for rendering (sub-rows attribute within a parent).
    depth: int


def _events_get(events: Mapping[str, int], name: str) -> int:
    return int(events.get(name, 0))


def cycle_attribution(
    events: Mapping[str, int],
    busy_cycles: int,
    coherence_cycles: int,
    background_cycles: int,
    costs: Optional[CostModel] = None,
) -> list[AttributionRow]:
    """Attribute a run's cycles to translation/coherence/paging components.

    Top-level rows are measured; indented sub-rows are modeled from the
    event counters and the cost model.
    """

    costs = costs or CostModel()
    get = lambda name: _events_get(events, name)  # noqa: E731

    rows = [
        AttributionRow(
            "translate+memory (TLB/L1/walker data path)",
            busy_cycles - coherence_cycles,
            "measured",
            0,
        ),
        AttributionRow(
            "page-fault handling",
            get("paging.nested_faults") * costs.page_fault_overhead,
            "modeled",
            1,
        ),
        AttributionRow("translation coherence", coherence_cycles, "measured", 0),
        AttributionRow(
            "shootdown initiator (IPIs + setup)",
            get("coherence.remaps") * costs.shootdown_setup
            + get("coherence.ipis") * (costs.ipi_send + costs.ack_wait),
            "modeled",
            1,
        ),
        AttributionRow(
            "shootdown target (VM exits + flushes)",
            get("coherence.vm_exits") * (costs.vm_exit + costs.vm_entry)
            + get("coherence.full_flushes") * costs.full_translation_flush,
            "modeled",
            1,
        ),
        AttributionRow(
            "directory lookups + invalidation messages",
            get("coherence.eager_structure_lookups") * costs.directory_lookup
            + (
                get("hatric.invalidation_messages")
                + get("unitd.invalidation_messages")
            )
            * costs.coherence_message,
            "modeled",
            1,
        ),
        AttributionRow(
            "co-tag / CAM searches",
            get("hatric.cotag_searches") * costs.cotag_search
            + get("unitd.cam_searches") * costs.unitd_cam_search,
            "modeled",
            1,
        ),
        AttributionRow(
            "paging daemon (background)", background_cycles, "measured", 0
        ),
        AttributionRow(
            "page copies",
            (
                get("paging.first_touch")
                + get("paging.demand_migrations")
                + get("paging.prefetches")
                + get("paging.evictions")
                + get("paging.defrag_remaps")
            )
            * costs.page_copy,
            "modeled",
            1,
        ),
        AttributionRow(
            "daemon wakeups",
            get("paging.daemon_wakeups") * costs.daemon_wakeup,
            "modeled",
            1,
        ),
    ]
    return rows


def energy_components(components: Mapping[str, float]) -> list[tuple[str, float, float]]:
    """Sorted (component, joules, share) rows from an energy breakdown.

    ``components`` is :attr:`repro.energy.model.EnergyBreakdown.components`
    — exact per-structure attribution (translation lookups, cache
    levels, directory, messages, VM exits, IPIs, page copies).
    """

    total = sum(components.values())
    rows = sorted(components.items(), key=lambda item: (-item[1], item[0]))
    return [
        (name, value, (value / total) if total else 0.0) for name, value in rows
    ]


def sparkline(
    values: Sequence[float],
    width: Optional[int] = None,
    peak: Optional[float] = None,
) -> str:
    """Render ``values`` as a fixed-width ASCII activity sparkline.

    Scales against ``peak`` when given (so several sparklines can share
    one scale, e.g. the same series across protocols), else against the
    max of ``values``; an all-zero series renders as spaces.  When
    ``width`` differs from ``len(values)`` the series is resampled by
    bucket-maximum, so short spikes (a shootdown storm in one interval)
    survive downsampling.
    """

    values = [float(v) for v in values]
    if not values:
        return ""
    width = width or len(values)
    if width <= 0:
        raise ValueError(f"sparkline width must be positive, got {width}")
    if len(values) != width:
        buckets = []
        for column in range(width):
            start = column * len(values) // width
            end = max(start + 1, (column + 1) * len(values) // width)
            buckets.append(max(values[start:end]))
        values = buckets
    peak = max(values) if peak is None else float(peak)
    if peak <= 0:
        return " " * width
    top = len(SPARK_RAMP) - 1
    chars = []
    for value in values:
        level = int(round(value / peak * top))
        if value > 0:
            level = max(1, level)
        chars.append(SPARK_RAMP[level])
    return "".join(chars)


def interval_series(
    samples: Sequence, field: str = "coherence_cycles"
) -> list[float]:
    """Extract one per-interval series from IntervalSample-shaped objects.

    ``field`` is either an attribute (``busy_cycles``, ``coherence_cycles``,
    ``background_cycles``, ``instructions``, ``energy``) or an event
    counter name (``coherence.ipis``) looked up in each sample's
    ``events`` mapping.
    """

    series = []
    for sample in samples:
        if hasattr(sample, field):
            series.append(float(getattr(sample, field)))
        else:
            series.append(float(sample.events.get(field, 0)))
    return series
