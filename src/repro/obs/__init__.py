"""Cross-cutting observability: tracing, metrics, structured logging.

``repro.obs`` is the observability backbone every other layer may use:

* :mod:`repro.obs.trace` -- a zero-dependency structured tracer.  Off
  by default; ``REPRO_TRACE=out.jsonl`` turns it on.  Emits one Chrome
  ``trace_event`` JSON object per line (JSONL), loadable in
  ``chrome://tracing`` / Perfetto after ``python -m repro trace
  export``.
* :mod:`repro.obs.metrics` -- a Prometheus-style metrics registry
  (counters, gauges, histograms) shared by the serve layer's
  ``/metrics`` endpoint and the CLI's cache introspection.
* :mod:`repro.obs.log` -- the structured logger every warning and
  diagnostic message routes through, with a ``REPRO_LOG_LEVEL`` knob.
* :mod:`repro.obs.profile` -- pure functions turning interval telemetry
  and event counters into per-component cycle attribution and ASCII
  activity sparklines (the ``python -m repro profile`` report).

Import-direction rule (see docs/ARCHITECTURE.md): ``repro.obs`` imports
nothing above :mod:`repro.sim`; everything may import ``repro.obs``.
Observation never perturbs simulation -- results are bit-identical with
tracing on and off, and no trace state enters cache keys.

This ``__init__`` deliberately imports only the sim-independent
submodules (``log``, ``trace``) so low layers (e.g. the SoA kernel
resolver) can import ``repro.obs.log`` without pulling in
``repro.sim``; import :mod:`repro.obs.metrics` and
:mod:`repro.obs.profile` explicitly.
"""

from repro.obs.log import LOG_LEVEL_ENV_VAR, get_logger
from repro.obs.trace import TRACE_ENV_VAR, active_tracer, tracing_enabled

__all__ = [
    "LOG_LEVEL_ENV_VAR",
    "TRACE_ENV_VAR",
    "active_tracer",
    "get_logger",
    "tracing_enabled",
]
