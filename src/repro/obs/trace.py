"""Zero-dependency structured tracer emitting Chrome ``trace_event`` JSONL.

Off by default.  ``REPRO_TRACE=out.jsonl`` (parsed loudly through
:func:`repro.env.env_path`) turns tracing on for the process; every
instrumented seam then appends one JSON object per line:

``{"name": ..., "cat": ..., "ph": ..., "ts": ..., "pid": ..., "tid": ...,
"args": {...}}``

with ``ph`` one of ``X`` (complete span, carries ``dur``), ``i``
(instant event, carries ``s: "t"``), or ``C`` (counter sample).  ``ts``
and ``dur`` are microseconds, as the Chrome format requires.  The JSONL
stream converts to a ``chrome://tracing`` / Perfetto-loadable JSON
array with :func:`export_chrome` (``python -m repro trace export``).

Design constraints (see docs/OBSERVABILITY.md):

* **Zero overhead when disabled.**  Call sites do
  ``tracer = active_tracer()`` and skip all bookkeeping when it returns
  ``None``; the disabled path is a single cached global read.
  Instrumentation sits only at batch/interval/epoch/request
  granularity, never per-reference.
* **Observation only.**  The tracer writes wall-clock data to an
  external file and never touches simulation state, request hashing, or
  cache keys, so results are bit-identical with tracing on and off.
* **Spawn safety.**  Session worker pools use the spawn start method
  and inherit ``REPRO_TRACE``.  The first process to initialise a
  tracer claims the configured path by recording its pid in
  ``_REPRO_TRACE_OWNER_PID``; spawned children write to
  ``<path>.<pid>`` instead, so concurrent writers never interleave
  lines in one file.
"""

from __future__ import annotations

import json
import os
import time
from typing import IO, Optional

from repro.env import env_path

TRACE_ENV_VAR = "REPRO_TRACE"
TRACE_SUFFIXES = (".jsonl", ".json")
_OWNER_PID_ENV_VAR = "_REPRO_TRACE_OWNER_PID"

# Phases of the Chrome trace_event format this tracer emits.
PHASE_COMPLETE = "X"
PHASE_INSTANT = "i"
PHASE_COUNTER = "C"

_REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "ts", "pid", "tid")
_KNOWN_PHASES = (PHASE_COMPLETE, PHASE_INSTANT, PHASE_COUNTER)


def trace_path_from_environment() -> Optional[str]:
    """Return the trace output path, or ``None`` when tracing is off."""

    return env_path(TRACE_ENV_VAR, None, suffixes=TRACE_SUFFIXES)


class Tracer:
    """Appends trace_event JSON lines to a per-process file."""

    def __init__(self, path: str) -> None:
        self.path = self._claim_path(path)
        self._pid = os.getpid()
        self._stream: Optional[IO[str]] = None

    @staticmethod
    def _claim_path(path: str) -> str:
        owner = os.environ.get(_OWNER_PID_ENV_VAR)
        pid = os.getpid()
        if owner is None or owner == "":
            os.environ[_OWNER_PID_ENV_VAR] = str(pid)
            return path
        if owner == str(pid):
            return path
        return f"{path}.{pid}"

    def _write(self, event: dict) -> None:
        if self._stream is None:
            self._stream = open(self.path, "a", encoding="utf-8")
        self._stream.write(json.dumps(event, separators=(",", ":")) + "\n")
        self._stream.flush()

    @staticmethod
    def now() -> float:
        """A monotonic timestamp for pairing with :meth:`complete`."""

        return time.perf_counter()

    def _base(self, name: str, cat: str, phase: str) -> dict:
        return {
            "name": name,
            "cat": cat,
            "ph": phase,
            "ts": time.time_ns() // 1000,
            "pid": self._pid,
            "tid": 0,
        }

    def complete(self, name: str, cat: str, start: float, **args: object) -> None:
        """Emit a ``ph: X`` complete span that began at ``start`` (from now())."""

        duration_us = max(0, int((time.perf_counter() - start) * 1_000_000))
        event = self._base(name, cat, PHASE_COMPLETE)
        event["ts"] -= duration_us
        event["dur"] = duration_us
        if args:
            event["args"] = args
        self._write(event)

    def instant(self, name: str, cat: str, **args: object) -> None:
        """Emit a ``ph: i`` instant event."""

        event = self._base(name, cat, PHASE_INSTANT)
        event["s"] = "t"
        if args:
            event["args"] = args
        self._write(event)

    def counter(self, name: str, cat: str, **values: object) -> None:
        """Emit a ``ph: C`` counter sample (one series per keyword)."""

        event = self._base(name, cat, PHASE_COUNTER)
        event["args"] = values
        self._write(event)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None


_UNSET = object()
_tracer: object = _UNSET


def active_tracer() -> Optional[Tracer]:
    """The process tracer, or ``None`` when ``REPRO_TRACE`` is unset.

    Resolved once per process; the disabled fast path is a single global
    read so instrumented seams cost nothing when tracing is off.
    """

    global _tracer
    if _tracer is _UNSET:
        path = trace_path_from_environment()
        _tracer = Tracer(path) if path is not None else None
    return _tracer  # type: ignore[return-value]


def tracing_enabled() -> bool:
    return active_tracer() is not None


def reset() -> None:
    """Close and forget the cached tracer so the env is re-read.

    Intended for tests that monkeypatch ``REPRO_TRACE``.
    """

    global _tracer
    if _tracer is not _UNSET and _tracer is not None:
        _tracer.close()  # type: ignore[union-attr]
    _tracer = _UNSET


def load_events(path: str) -> list:
    """Parse a JSONL trace file into a list of event dicts."""

    events = []
    with open(path, "r", encoding="utf-8") as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON: {error}"
                ) from None
            events.append(event)
    return events


def validate_events(events: list) -> None:
    """Raise ``ValueError`` unless every event is a well-formed trace_event.

    Checks the fields Chrome/Perfetto require: the key set, known
    phases, microsecond integer timestamps, and ``dur`` on complete
    spans.
    """

    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: expected an object, got {type(event).__name__}")
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                raise ValueError(f"{where}: missing required key {key!r}")
        phase = event["ph"]
        if phase not in _KNOWN_PHASES:
            raise ValueError(f"{where}: unknown phase {phase!r}")
        if not isinstance(event["ts"], int) or event["ts"] < 0:
            raise ValueError(f"{where}: ts must be a non-negative integer (microseconds)")
        if phase == PHASE_COMPLETE:
            duration = event.get("dur")
            if not isinstance(duration, int) or duration < 0:
                raise ValueError(
                    f"{where}: complete span needs non-negative integer dur"
                )
        if phase == PHASE_COUNTER and not isinstance(event.get("args"), dict):
            raise ValueError(f"{where}: counter event needs an args object")


def export_chrome(jsonl_path: str, out_path: str) -> int:
    """Convert a JSONL trace into a Chrome JSON-object trace file.

    Validates every event, wraps the list as ``{"traceEvents": [...]}``
    (the format ``chrome://tracing`` and Perfetto load directly), and
    returns the number of events written.
    """

    events = load_events(jsonl_path)
    validate_events(events)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(out_path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, separators=(",", ":"))
        stream.write("\n")
    return len(events)


def summarize_events(events: list) -> dict:
    """Aggregate a trace: per-name event counts and total span time."""

    names: dict = {}
    for event in events:
        name = event.get("name", "?")
        entry = names.setdefault(name, {"count": 0, "total_us": 0})
        entry["count"] += 1
        if event.get("ph") == PHASE_COMPLETE:
            entry["total_us"] += int(event.get("dur", 0))
    return {
        "events": len(events),
        "names": {name: names[name] for name in sorted(names)},
    }
