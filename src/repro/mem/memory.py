"""Two-tier physical memory model.

The paper evaluates a forward-looking system with 2 GB of die-stacked
DRAM offering 4x the bandwidth of a slower 8 GB off-chip DRAM
(Section 5.1).  This module models both tiers as pools of 4 KB frames
plus per-tier access latencies; the hypervisor migrates pages between
tiers by allocating a frame in the destination tier and copying.

Capacities are configurable so that experiments can run with scaled-down
footprints (see DESIGN.md, "Simulation model") while preserving the
paper's capacity ratio between tiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.translation.address import PAGE_SHIFT


class OutOfMemoryError(RuntimeError):
    """Raised when a frame allocation cannot be satisfied."""


@dataclass
class FrameAllocator:
    """Allocates system physical frames from a contiguous range.

    Frames are identified by their system physical page number (SPP).
    Freed frames are recycled in FIFO order, which keeps allocation
    deterministic across runs.
    """

    base_spp: int
    num_frames: int
    _next: int = field(init=False, default=0)
    _free: list[int] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.num_frames <= 0:
            raise ValueError("num_frames must be positive")
        if self.base_spp < 0:
            raise ValueError("base_spp must be non-negative")

    @property
    def capacity(self) -> int:
        """Total number of frames managed by this allocator."""
        return self.num_frames

    @property
    def allocated(self) -> int:
        """Number of frames currently handed out."""
        return self._next - len(self._free)

    @property
    def free_frames(self) -> int:
        """Number of frames still available."""
        return self.num_frames - self.allocated

    def contains(self, spp: int) -> bool:
        """Return True if ``spp`` belongs to this allocator's range."""
        return self.base_spp <= spp < self.base_spp + self.num_frames

    def allocate(self) -> int:
        """Allocate one frame and return its SPP.

        Raises :class:`OutOfMemoryError` when the tier is full.
        """
        if self._free:
            return self._free.pop()
        if self._next >= self.num_frames:
            raise OutOfMemoryError(
                f"no free frames (capacity {self.num_frames})"
            )
        spp = self.base_spp + self._next
        self._next += 1
        return spp

    def free(self, spp: int) -> None:
        """Return a previously allocated frame to the pool."""
        if not self.contains(spp):
            raise ValueError(f"frame {spp:#x} does not belong to this allocator")
        self._free.append(spp)

    def iter_allocated(self) -> Iterator[int]:
        """Iterate over SPPs that are currently allocated."""
        freed = set(self._free)
        for offset in range(self._next):
            spp = self.base_spp + offset
            if spp not in freed:
                yield spp


@dataclass
class MemoryTier:
    """One physical memory device (die-stacked or off-chip DRAM)."""

    name: str
    num_frames: int
    access_latency: int
    base_spp: int = 0
    allocator: FrameAllocator = field(init=False)
    #: number of cache-line accesses that reached this device (for the
    #: energy model and bandwidth statistics).
    accesses: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.allocator = FrameAllocator(self.base_spp, self.num_frames)

    @property
    def capacity_bytes(self) -> int:
        """Capacity of the tier in bytes."""
        return self.num_frames << PAGE_SHIFT

    def contains(self, spp: int) -> bool:
        """Return True if the frame ``spp`` lives in this tier."""
        return self.allocator.contains(spp)

    def allocate(self) -> int:
        """Allocate a frame from this tier."""
        return self.allocator.allocate()

    def free(self, spp: int) -> None:
        """Free a frame belonging to this tier."""
        self.allocator.free(spp)

    @property
    def free_frames(self) -> int:
        """Number of unallocated frames."""
        return self.allocator.free_frames


class TwoTierMemory:
    """System physical memory made of a fast and a slow DRAM tier.

    The fast tier models die-stacked (high-bandwidth) DRAM, the slow tier
    conventional off-chip DRAM.  SPP ranges of the two tiers are disjoint
    so the tier of any frame can be recovered from its page number alone,
    mirroring how a real hypervisor would carve the physical address map.
    """

    def __init__(
        self,
        fast_frames: int,
        slow_frames: int,
        fast_latency: int = 110,
        slow_latency: int = 220,
    ) -> None:
        if fast_frames <= 0 or slow_frames <= 0:
            raise ValueError("both tiers need at least one frame")
        self.fast = MemoryTier(
            "die-stacked", fast_frames, fast_latency, base_spp=0
        )
        self.slow = MemoryTier(
            "off-chip", slow_frames, slow_latency, base_spp=fast_frames
        )

    @property
    def tiers(self) -> tuple[MemoryTier, MemoryTier]:
        """Return (fast, slow) tiers."""
        return (self.fast, self.slow)

    def tier_of(self, spp: int) -> MemoryTier:
        """Return the tier that owns frame ``spp``."""
        if self.fast.contains(spp):
            return self.fast
        if self.slow.contains(spp):
            return self.slow
        raise ValueError(f"frame {spp:#x} belongs to no tier")

    def is_fast(self, spp: int) -> bool:
        """Return True if ``spp`` resides in the die-stacked tier."""
        return self.fast.contains(spp)

    def latency_of(self, spp: int) -> int:
        """Return the access latency (cycles) of the tier holding ``spp``."""
        return self.tier_of(spp).access_latency
