"""Set-associative cache model.

Caches are modelled at cache-line granularity with LRU replacement.
Lines remember whether they hold page table data: the coherence
directory needs that distinction (its nPT/gPT bits) and so do HATRIC's
invalidation paths.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.translation.address import CACHE_LINE_SIZE


@dataclass(slots=True)
class CacheLine:
    """State of one resident cache line."""

    address: int
    dirty: bool = False
    is_page_table: bool = False


@dataclass
class CacheStats:
    """Hit/miss/traffic counters for a cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations: int = 0

    def hit_rate(self) -> float:
        """Return the hit rate over all accesses (0.0 when never used)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class Cache:
    """A set-associative, write-back, LRU cache.

    Only presence and replacement are modelled -- the simulator is
    functional, so no data values are stored.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int,
        latency: int,
        line_size: int = CACHE_LINE_SIZE,
    ) -> None:
        if size_bytes <= 0 or associativity <= 0:
            raise ValueError("cache size and associativity must be positive")
        if size_bytes % (associativity * line_size) != 0:
            raise ValueError(
                "cache size must be a multiple of associativity * line size"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.latency = latency
        self.line_size = line_size
        self.num_sets = size_bytes // (associativity * line_size)
        self._sets: list[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------
    def line_address(self, address: int) -> int:
        """Return the line-aligned address containing ``address``."""
        return address & ~(self.line_size - 1)

    def _set_index(self, line_address: int) -> int:
        return (line_address // self.line_size) % self.num_sets

    # ------------------------------------------------------------------
    # access / fill / invalidate
    # ------------------------------------------------------------------
    def access(self, address: int, is_write: bool = False) -> bool:
        """Probe the cache; return True on hit (and update LRU/dirty)."""
        line_addr = self.line_address(address)
        cache_set = self._sets[self._set_index(line_addr)]
        self.stats.accesses += 1
        line = cache_set.get(line_addr)
        if line is None:
            self.stats.misses += 1
            return False
        cache_set.move_to_end(line_addr)
        if is_write:
            line.dirty = True
        self.stats.hits += 1
        return True

    def fill(
        self,
        address: int,
        is_write: bool = False,
        is_page_table: bool = False,
    ) -> Optional[CacheLine]:
        """Bring a line into the cache; return the victim line if any."""
        line_addr = self.line_address(address)
        cache_set = self._sets[self._set_index(line_addr)]
        self.stats.fills += 1
        if line_addr in cache_set:
            line = cache_set[line_addr]
            line.dirty = line.dirty or is_write
            line.is_page_table = line.is_page_table or is_page_table
            cache_set.move_to_end(line_addr)
            return None
        victim = None
        if len(cache_set) >= self.associativity:
            _, victim = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
        cache_set[line_addr] = CacheLine(
            address=line_addr, dirty=is_write, is_page_table=is_page_table
        )
        return victim

    def contains(self, address: int) -> bool:
        """Return True if the line holding ``address`` is resident."""
        line_addr = self.line_address(address)
        return line_addr in self._sets[self._set_index(line_addr)]

    def invalidate(self, address: int) -> bool:
        """Drop the line holding ``address``; return True if it was present."""
        line_addr = self.line_address(address)
        cache_set = self._sets[self._set_index(line_addr)]
        if line_addr in cache_set:
            del cache_set[line_addr]
            self.stats.invalidations += 1
            return True
        return False

    def flush(self) -> int:
        """Drop every resident line; return how many were dropped."""
        dropped = sum(len(s) for s in self._sets)
        for cache_set in self._sets:
            cache_set.clear()
        self.stats.invalidations += dropped
        return dropped

    def resident_lines(self) -> list[int]:
        """Return the addresses of all resident lines."""
        lines: list[int] = []
        for cache_set in self._sets:
            lines.extend(cache_set.keys())
        return lines

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)
