"""Memory-system substrate: two-tier physical memory and the cache hierarchy."""

from repro.mem.memory import FrameAllocator, MemoryTier, TwoTierMemory
from repro.mem.cache import Cache, CacheStats
from repro.mem.hierarchy import CacheHierarchy

__all__ = [
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "FrameAllocator",
    "MemoryTier",
    "TwoTierMemory",
]
