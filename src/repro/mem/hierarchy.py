"""Per-CPU cache hierarchy: private L1/L2 in front of a shared LLC.

The hierarchy charges cycle costs for each reference and keeps the
per-level caches filled.  It reports fills and evictions of lines to an
optional listener so the chip can keep the coherence directory in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from repro.mem.cache import Cache
from repro.mem.memory import TwoTierMemory
from repro.translation.address import PAGE_SHIFT


class CoherenceListener(Protocol):
    """Callbacks the owning chip uses to mirror cache state in the directory."""

    def on_private_fill(self, cpu_id: int, line: int, is_page_table: bool) -> None:
        """A line entered a CPU's private cache."""

    def on_private_eviction(self, cpu_id: int, line: int, is_page_table: bool) -> None:
        """A line left a CPU's private caches entirely."""


@dataclass(slots=True)
class AccessResult:
    """Outcome of one memory reference through the hierarchy.

    Attributes:
        cycles: latency charged to the requesting CPU.
        level: where the reference was satisfied
            (``"l1"``, ``"l2"``, ``"llc"``, ``"fast-mem"`` or ``"slow-mem"``).
    """

    cycles: int
    level: str


class CacheHierarchy:
    """One CPU's private L1/L2 caches plus the shared LLC and memory."""

    def __init__(
        self,
        cpu_id: int,
        l1: Cache,
        l2: Cache,
        llc: Cache,
        memory: TwoTierMemory,
        listener: Optional[CoherenceListener] = None,
    ) -> None:
        self.cpu_id = cpu_id
        self.l1 = l1
        self.l2 = l2
        self.llc = llc
        self.memory = memory
        self.listener = listener

    # ------------------------------------------------------------------
    # main access path
    # ------------------------------------------------------------------
    def access(
        self, spa: int, is_write: bool = False, is_page_table: bool = False
    ) -> AccessResult:
        """Reference system physical address ``spa`` through the hierarchy."""
        cycles = self.l1.latency
        if self.l1.access(spa, is_write):
            return AccessResult(cycles=cycles, level="l1")

        cycles += self.l2.latency
        if self.l2.access(spa, is_write):
            self._fill_private(self.l1, spa, is_write, is_page_table)
            return AccessResult(cycles=cycles, level="l2")

        cycles += self.llc.latency
        if self.llc.access(spa, is_write):
            self._fill_private_levels(spa, is_write, is_page_table)
            return AccessResult(cycles=cycles, level="llc")

        spp = spa >> PAGE_SHIFT
        tier = self.memory.tier_of(spp)
        tier.accesses += 1
        cycles += tier.access_latency
        self.llc.fill(spa, is_write, is_page_table)
        self._fill_private_levels(spa, is_write, is_page_table)
        level = "fast-mem" if tier is self.memory.fast else "slow-mem"
        return AccessResult(cycles=cycles, level=level)

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate_line(self, line: int) -> bool:
        """Invalidate ``line`` from the private caches; True if present."""
        in_l1 = self.l1.invalidate(line)
        in_l2 = self.l2.invalidate(line)
        return in_l1 or in_l2

    def holds_line(self, line: int) -> bool:
        """Return True if the private caches hold ``line``."""
        return self.l1.contains(line) or self.l2.contains(line)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _fill_private_levels(
        self, spa: int, is_write: bool, is_page_table: bool
    ) -> None:
        line = self.l1.line_address(spa)
        newly_resident = not self.holds_line(line)
        self._fill_private(self.l2, spa, is_write, is_page_table)
        self._fill_private(self.l1, spa, is_write, is_page_table)
        if newly_resident and self.listener is not None:
            self.listener.on_private_fill(self.cpu_id, line, is_page_table)

    def _fill_private(
        self, cache: Cache, spa: int, is_write: bool, is_page_table: bool
    ) -> None:
        victim = cache.fill(spa, is_write, is_page_table)
        if victim is None:
            return
        # The victim left this level; it only left the private caches
        # entirely if the other private level does not hold it either.
        other = self.l2 if cache is self.l1 else self.l1
        if not other.contains(victim.address) and self.listener is not None:
            self.listener.on_private_eviction(
                self.cpu_id, victim.address, victim.is_page_table
            )
