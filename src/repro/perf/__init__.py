"""Performance measurement: the engine benchmark harness.

``python -m repro bench`` (and :func:`repro.perf.bench.run_bench`) time
the reference and fast simulation engines against each other across the
figure workloads and synthetic scenario families, verify that both
engines produce bit-identical results, and emit the ``BENCH_<tag>.json``
trajectory files that make speedups comparable across PRs (see
``docs/PERFORMANCE.md``).
"""

from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    DEFAULT_BENCH_TAG,
    BenchCase,
    BenchRecord,
    BenchReport,
    bench_payload,
    default_cases,
    format_bench,
    run_bench,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchCase",
    "BenchRecord",
    "BenchReport",
    "DEFAULT_BENCH_TAG",
    "bench_payload",
    "default_cases",
    "format_bench",
    "run_bench",
]
