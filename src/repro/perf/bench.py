"""Three-engine benchmark harness (``python -m repro bench``).

Each :class:`BenchCase` names one (workload, machine) point.  The
harness generates the trace once per case, runs it on all three engines
(``reference``, ``fast``, ``soa``) ``repeats`` times (interleaved,
best-of CPU time, so platform noise and frequency wobble hit every
engine alike), verifies the results are bit-identical, and reports
per-case speedups plus a geometric mean.  The headline ``speedup`` is
reference time over SoA time; ``fast_speedup`` keeps the old
reference-over-fast ratio for trajectory continuity.

The committed ``BENCH_<tag>.json`` files at the repository root form
the performance trajectory of the project: one file per PR that changed
performance-relevant code, produced by ``python -m repro bench --output
BENCH_<tag>.json`` at default scale.  ``docs/PERFORMANCE.md`` explains
how to read them.
"""

from __future__ import annotations

import json
import math
import platform
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.api.request import RunRequest
from repro.api.scale import ExperimentScale
from repro.api.session import Session, execute_request
from repro.sim.config import SystemConfig
from repro.sim.engine import (
    ENGINE_FAST,
    ENGINE_REFERENCE,
    ENGINE_SOA,
    diff_fingerprints,
    result_fingerprint,
)
from repro.sim.simulator import SimulationResult, Simulator, resolve_trace
from repro.sim.soa_kernel import get_kernel
from repro.workloads import make_workload

#: Version of the BENCH_*.json payload layout.  Version 2 added the SoA
#: engine columns (``soa_seconds``, ``soa_refs_per_second``,
#: ``fast_speedup``, ``soa_kernel``) and redefined ``speedup`` as
#: reference over SoA.
BENCH_SCHEMA_VERSION = 2

#: Tag of the bench file this revision of the repository commits
#: (``BENCH_<tag>.json``).  Bumped by every PR that records a new point
#: on the performance trajectory.
DEFAULT_BENCH_TAG = 7

#: All engines timed per case, reference first.
BENCH_ENGINES = (ENGINE_REFERENCE, ENGINE_FAST, ENGINE_SOA)

#: Figure workloads timed by default: the paper's five big-memory
#: workloads plus two small-footprint (Figure 11) applications.
DEFAULT_WORKLOADS = (
    "canneal",
    "data_caching",
    "graph500",
    "tunkrank",
    "facesim",
    "blackscholes",
    "swaptions",
)

#: The TLB/L1-resident steady scenario: at the standard per-workload
#: trace length its runtime is dominated by per-run setup (trace
#: generation, machine construction), so the bench runs it at
#: :data:`RESIDENT_STEADY_MULTIPLIER` times the standard length --
#: comparable wall time to the other cases and long enough that
#: per-reference engine cost, not fixed overhead, is what is measured.
RESIDENT_STEADY_SCENARIO = "syn:steady/seed=7/fp=6/hot=1.0/cold=0.0/reuse=16"
RESIDENT_STEADY_MULTIPLIER = 20

#: Synthetic scenario families timed by default (one canonical scenario
#: each; see ``python -m repro scenario list``).
DEFAULT_SCENARIOS = (
    "syn:migration-daemon/seed=7",
    "syn:compaction/seed=7",
    "syn:steady/seed=7",
    # A genuinely TLB/L1-resident steady phase (the default syn:steady
    # keeps a paging daemon thrashing by design).  This is the case the
    # SoA engine's vectorized steady windows exist for; see
    # docs/PERFORMANCE.md for why the two are reported separately.
    RESIDENT_STEADY_SCENARIO,
)


@dataclass(frozen=True)
class BenchCase:
    """One benchmark point: a workload on a machine configuration."""

    workload: str
    num_cpus: int = 16
    protocol: str = "hatric"
    label: str = ""
    #: trace-length multiplier over the scale's standard per-workload
    #: reference count (used for cases whose per-reference cost is so
    #: low that per-run setup would dominate at the standard length).
    refs_multiplier: int = 1

    @property
    def name(self) -> str:
        """Display name of the case."""
        if self.label:
            return self.label
        return f"{self.workload}@{self.num_cpus}cpu/{self.protocol}"


@dataclass
class BenchRecord:
    """Measured outcome of one case."""

    case: BenchCase
    reference_seconds: float
    fast_seconds: float
    soa_seconds: float
    references: int
    runtime_cycles: int
    identical: bool
    repeats: int

    @property
    def speedup(self) -> float:
        """Reference time over SoA time (higher is better)."""
        if self.soa_seconds <= 0.0:
            return float("inf")
        return self.reference_seconds / self.soa_seconds

    @property
    def fast_speedup(self) -> float:
        """Reference time over fast time (the pre-SoA headline)."""
        if self.fast_seconds <= 0.0:
            return float("inf")
        return self.reference_seconds / self.fast_seconds

    @property
    def fast_refs_per_second(self) -> float:
        """Simulated references retired per wall second (fast engine)."""
        if self.fast_seconds <= 0.0:
            return float("inf")
        return self.references / self.fast_seconds

    @property
    def soa_refs_per_second(self) -> float:
        """Simulated references retired per wall second (SoA engine)."""
        if self.soa_seconds <= 0.0:
            return float("inf")
        return self.references / self.soa_seconds


@dataclass
class BenchReport:
    """All records of one harness run plus run-wide metadata."""

    records: list[BenchRecord] = field(default_factory=list)
    trace_scale: float = 1.0
    tag: int = DEFAULT_BENCH_TAG
    #: scan-kernel backend the SoA engine resolved (numba/c/python).
    soa_kernel: str = ""
    #: cold-vs-checkpointed sweep timing (None when skipped).
    incremental: Optional[IncrementalSweepRecord] = None

    @property
    def geomean_speedup(self) -> float:
        """Geometric-mean reference-over-SoA speedup across all cases."""
        if not self.records:
            return 0.0
        return math.exp(
            sum(math.log(r.speedup) for r in self.records) / len(self.records)
        )

    @property
    def geomean_fast_speedup(self) -> float:
        """Geometric-mean reference-over-fast speedup across all cases."""
        if not self.records:
            return 0.0
        return math.exp(
            sum(math.log(r.fast_speedup) for r in self.records)
            / len(self.records)
        )

    @property
    def all_identical(self) -> bool:
        """True when every case (and the incremental sweep, if timed)
        produced bit-identical results."""
        identical = all(record.identical for record in self.records)
        if self.incremental is not None:
            identical = identical and self.incremental.identical
        return identical

    @property
    def cases_at_least_2x(self) -> int:
        """Number of cases where the fast engine is >= 2x faster."""
        return sum(1 for record in self.records if record.speedup >= 2.0)


#: Default shape of the checkpointed incremental-sweep case: a
#: ``refs_total`` sweep over one prefix-capped scenario, the workload
#: pattern ``Session(checkpoints=True)`` exists to accelerate.
SWEEP_INNER_WORKLOAD = "syn:migration-daemon/seed=7"
SWEEP_POINTS = (150_000, 300_000, 450_000)
SWEEP_NUM_CPUS = 8
SWEEP_PROTOCOL = "software"
SWEEP_WARMUP_REFS = 1_000
SWEEP_INTERVAL_REFS = 10_000


@dataclass
class IncrementalSweepRecord:
    """Cold-vs-checkpointed timing of one ``refs_total`` sweep."""

    workload: str
    refs_points: tuple[int, ...]
    num_cpus: int
    protocol: str
    warmup_refs: int
    cold_seconds: float
    warm_seconds: float
    identical: bool
    restored: int

    @property
    def speedup(self) -> float:
        """Cold time over checkpointed time (higher is better).

        Clamped away from division by zero so degenerate sub-resolution
        timings never emit non-standard ``Infinity`` JSON.
        """
        return self.cold_seconds / max(self.warm_seconds, 1e-9)


def run_incremental_sweep(
    inner_workload: str = SWEEP_INNER_WORKLOAD,
    points: Sequence[int] = SWEEP_POINTS,
    num_cpus: int = SWEEP_NUM_CPUS,
    protocol: str = SWEEP_PROTOCOL,
    warmup_refs: int = SWEEP_WARMUP_REFS,
    interval_refs: int = SWEEP_INTERVAL_REFS,
    scale: Optional[ExperimentScale] = None,
) -> IncrementalSweepRecord:
    """Time a ``refs_total`` sweep cold vs. through Session checkpoints.

    Cold executes every point from scratch; warm runs the same requests
    through ``Session(checkpoints=True)`` on a throwaway cache
    directory, so each longer point restores the previous point's final
    checkpoint and simulates only the tail.  Results are verified
    bit-identical, and both sides resolve their traces the same way, so
    the ratio isolates the checkpoint machinery.
    """
    from repro.api.session import CHECKPOINT_COUNTERS

    factor = (scale or ExperimentScale()).trace_scale
    # dedupe after scaling: collapsed points would make the cold loop
    # re-simulate a request the warm session answers from its memo,
    # crediting memoization to the checkpoint machinery.
    points = tuple(
        sorted({max(4_000, int(point * factor)) for point in points})
    )
    base = points[-1]
    workload = f"prefix:{base}:{inner_workload}"
    config = SystemConfig(num_cpus=num_cpus, protocol=protocol)
    requests = [
        RunRequest(
            config=config,
            workload=workload,
            refs_total=refs,
            warmup_refs=warmup_refs,
            interval_refs=interval_refs,
        )
        for refs in points
    ]

    started = time.process_time()
    cold = [execute_request(request) for request in requests]
    cold_seconds = time.process_time() - started

    before = dict(CHECKPOINT_COUNTERS)
    with tempfile.TemporaryDirectory(prefix="repro-bench-ckpt-") as tmp:
        session = Session(cache_dir=tmp, checkpoints=True)
        started = time.process_time()
        warm = [session.run(request) for request in requests]
        warm_seconds = time.process_time() - started
    restored = CHECKPOINT_COUNTERS["restored"] - before["restored"]

    identical = all(
        not diff_fingerprints(
            result_fingerprint(cold_result), result_fingerprint(warm_result)
        )
        for cold_result, warm_result in zip(cold, warm)
    )
    return IncrementalSweepRecord(
        workload=workload,
        refs_points=points,
        num_cpus=num_cpus,
        protocol=protocol,
        warmup_refs=warmup_refs,
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        identical=identical,
        restored=restored,
    )


def default_cases(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    num_cpus: int = 16,
    protocol: str = "hatric",
) -> list[BenchCase]:
    """The default benchmark matrix: figure workloads plus scenarios."""
    cases = [
        BenchCase(workload=name, num_cpus=num_cpus, protocol=protocol)
        for name in workloads
    ]
    cases += [
        BenchCase(
            workload=name,
            num_cpus=num_cpus,
            protocol=protocol,
            refs_multiplier=(
                RESIDENT_STEADY_MULTIPLIER
                if name == RESIDENT_STEADY_SCENARIO
                else 1
            ),
        )
        for name in scenarios
    ]
    return cases


def _time_run(
    config: SystemConfig, trace, warmup_fraction: float, engine: str
) -> tuple[float, SimulationResult]:
    """Build a fresh machine, run ``trace`` on ``engine``; return CPU time."""
    simulator = Simulator(config, engine=engine)
    started = time.process_time()
    result = simulator.run(trace, warmup_fraction=warmup_fraction)
    return time.process_time() - started, result


def run_case(
    case: BenchCase,
    repeats: int = 3,
    scale: Optional[ExperimentScale] = None,
) -> BenchRecord:
    """Benchmark one case; returns the record with both engine timings.

    The trace is generated once and reused, so only engine execution is
    timed.  Runs are interleaved (reference, fast, soa, reference, ...)
    and the best CPU time per engine is kept, which makes the ratios
    robust against background load and frequency scaling.  Call
    :func:`repro.sim.soa_kernel.get_kernel` first (``run_bench`` does)
    so a one-time compiled-kernel build is never charged to a case.
    """
    scale = scale or ExperimentScale()
    config = SystemConfig(num_cpus=case.num_cpus, protocol=case.protocol)
    workload = make_workload(case.workload)
    refs_total = scale.refs_for(workload)
    if case.refs_multiplier > 1:
        # refs_for returns None at scale 1.0 ("the spec's own length"):
        # resolve the concrete count so the multiplier applies at any
        # scale.
        if refs_total is None:
            refs_total = workload.spec.refs_total
        refs_total *= case.refs_multiplier
    trace = resolve_trace(workload, config.num_cpus, config.seed, refs_total)

    best = {engine: float("inf") for engine in BENCH_ENGINES}
    results: dict[str, SimulationResult] = {}
    for _ in range(max(1, repeats)):
        for engine in BENCH_ENGINES:
            seconds, result = _time_run(
                config, trace, scale.warmup_fraction, engine
            )
            best[engine] = min(best[engine], seconds)
            results[engine] = result

    identical = all(
        not diff_fingerprints(
            result_fingerprint(results[ENGINE_REFERENCE]),
            result_fingerprint(results[engine]),
        )
        for engine in BENCH_ENGINES[1:]
    )
    soa = results[ENGINE_SOA]
    return BenchRecord(
        case=case,
        reference_seconds=best[ENGINE_REFERENCE],
        fast_seconds=best[ENGINE_FAST],
        soa_seconds=best[ENGINE_SOA],
        references=soa.stats.total_instructions + soa.warmup_references,
        runtime_cycles=soa.runtime_cycles,
        identical=identical,
        repeats=max(1, repeats),
    )


def run_bench(
    cases: Optional[Sequence[BenchCase]] = None,
    repeats: int = 3,
    scale: Optional[ExperimentScale] = None,
    tag: int = DEFAULT_BENCH_TAG,
    incremental: bool = True,
) -> BenchReport:
    """Run the benchmark matrix and return the full report.

    ``incremental`` additionally times the checkpointed ``refs_total``
    sweep (:func:`run_incremental_sweep`).
    """
    scale = scale or ExperimentScale()
    # Resolve (and, for the C backend, compile) the SoA scan kernel up
    # front: the one-time build must not be charged to the first case.
    kernel_name, _ = get_kernel()
    report = BenchReport(
        trace_scale=scale.trace_scale, tag=tag, soa_kernel=kernel_name
    )
    for case in cases if cases is not None else default_cases():
        report.records.append(run_case(case, repeats=repeats, scale=scale))
    if incremental:
        report.incremental = run_incremental_sweep(scale=scale)
    return report


def _best_speedup(case: dict[str, Any]) -> float:
    """Best engine speedup a BENCH case payload records.

    Schema-1 cases carry only ``speedup`` (reference over fast); schema-2
    cases additionally carry ``fast_speedup`` with ``speedup`` redefined
    as reference over SoA.  The gate compares best against best: the
    promise the trajectory makes is that the *best* engine never loses
    ground, not that one particular engine wins every case.
    """
    return max(case.get("speedup", 0.0), case.get("fast_speedup", 0.0))


def check_baseline(
    payload: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 0.7,
    geomean_tolerance: float = 0.9,
) -> list[str]:
    """Regression gate against an earlier BENCH_*.json payload.

    Two checks, empty list means both pass:

    * per case, the best engine speedup must stay above ``tolerance``
      times the baseline's best for the same case name (cases present on
      only one side are ignored: the matrix is allowed to grow);
    * the geometric-mean best-engine speedup must stay above
      ``geomean_tolerance`` times the baseline's.

    The per-case bar is deliberately the looser one: re-benchmarking an
    *unchanged* revision on a different day measures individual-case
    CPU-time ratios up to ~30% apart on a busy single-core host (the
    reference loop and the vectorized engines respond differently to
    cache/frequency pressure), while the geomean over the full matrix
    stays within a few percent.  The tight bar therefore goes on the
    geomean, where noise averages out, and the per-case bar only catches
    a case genuinely falling off a cliff.
    """
    baseline_best = {
        case["name"]: _best_speedup(case)
        for case in baseline.get("cases", ())
    }
    messages = []
    for case in payload.get("cases", ()):
        before = baseline_best.get(case["name"])
        if before is None or before <= 0:
            continue
        now = _best_speedup(case)
        if now < before * tolerance:
            messages.append(
                f"{case['name']}: best speedup {now:.2f}x fell below "
                f"{tolerance:.2f} * baseline {before:.2f}x"
            )
    baseline_geomean = max(
        baseline.get("geomean_speedup", 0.0),
        baseline.get("geomean_fast_speedup", 0.0),
    )
    geomean = max(
        payload.get("geomean_speedup", 0.0),
        payload.get("geomean_fast_speedup", 0.0),
    )
    if baseline_geomean > 0 and geomean < baseline_geomean * geomean_tolerance:
        messages.append(
            f"geomean: best speedup {geomean:.2f}x fell below "
            f"{geomean_tolerance:.2f} * baseline {baseline_geomean:.2f}x"
        )
    return messages


def bench_payload(report: BenchReport) -> dict[str, Any]:
    """JSON-compatible payload of a report (the BENCH_*.json format)."""
    incremental = None
    if report.incremental is not None:
        sweep = report.incremental
        incremental = {
            "workload": sweep.workload,
            "refs_points": list(sweep.refs_points),
            "num_cpus": sweep.num_cpus,
            "protocol": sweep.protocol,
            "warmup_refs": sweep.warmup_refs,
            "cold_seconds": round(sweep.cold_seconds, 4),
            "warm_seconds": round(sweep.warm_seconds, 4),
            "speedup": round(sweep.speedup, 4),
            "restored": sweep.restored,
            "identical": sweep.identical,
        }
    return {
        "incremental_sweep": incremental,
        "schema": BENCH_SCHEMA_VERSION,
        "tag": report.tag,
        "trace_scale": report.trace_scale,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "soa_kernel": report.soa_kernel,
        "geomean_speedup": round(report.geomean_speedup, 4),
        "geomean_fast_speedup": round(report.geomean_fast_speedup, 4),
        "cases_at_least_2x": report.cases_at_least_2x,
        "all_identical": report.all_identical,
        "cases": [
            {
                "name": record.case.name,
                "workload": record.case.workload,
                "num_cpus": record.case.num_cpus,
                "protocol": record.case.protocol,
                "reference_seconds": round(record.reference_seconds, 4),
                "fast_seconds": round(record.fast_seconds, 4),
                "soa_seconds": round(record.soa_seconds, 4),
                "speedup": round(record.speedup, 4),
                "fast_speedup": round(record.fast_speedup, 4),
                "references": record.references,
                "fast_refs_per_second": round(record.fast_refs_per_second, 1),
                "soa_refs_per_second": round(record.soa_refs_per_second, 1),
                "runtime_cycles": record.runtime_cycles,
                "identical": record.identical,
                "repeats": record.repeats,
            }
            for record in report.records
        ],
    }


def format_bench(report: BenchReport) -> str:
    """Human-readable table of a bench report."""
    headers = (
        "case", "reference", "fast", "soa", "speedup", "refs/s", "identical"
    )
    rows = [
        (
            record.case.name,
            f"{record.reference_seconds:.2f}s",
            f"{record.fast_seconds:.2f}s",
            f"{record.soa_seconds:.2f}s",
            f"{record.speedup:.2f}x",
            f"{record.soa_refs_per_second:,.0f}",
            "yes" if record.identical else "NO",
        )
        for record in report.records
    ]
    widths = [
        max(len(headers[i]), max((len(row[i]) for row in rows), default=0))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    lines.append("")
    lines.append(
        f"geomean speedup {report.geomean_speedup:.2f}x (soa, kernel "
        f"{report.soa_kernel or 'unresolved'}; fast "
        f"{report.geomean_fast_speedup:.2f}x) over "
        f"{len(report.records)} cases ({report.cases_at_least_2x} at >=2x), "
        f"results {'bit-identical' if report.all_identical else 'DIVERGED'}"
    )
    if report.incremental is not None:
        sweep = report.incremental
        points = "/".join(str(point) for point in sweep.refs_points)
        lines.append(
            f"incremental sweep ({points} refs, {sweep.restored} restores): "
            f"cold {sweep.cold_seconds:.2f}s vs checkpointed "
            f"{sweep.warm_seconds:.2f}s = {sweep.speedup:.2f}x, results "
            f"{'bit-identical' if sweep.identical else 'DIVERGED'}"
        )
    return "\n".join(lines)
