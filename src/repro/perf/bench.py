"""Reference-vs-fast engine benchmark harness (``python -m repro bench``).

Each :class:`BenchCase` names one (workload, machine) point.  The
harness generates the trace once per case, runs it on both engines
``repeats`` times (interleaved, best-of CPU time, so platform noise and
frequency wobble hit both engines alike), verifies the results are
bit-identical, and reports per-case speedups plus a geometric mean.

The committed ``BENCH_<tag>.json`` files at the repository root form
the performance trajectory of the project: one file per PR that changed
performance-relevant code, produced by ``python -m repro bench --output
BENCH_<tag>.json`` at default scale.  ``docs/PERFORMANCE.md`` explains
how to read them.
"""

from __future__ import annotations

import json
import math
import platform
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.api.request import RunRequest
from repro.api.scale import ExperimentScale
from repro.api.session import Session, execute_request
from repro.sim.config import SystemConfig
from repro.sim.engine import (
    ENGINE_FAST,
    ENGINE_REFERENCE,
    diff_fingerprints,
    result_fingerprint,
)
from repro.sim.simulator import SimulationResult, Simulator, resolve_trace
from repro.workloads import make_workload

#: Version of the BENCH_*.json payload layout.
BENCH_SCHEMA_VERSION = 1

#: Tag of the bench file this revision of the repository commits
#: (``BENCH_<tag>.json``).  Bumped by every PR that records a new point
#: on the performance trajectory.
DEFAULT_BENCH_TAG = 5

#: Figure workloads timed by default: the paper's five big-memory
#: workloads plus two small-footprint (Figure 11) applications.
DEFAULT_WORKLOADS = (
    "canneal",
    "data_caching",
    "graph500",
    "tunkrank",
    "facesim",
    "blackscholes",
    "swaptions",
)

#: Synthetic scenario families timed by default (one canonical scenario
#: each; see ``python -m repro scenario list``).
DEFAULT_SCENARIOS = (
    "syn:migration-daemon/seed=7",
    "syn:compaction/seed=7",
    "syn:steady/seed=7",
)


@dataclass(frozen=True)
class BenchCase:
    """One benchmark point: a workload on a machine configuration."""

    workload: str
    num_cpus: int = 16
    protocol: str = "hatric"
    label: str = ""

    @property
    def name(self) -> str:
        """Display name of the case."""
        if self.label:
            return self.label
        return f"{self.workload}@{self.num_cpus}cpu/{self.protocol}"


@dataclass
class BenchRecord:
    """Measured outcome of one case."""

    case: BenchCase
    reference_seconds: float
    fast_seconds: float
    references: int
    runtime_cycles: int
    identical: bool
    repeats: int

    @property
    def speedup(self) -> float:
        """Reference time over fast time (higher is better)."""
        if self.fast_seconds <= 0.0:
            return float("inf")
        return self.reference_seconds / self.fast_seconds

    @property
    def fast_refs_per_second(self) -> float:
        """Simulated references retired per wall second (fast engine)."""
        if self.fast_seconds <= 0.0:
            return float("inf")
        return self.references / self.fast_seconds


@dataclass
class BenchReport:
    """All records of one harness run plus run-wide metadata."""

    records: list[BenchRecord] = field(default_factory=list)
    trace_scale: float = 1.0
    tag: int = DEFAULT_BENCH_TAG
    #: cold-vs-checkpointed sweep timing (None when skipped).
    incremental: Optional[IncrementalSweepRecord] = None

    @property
    def geomean_speedup(self) -> float:
        """Geometric-mean speedup across all cases."""
        if not self.records:
            return 0.0
        return math.exp(
            sum(math.log(r.speedup) for r in self.records) / len(self.records)
        )

    @property
    def all_identical(self) -> bool:
        """True when every case (and the incremental sweep, if timed)
        produced bit-identical results."""
        identical = all(record.identical for record in self.records)
        if self.incremental is not None:
            identical = identical and self.incremental.identical
        return identical

    @property
    def cases_at_least_2x(self) -> int:
        """Number of cases where the fast engine is >= 2x faster."""
        return sum(1 for record in self.records if record.speedup >= 2.0)


#: Default shape of the checkpointed incremental-sweep case: a
#: ``refs_total`` sweep over one prefix-capped scenario, the workload
#: pattern ``Session(checkpoints=True)`` exists to accelerate.
SWEEP_INNER_WORKLOAD = "syn:migration-daemon/seed=7"
SWEEP_POINTS = (150_000, 300_000, 450_000)
SWEEP_NUM_CPUS = 8
SWEEP_PROTOCOL = "software"
SWEEP_WARMUP_REFS = 1_000
SWEEP_INTERVAL_REFS = 10_000


@dataclass
class IncrementalSweepRecord:
    """Cold-vs-checkpointed timing of one ``refs_total`` sweep."""

    workload: str
    refs_points: tuple[int, ...]
    num_cpus: int
    protocol: str
    warmup_refs: int
    cold_seconds: float
    warm_seconds: float
    identical: bool
    restored: int

    @property
    def speedup(self) -> float:
        """Cold time over checkpointed time (higher is better).

        Clamped away from division by zero so degenerate sub-resolution
        timings never emit non-standard ``Infinity`` JSON.
        """
        return self.cold_seconds / max(self.warm_seconds, 1e-9)


def run_incremental_sweep(
    inner_workload: str = SWEEP_INNER_WORKLOAD,
    points: Sequence[int] = SWEEP_POINTS,
    num_cpus: int = SWEEP_NUM_CPUS,
    protocol: str = SWEEP_PROTOCOL,
    warmup_refs: int = SWEEP_WARMUP_REFS,
    interval_refs: int = SWEEP_INTERVAL_REFS,
    scale: Optional[ExperimentScale] = None,
) -> IncrementalSweepRecord:
    """Time a ``refs_total`` sweep cold vs. through Session checkpoints.

    Cold executes every point from scratch; warm runs the same requests
    through ``Session(checkpoints=True)`` on a throwaway cache
    directory, so each longer point restores the previous point's final
    checkpoint and simulates only the tail.  Results are verified
    bit-identical, and both sides resolve their traces the same way, so
    the ratio isolates the checkpoint machinery.
    """
    from repro.api.session import CHECKPOINT_COUNTERS

    factor = (scale or ExperimentScale()).trace_scale
    # dedupe after scaling: collapsed points would make the cold loop
    # re-simulate a request the warm session answers from its memo,
    # crediting memoization to the checkpoint machinery.
    points = tuple(
        sorted({max(4_000, int(point * factor)) for point in points})
    )
    base = points[-1]
    workload = f"prefix:{base}:{inner_workload}"
    config = SystemConfig(num_cpus=num_cpus, protocol=protocol)
    requests = [
        RunRequest(
            config=config,
            workload=workload,
            refs_total=refs,
            warmup_refs=warmup_refs,
            interval_refs=interval_refs,
        )
        for refs in points
    ]

    started = time.process_time()
    cold = [execute_request(request) for request in requests]
    cold_seconds = time.process_time() - started

    before = dict(CHECKPOINT_COUNTERS)
    with tempfile.TemporaryDirectory(prefix="repro-bench-ckpt-") as tmp:
        session = Session(cache_dir=tmp, checkpoints=True)
        started = time.process_time()
        warm = [session.run(request) for request in requests]
        warm_seconds = time.process_time() - started
    restored = CHECKPOINT_COUNTERS["restored"] - before["restored"]

    identical = all(
        not diff_fingerprints(
            result_fingerprint(cold_result), result_fingerprint(warm_result)
        )
        for cold_result, warm_result in zip(cold, warm)
    )
    return IncrementalSweepRecord(
        workload=workload,
        refs_points=points,
        num_cpus=num_cpus,
        protocol=protocol,
        warmup_refs=warmup_refs,
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        identical=identical,
        restored=restored,
    )


def default_cases(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    num_cpus: int = 16,
    protocol: str = "hatric",
) -> list[BenchCase]:
    """The default benchmark matrix: figure workloads plus scenarios."""
    cases = [
        BenchCase(workload=name, num_cpus=num_cpus, protocol=protocol)
        for name in workloads
    ]
    cases += [
        BenchCase(workload=name, num_cpus=num_cpus, protocol=protocol)
        for name in scenarios
    ]
    return cases


def _time_run(
    config: SystemConfig, trace, warmup_fraction: float, engine: str
) -> tuple[float, SimulationResult]:
    """Build a fresh machine, run ``trace`` on ``engine``; return CPU time."""
    simulator = Simulator(config, engine=engine)
    started = time.process_time()
    result = simulator.run(trace, warmup_fraction=warmup_fraction)
    return time.process_time() - started, result


def run_case(
    case: BenchCase,
    repeats: int = 3,
    scale: Optional[ExperimentScale] = None,
) -> BenchRecord:
    """Benchmark one case; returns the record with both engine timings.

    The trace is generated once and reused, so only engine execution is
    timed.  Runs are interleaved (reference, fast, reference, fast, ...)
    and the best CPU time per engine is kept, which makes the ratio
    robust against background load and frequency scaling.
    """
    scale = scale or ExperimentScale()
    config = SystemConfig(num_cpus=case.num_cpus, protocol=case.protocol)
    workload = make_workload(case.workload)
    trace = resolve_trace(
        workload, config.num_cpus, config.seed, scale.refs_for(workload)
    )

    best = {ENGINE_REFERENCE: float("inf"), ENGINE_FAST: float("inf")}
    results: dict[str, SimulationResult] = {}
    for _ in range(max(1, repeats)):
        for engine in (ENGINE_REFERENCE, ENGINE_FAST):
            seconds, result = _time_run(
                config, trace, scale.warmup_fraction, engine
            )
            best[engine] = min(best[engine], seconds)
            results[engine] = result

    identical = not diff_fingerprints(
        result_fingerprint(results[ENGINE_REFERENCE]),
        result_fingerprint(results[ENGINE_FAST]),
    )
    fast = results[ENGINE_FAST]
    return BenchRecord(
        case=case,
        reference_seconds=best[ENGINE_REFERENCE],
        fast_seconds=best[ENGINE_FAST],
        references=fast.stats.total_instructions + fast.warmup_references,
        runtime_cycles=fast.runtime_cycles,
        identical=identical,
        repeats=max(1, repeats),
    )


def run_bench(
    cases: Optional[Sequence[BenchCase]] = None,
    repeats: int = 3,
    scale: Optional[ExperimentScale] = None,
    tag: int = DEFAULT_BENCH_TAG,
    incremental: bool = True,
) -> BenchReport:
    """Run the benchmark matrix and return the full report.

    ``incremental`` additionally times the checkpointed ``refs_total``
    sweep (:func:`run_incremental_sweep`).
    """
    scale = scale or ExperimentScale()
    report = BenchReport(trace_scale=scale.trace_scale, tag=tag)
    for case in cases if cases is not None else default_cases():
        report.records.append(run_case(case, repeats=repeats, scale=scale))
    if incremental:
        report.incremental = run_incremental_sweep(scale=scale)
    return report


def bench_payload(report: BenchReport) -> dict[str, Any]:
    """JSON-compatible payload of a report (the BENCH_*.json format)."""
    incremental = None
    if report.incremental is not None:
        sweep = report.incremental
        incremental = {
            "workload": sweep.workload,
            "refs_points": list(sweep.refs_points),
            "num_cpus": sweep.num_cpus,
            "protocol": sweep.protocol,
            "warmup_refs": sweep.warmup_refs,
            "cold_seconds": round(sweep.cold_seconds, 4),
            "warm_seconds": round(sweep.warm_seconds, 4),
            "speedup": round(sweep.speedup, 4),
            "restored": sweep.restored,
            "identical": sweep.identical,
        }
    return {
        "incremental_sweep": incremental,
        "schema": BENCH_SCHEMA_VERSION,
        "tag": report.tag,
        "trace_scale": report.trace_scale,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "geomean_speedup": round(report.geomean_speedup, 4),
        "cases_at_least_2x": report.cases_at_least_2x,
        "all_identical": report.all_identical,
        "cases": [
            {
                "name": record.case.name,
                "workload": record.case.workload,
                "num_cpus": record.case.num_cpus,
                "protocol": record.case.protocol,
                "reference_seconds": round(record.reference_seconds, 4),
                "fast_seconds": round(record.fast_seconds, 4),
                "speedup": round(record.speedup, 4),
                "references": record.references,
                "fast_refs_per_second": round(record.fast_refs_per_second, 1),
                "runtime_cycles": record.runtime_cycles,
                "identical": record.identical,
                "repeats": record.repeats,
            }
            for record in report.records
        ],
    }


def format_bench(report: BenchReport) -> str:
    """Human-readable table of a bench report."""
    headers = ("case", "reference", "fast", "speedup", "refs/s", "identical")
    rows = [
        (
            record.case.name,
            f"{record.reference_seconds:.2f}s",
            f"{record.fast_seconds:.2f}s",
            f"{record.speedup:.2f}x",
            f"{record.fast_refs_per_second:,.0f}",
            "yes" if record.identical else "NO",
        )
        for record in report.records
    ]
    widths = [
        max(len(headers[i]), max((len(row[i]) for row in rows), default=0))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    lines.append("")
    lines.append(
        f"geomean speedup {report.geomean_speedup:.2f}x over "
        f"{len(report.records)} cases ({report.cases_at_least_2x} at >=2x), "
        f"results {'bit-identical' if report.all_identical else 'DIVERGED'}"
    )
    if report.incremental is not None:
        sweep = report.incremental
        points = "/".join(str(point) for point in sweep.refs_points)
        lines.append(
            f"incremental sweep ({points} refs, {sweep.restored} restores): "
            f"cold {sweep.cold_seconds:.2f}s vs checkpointed "
            f"{sweep.warm_seconds:.2f}s = {sweep.speedup:.2f}x, results "
            f"{'bit-identical' if sweep.identical else 'DIVERGED'}"
        )
    return "\n".join(lines)
