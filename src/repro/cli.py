"""Command-line front-end: ``python -m repro``.

Runs any figure of the paper or an arbitrary declarative sweep through
the :mod:`repro.api` engine, prints the table the figure encodes, and
optionally exports JSON.  Examples::

    python -m repro list
    python -m repro figure2 --scale 0.05
    python -m repro figure7 --workloads canneal,facesim --json
    python -m repro figure10 --mixes 4 --apps-per-mix 8 --jobs 4
    python -m repro sweep --axis protocol=software,hatric,ideal \\
        --axis workload=canneal,facesim \\
        --normalize protocol=ideal --normalize placement=slow-only
    python -m repro scenario run --family migration-daemon \\
        --protocols software,hatric,ideal --seed 7
    python -m repro scenario diff --seeds 0,1,2
    python -m repro consolidation --guests 1,2 --sharing pinned,shared \\
        --scale 0.3
    python -m repro bench --workloads facesim,swaptions --repeats 3 \\
        --output BENCH_3.json

The full command reference lives in docs/CLI.md.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Any, Callable, Optional, Sequence

from repro import __version__
from repro.api import ExperimentScale, Session, Sweep, SweepResult
from repro.api.cache import DEFAULT_PRUNE_MIN_AGE_SECONDS
from repro.experiments import (
    format_anatomy,
    format_figure2,
    format_figure7,
    format_figure8,
    format_figure9,
    format_figure10,
    format_figure11_left,
    format_figure11_right,
    format_figure12,
    format_figure13,
    format_xen_study,
    run_anatomy,
    run_figure2,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11_left,
    run_figure11_right,
    run_figure12,
    run_figure13,
    run_xen_study,
)
from repro.experiments.runner import baseline_config
from repro.experiments.scenarios import (
    SCENARIO_FAMILIES,
    SCENARIO_PROTOCOLS,
    format_differential,
    format_scenarios,
    run_differential,
    run_scenarios,
)
from repro.workloads import WORKLOADS, make_workload
from repro.workloads.synthetic import (
    ADDRESS_MODELS,
    SHARING_MODELS,
    scenario_spec,
    summarize_trace,
)


@dataclasses.dataclass(frozen=True)
class FigureSpec:
    """How to run and render one figure from the command line."""

    run: Callable[..., Any]
    fmt: Callable[[Any], str]
    description: str
    #: which generic CLI options this figure's run function accepts.
    params: tuple[str, ...] = ("workloads", "num_cpus", "scale", "session")


FIGURES: dict[str, FigureSpec] = {
    "figure2": FigureSpec(
        run_figure2, format_figure2, "cost of software translation coherence"
    ),
    "figure7": FigureSpec(run_figure7, format_figure7, "runtime vs vCPU count"),
    "figure8": FigureSpec(run_figure8, format_figure8, "runtime vs paging policy"),
    "figure9": FigureSpec(
        run_figure9, format_figure9, "translation structure size sensitivity"
    ),
    "figure10": FigureSpec(
        run_figure10,
        format_figure10,
        "multiprogrammed SPEC mixes",
        params=("mixes", "apps_per_mix", "scale", "session"),
    ),
    "figure11-left": FigureSpec(
        run_figure11_left,
        format_figure11_left,
        "performance-energy scatter (HATRIC vs software)",
        params=("num_cpus", "scale", "session"),
    ),
    "figure11-right": FigureSpec(
        run_figure11_right,
        format_figure11_right,
        "co-tag width sweep",
        params=("workloads", "num_cpus", "scale", "session"),
    ),
    "figure12": FigureSpec(
        run_figure12, format_figure12, "coherence directory ablation"
    ),
    "figure13": FigureSpec(run_figure13, format_figure13, "HATRIC vs UNITD++"),
    "anatomy": FigureSpec(
        run_anatomy,
        format_anatomy,
        "single page remap cost breakdown",
        params=("num_cpus", "session"),
    ),
    "xen": FigureSpec(
        run_xen_study, format_xen_study, "Xen case study"
    ),
}


def _parse_axis_value(raw: str) -> Any:
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def _parse_key_values(pairs: Sequence[str], option: str) -> dict[str, Any]:
    parsed: dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key or not value:
            raise SystemExit(f"error: {option} expects KEY=VALUE, got {pair!r}")
        parsed[key] = _parse_axis_value(value)
    return parsed


def _build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--scale",
        type=float,
        default=None,
        metavar="FACTOR",
        help="trace-length multiplier (default: REPRO_EXPERIMENT_SCALE or 1.0)",
    )
    common.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan runs out across N worker processes (results are identical)",
    )
    common.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist results as JSON under DIR and reuse them across runs",
    )
    common.add_argument(
        "--json", action="store_true", help="print JSON instead of a table"
    )
    common.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the printed output to PATH",
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate figures of the HATRIC paper or run custom sweeps.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list figures and workloads")

    for name, spec in FIGURES.items():
        sub = subparsers.add_parser(name, parents=[common], help=spec.description)
        if "workloads" in spec.params:
            sub.add_argument(
                "--workloads",
                default=None,
                metavar="A,B,...",
                help="comma-separated workload names (default: the paper's suite)",
            )
        if "num_cpus" in spec.params:
            sub.add_argument(
                "--num-cpus", type=int, default=None, metavar="N", help="vCPU count"
            )
        if "mixes" in spec.params:
            sub.add_argument(
                "--mixes", type=int, default=None, metavar="N", help="number of mixes"
            )
        if "apps_per_mix" in spec.params:
            sub.add_argument(
                "--apps-per-mix",
                type=int,
                default=None,
                metavar="N",
                help="applications (vCPUs) per mix",
            )

    sweep = subparsers.add_parser(
        "sweep", parents=[common], help="run an arbitrary declarative sweep"
    )
    sweep.add_argument(
        "--axis",
        action="append",
        required=True,
        metavar="NAME=V1,V2,...",
        help="one sweep axis; NAME is 'workload' or a SystemConfig field "
        "(protocol, placement, hypervisor, num_cpus, ...); repeatable",
    )
    sweep.add_argument(
        "--normalize",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="normalize each point to the sibling with NAME overridden; repeatable",
    )
    sweep.add_argument(
        "--num-cpus",
        type=int,
        default=16,
        metavar="N",
        help="vCPU count of the base system (default 16)",
    )
    sweep.add_argument(
        "--hypervisor",
        default="kvm",
        choices=("kvm", "xen"),
        help="hypervisor of the base system",
    )

    _add_consolidation_parser(subparsers, common)
    _add_scenario_parser(subparsers, common)
    _add_hunt_parser(subparsers, common)
    _add_timeline_parser(subparsers, common)
    _add_profile_parser(subparsers, common)
    _add_run_parser(subparsers, common)
    _add_trace_parser(subparsers)
    _add_fleet_parser(subparsers, common)
    _add_cache_parser(subparsers)
    _add_bench_parser(subparsers)
    _add_serve_parser(subparsers)
    _add_loadtest_parser(subparsers)
    return parser


def _add_serve_parser(subparsers) -> None:
    serve = subparsers.add_parser(
        "serve",
        help="serve simulations over HTTP (multi-tenant, single-flight)",
        description=(
            "Start the asyncio HTTP/JSON simulation service: clients "
            "POST RunRequest/Sweep/FleetRequest payloads, identical "
            "in-flight requests coalesce to one execution, and results "
            "persist in the shared on-disk store.  See docs/SERVE.md."
        ),
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="interface to bind (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8357,
        metavar="PORT",
        help="port to listen on; 0 picks an ephemeral port (default 8357)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result-store directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-hatric)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="cold-simulation worker processes; 0 executes on an "
        "in-process thread pool (default 2)",
    )


def _add_loadtest_parser(subparsers) -> None:
    loadtest = subparsers.add_parser(
        "loadtest",
        help="drive concurrent synthetic clients against a server",
        description=(
            "Run the concurrency/load harness: seeded asyncio clients "
            "issue a zipf-skewed request mix, then the run asserts the "
            "service contract (single-flight dedup, counter "
            "conservation, zero invariant violations, bit-identity "
            "with direct execution) and reports hit/miss latency "
            "percentiles.  Spawns an in-process server unless --port "
            "targets a live one."
        ),
    )
    loadtest.add_argument(
        "--clients",
        type=int,
        default=1000,
        metavar="N",
        help="concurrent synthetic clients (default 1000)",
    )
    loadtest.add_argument(
        "--requests",
        type=int,
        default=3,
        metavar="N",
        help="sequential requests per client (default 3)",
    )
    loadtest.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="run for a fixed time instead of a fixed request count",
    )
    loadtest.add_argument(
        "--scenarios",
        type=int,
        default=8,
        metavar="N",
        help="distinct synthetic scenarios in the pool (default 8)",
    )
    loadtest.add_argument(
        "--zipf",
        type=float,
        default=1.1,
        metavar="S",
        help="zipf skew of the request mix (default 1.1)",
    )
    loadtest.add_argument(
        "--seed",
        type=int,
        default=2025,
        metavar="N",
        help="seed for the scenario pool and the request mix",
    )
    loadtest.add_argument(
        "--num-cpus",
        type=int,
        default=4,
        metavar="N",
        help="machine shape of every request (default 4)",
    )
    loadtest.add_argument(
        "--refs",
        type=int,
        default=4000,
        metavar="N",
        help="per-request reference budget (default 4000)",
    )
    loadtest.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="worker processes of the spawned server; 0 uses threads "
        "(default 2; ignored with --port)",
    )
    loadtest.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="store directory of the spawned server (default: the "
        "default store; ignored with --port)",
    )
    loadtest.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="host of an already-running server (with --port)",
    )
    loadtest.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="port of an already-running server; omit to spawn one "
        "in-process",
    )
    loadtest.add_argument(
        "--connection-limit",
        type=int,
        default=None,
        metavar="N",
        help="simultaneously-open client connections (default 256)",
    )
    loadtest.add_argument(
        "--expect",
        choices=("cold", "warm", "any"),
        default="cold",
        help="dedup assertion: cold store (executed == distinct), warm "
        "store (executed == 0), or any (executed <= distinct)",
    )
    loadtest.add_argument(
        "--no-multi",
        action="store_true",
        help="exclude multi-VM (consolidated) names from the pool",
    )
    loadtest.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the bit-identity re-execution of distinct requests",
    )
    loadtest.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of the text table",
    )
    loadtest.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the report to FILE (e.g. LOAD_9.txt)",
    )


def _add_hunt_parser(subparsers, common: argparse.ArgumentParser) -> None:
    from repro.search import DEFAULT_OBJECTIVE, OBJECTIVES

    hunt = subparsers.add_parser(
        "hunt",
        parents=[common],
        help="adversarial scenario search under the invariant oracle",
    )
    hunt.add_argument(
        "--budget", type=int, default=50, metavar="N",
        help="unique candidate evaluations before stopping (default 50)",
    )
    hunt.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="hunt seed; the same seed replays the identical hunt",
    )
    hunt.add_argument(
        "--objective",
        default=DEFAULT_OBJECTIVE,
        choices=tuple(OBJECTIVES),
        help="protocol gap to optimize (default: %(default)s)",
    )
    hunt.add_argument(
        "--protocols",
        default="software,hatric,ideal",
        metavar="P1,P2,...",
        help="protocols simulated per candidate (default: %(default)s)",
    )
    hunt.add_argument(
        "--num-cpus", type=int, default=8, metavar="N",
        help="pCPU count of the hunted machine (default 8)",
    )
    hunt.add_argument(
        "--refs", type=int, default=12_000, metavar="N",
        help="references per simulation, before --scale (default 12000)",
    )
    hunt.add_argument(
        "--population", type=int, default=8, metavar="N",
        help="candidates bred per generation (default 8)",
    )
    hunt.add_argument(
        "--max-guests", type=int, default=2, metavar="N",
        help="guest ceiling for multi-VM candidates (default 2)",
    )
    hunt.add_argument(
        "--frontier", type=int, default=8, metavar="N",
        help="top evaluations kept in the reported frontier (default 8)",
    )
    hunt.add_argument(
        "--corpus", default=None, metavar="PATH",
        help="also write the frontier as a scenario-corpus JSON to PATH",
    )
    hunt.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache (on by default here)",
    )


def _hunt_session(args: argparse.Namespace) -> Session:
    # Hunts default to the persistent cache *with* checkpoints: re-runs
    # resolve from disk (a seeded hunt replays the identical request
    # sequence) and neighboring candidates reuse checkpoint families.
    if args.no_cache:
        return Session(max_workers=args.jobs)
    return Session(
        cache_dir=args.cache_dir or True,
        max_workers=args.jobs,
        checkpoints=True,
    )


def _run_hunt(args: argparse.Namespace) -> tuple[str, int]:
    from repro.search import (
        HuntSettings,
        HuntViolationError,
        corpus_from_result,
        format_hunt,
        run_hunt,
    )

    protocols = tuple(p.strip() for p in args.protocols.split(",") if p.strip())
    settings = HuntSettings(
        objective=args.objective,
        budget=args.budget,
        seed=args.seed,
        protocols=protocols,
        num_cpus=args.num_cpus,
        refs_total=args.refs,
        population=args.population,
        max_guests=args.max_guests,
        frontier_size=args.frontier,
    )
    if args.scale is not None:
        settings = settings.scaled(args.scale)
    session = _hunt_session(args)
    try:
        result = run_hunt(settings, session)
    except HuntViolationError as error:
        if args.json:
            payload = {
                "ok": False,
                "error": str(error),
                "reproducer": error.reproducer,
                "session": dataclasses.asdict(session.stats),
            }
            return json.dumps(payload, indent=2), 1
        lines = [
            f"VIOLATION {error.workload}: {violation}"
            for violation in error.violations
        ]
        lines.append("reproducer (hunt seed + RunRequest payloads):")
        lines.append(json.dumps(error.reproducer, indent=2))
        return "\n".join(lines), 1
    if args.corpus:
        with open(args.corpus, "w", encoding="utf-8") as handle:
            json.dump(corpus_from_result(result), handle, indent=2)
            handle.write("\n")
    if args.json:
        payload = result.to_dict()
        payload["ok"] = True
        payload["session"] = dataclasses.asdict(session.stats)
        return json.dumps(payload, indent=2), 0
    return format_hunt(result) + "\n" + _session_footer(session), 0


def _add_fleet_parser(subparsers, common: argparse.ArgumentParser) -> None:
    from repro.experiments.fleet import (
        DEFAULT_FLEET_WORKLOAD,
        DEFAULT_INTENSITIES,
        FLEET_PROTOCOLS,
    )
    from repro.fleet import MIGRATION_POLICIES

    fleet = subparsers.add_parser(
        "fleet",
        parents=[common],
        help="fleet-scale study: live migration between simulated hosts",
        description=(
            "Simulate a datacenter of identical hosts whose guests live-"
            "migrate between them on a deterministic schedule, sweeping "
            "translation coherence protocols over migration intensity. "
            "Each move ships the guest's page tables to the destination "
            "and replays a dirty-logging write storm on both ends; the "
            "table reports fleet makespan normalized to the ideal "
            "protocol plus per-VM p99 tail latency and SLO violations.  "
            "The exit code reflects the fleet differential invariants."
        ),
    )
    fleet.add_argument(
        "--hosts", type=int, default=2, metavar="N",
        help="number of simulated hosts (default 2)",
    )
    fleet.add_argument(
        "--vms-per-host", type=int, default=2, metavar="N",
        help="guests initially placed on each host (default 2)",
    )
    fleet.add_argument(
        "--workload",
        default=DEFAULT_FLEET_WORKLOAD,
        metavar="NAME",
        help=f"per-guest tenant workload (default {DEFAULT_FLEET_WORKLOAD!r})",
    )
    fleet.add_argument(
        "--vcpus", type=int, default=1, metavar="N",
        help="vCPUs per guest (default 1)",
    )
    fleet.add_argument(
        "--num-cpus", type=int, default=8, metavar="N",
        help="pCPUs per host (default 8)",
    )
    fleet.add_argument(
        "--seed", type=int, default=42, metavar="N",
        help="fleet master seed (default 42)",
    )
    fleet.add_argument(
        "--policy",
        default="round-robin",
        choices=MIGRATION_POLICIES,
        help="migration scheduling policy (default round-robin)",
    )
    fleet.add_argument(
        "--epochs", type=int, default=4, metavar="N",
        help="round-aligned execution epochs (default 4)",
    )
    fleet.add_argument(
        "--epoch-refs", type=int, default=2048, metavar="N",
        help="per-vCPU references per epoch; multiple of 32 (default 2048)",
    )
    fleet.add_argument(
        "--storm-refs", type=int, default=512, metavar="N",
        help="per-stream dirty-logging storm length; multiple of 32 "
        "(default 512)",
    )
    fleet.add_argument(
        "--intensities",
        default=",".join(str(x) for x in DEFAULT_INTENSITIES),
        metavar="N1,N2,...",
        help=f"VMs migrated per wave, one fleet per value (default "
        f"{','.join(str(x) for x in DEFAULT_INTENSITIES)})",
    )
    fleet.add_argument(
        "--protocols",
        default=",".join(FLEET_PROTOCOLS),
        metavar="P1,P2,...",
        help=f"protocols to compare (default: {','.join(FLEET_PROTOCOLS)})",
    )
    fleet.add_argument(
        "--engine",
        default=None,
        choices=("reference", "fast", "soa"),
        help="simulation engine (default: REPRO_SIM_ENGINE or fast)",
    )


def _run_fleet(args: argparse.Namespace) -> tuple[str, int]:
    from repro.experiments.fleet import format_fleet, run_fleet_experiment
    from repro.experiments.output import experiment_output

    if args.scale is not None:
        raise ValueError(
            "fleet does not take --scale (its epoch geometry is explicit; "
            "use --epochs/--epoch-refs instead)"
        )
    study = run_fleet_experiment(
        hosts=args.hosts,
        vms_per_host=args.vms_per_host,
        workload=args.workload,
        vcpus=args.vcpus,
        num_cpus=args.num_cpus,
        seed=args.seed,
        policy=args.policy,
        epochs=args.epochs,
        epoch_refs=args.epoch_refs,
        storm_refs=args.storm_refs,
        intensities=tuple(
            int(x) for x in args.intensities.split(",") if x.strip()
        ),
        protocols=tuple(
            p.strip() for p in args.protocols.split(",") if p.strip()
        ),
        engine=args.engine or "",
        session=_session_from_args(args),
    )
    return experiment_output(
        args.json,
        study.to_dict,
        lambda: format_fleet(study),
        ok=study.ok,
    )


def _add_timeline_parser(subparsers, common: argparse.ArgumentParser) -> None:
    from repro.experiments.timeline import (
        DEFAULT_TIMELINE_REFS,
        DEFAULT_TIMELINE_VCPUS,
        DEFAULT_TIMELINE_WORKLOAD,
        TIMELINE_PROTOCOLS,
    )

    timeline = subparsers.add_parser(
        "timeline",
        parents=[common],
        help="time-resolved protocol comparison (interval telemetry)",
        description=(
            "Run one workload under several translation coherence "
            "protocols with per-interval statistics deltas and print "
            "the protocols' coherence activity over time -- e.g. the "
            "software baseline's shootdown storms during "
            "migration-daemon bursts while HATRIC stays flat.  "
            "multi: composed names give consolidated timelines."
        ),
    )
    timeline.add_argument(
        "--workload",
        default=DEFAULT_TIMELINE_WORKLOAD,
        metavar="NAME",
        help=f"workload to trace (default {DEFAULT_TIMELINE_WORKLOAD!r}; "
        f"suite, mixNN, syn:, multi: and prefix: names all work)",
    )
    timeline.add_argument(
        "--protocols",
        default=",".join(TIMELINE_PROTOCOLS),
        metavar="P1,P2,...",
        help=f"protocols to compare (default: {','.join(TIMELINE_PROTOCOLS)})",
    )
    timeline.add_argument(
        "--num-cpus",
        type=int,
        default=DEFAULT_TIMELINE_VCPUS,
        metavar="N",
        help=f"vCPU count (default {DEFAULT_TIMELINE_VCPUS})",
    )
    timeline.add_argument(
        "--refs",
        type=int,
        default=DEFAULT_TIMELINE_REFS,
        metavar="N",
        help=f"total references (default {DEFAULT_TIMELINE_REFS})",
    )
    timeline.add_argument(
        "--intervals",
        type=int,
        default=16,
        metavar="N",
        help="approximate number of telemetry intervals (default 16)",
    )
    timeline.add_argument(
        "--chart",
        action="store_true",
        help="render compact ASCII activity sparklines instead of "
        "per-interval tables",
    )


def _run_timeline(args: argparse.Namespace) -> tuple[str, int]:
    from repro.experiments.output import experiment_output
    from repro.experiments.timeline import (
        format_timeline,
        format_timeline_chart,
        run_timeline,
    )

    result = run_timeline(
        workload=args.workload,
        protocols=tuple(
            p.strip() for p in args.protocols.split(",") if p.strip()
        ),
        num_cpus=args.num_cpus,
        refs_total=args.refs,
        intervals=args.intervals,
        scale=_scale_from_args(args),
        session=_session_from_args(args),
    )
    renderer = format_timeline_chart if args.chart else format_timeline
    return experiment_output(
        args.json, result.to_dict, lambda: renderer(result)
    )


def _add_profile_parser(subparsers, common: argparse.ArgumentParser) -> None:
    from repro.experiments.timeline import (
        DEFAULT_TIMELINE_REFS,
        DEFAULT_TIMELINE_VCPUS,
        DEFAULT_TIMELINE_WORKLOAD,
        TIMELINE_PROTOCOLS,
    )

    profile = subparsers.add_parser(
        "profile",
        parents=[common],
        help="per-component cycle/energy attribution report",
        description=(
            "Run one workload under several protocols and report where "
            "the cycles and energy went: exact measured splits "
            "(translate+memory vs translation coherence vs background "
            "paging daemon), modeled attribution within them (events x "
            "cost model: shootdown initiator/target, directory traffic, "
            "co-tag CAM searches, page copies), the energy model's "
            "per-structure breakdown, per-VM splits for multi: "
            "workloads, and a coherence activity sparkline.  Shares "
            "request shapes (and hence cached results) with timeline."
        ),
    )
    profile.add_argument(
        "--workload",
        default=DEFAULT_TIMELINE_WORKLOAD,
        metavar="NAME",
        help=f"workload to profile (default {DEFAULT_TIMELINE_WORKLOAD!r}; "
        f"suite, mixNN, syn:, multi: and prefix: names all work)",
    )
    profile.add_argument(
        "--protocols",
        default=",".join(TIMELINE_PROTOCOLS),
        metavar="P1,P2,...",
        help=f"protocols to compare (default: {','.join(TIMELINE_PROTOCOLS)})",
    )
    profile.add_argument(
        "--num-cpus",
        type=int,
        default=DEFAULT_TIMELINE_VCPUS,
        metavar="N",
        help=f"vCPU count (default {DEFAULT_TIMELINE_VCPUS})",
    )
    profile.add_argument(
        "--refs",
        type=int,
        default=DEFAULT_TIMELINE_REFS,
        metavar="N",
        help=f"total references (default {DEFAULT_TIMELINE_REFS})",
    )
    profile.add_argument(
        "--intervals",
        type=int,
        default=16,
        metavar="N",
        help="approximate number of telemetry intervals (default 16)",
    )


def _run_profile(args: argparse.Namespace) -> tuple[str, int]:
    from repro.experiments.output import experiment_output
    from repro.experiments.profile import format_profile, run_profile

    result = run_profile(
        workload=args.workload,
        protocols=tuple(
            p.strip() for p in args.protocols.split(",") if p.strip()
        ),
        num_cpus=args.num_cpus,
        refs_total=args.refs,
        intervals=args.intervals,
        scale=_scale_from_args(args),
        session=_session_from_args(args),
    )
    return experiment_output(
        args.json, result.to_dict, lambda: format_profile(result)
    )


def _add_run_parser(subparsers, common: argparse.ArgumentParser) -> None:
    run = subparsers.add_parser(
        "run",
        parents=[common],
        help="run one workload/protocol and print its summary",
        description=(
            "Execute a single simulation through the session (so the "
            "result caches like any other request) and print its "
            "headline measurements plus a fingerprint digest over "
            "everything the run measured.  With REPRO_TRACE set, the "
            "run emits session-planning and simulator-interval spans; "
            "the printed digest is bit-identical with tracing on or "
            "off."
        ),
    )
    run.add_argument(
        "--workload",
        default="syn:migration-daemon/addr=zipf/seed=7",
        metavar="NAME",
        help="workload to run (default 'syn:migration-daemon/addr=zipf/"
        "seed=7'; suite, mixNN, syn:, multi: and prefix: names all work)",
    )
    run.add_argument(
        "--protocol",
        default="hatric",
        metavar="P",
        help="translation coherence protocol (default hatric)",
    )
    run.add_argument(
        "--engine",
        default=None,
        metavar="E",
        help="execution engine (reference, fast, soa; default: "
        "REPRO_SIM_ENGINE or fast)",
    )
    run.add_argument(
        "--num-cpus",
        type=int,
        default=8,
        metavar="N",
        help="vCPU count (default 8)",
    )
    run.add_argument(
        "--refs",
        type=int,
        default=20_000,
        metavar="N",
        help="total references (default 20000)",
    )
    run.add_argument(
        "--intervals",
        type=int,
        default=0,
        metavar="N",
        help="emit interval telemetry in approximately N windows "
        "(default 0: no intervals)",
    )


def _run_run(args: argparse.Namespace) -> tuple[str, int]:
    import hashlib

    from repro.api.request import RunRequest
    from repro.experiments.output import experiment_output
    from repro.experiments.runner import baseline_config
    from repro.sim.engine import result_fingerprint

    session = _session_from_args(args)
    interval_refs = (
        max(256, args.refs // args.intervals) if args.intervals > 0 else None
    )
    request = RunRequest(
        config=baseline_config(num_cpus=args.num_cpus, protocol=args.protocol),
        workload=args.workload,
        refs_total=args.refs,
        interval_refs=interval_refs,
        engine=args.engine or "",
    )
    result = session.run(request)
    fingerprint = result_fingerprint(result)
    digest = hashlib.sha256(
        json.dumps(fingerprint, sort_keys=True).encode("utf-8")
    ).hexdigest()

    def payload() -> dict:
        return {
            "workload": args.workload,
            "protocol": args.protocol,
            "key": request.cache_key,
            "runtime_cycles": result.runtime_cycles,
            "coherence_cycles": result.coherence_cycles,
            "background_cycles": result.stats.background_cycles,
            "instructions": result.stats.total_instructions,
            "energy": result.energy_total,
            "intervals": len(result.intervals),
            "fingerprint_sha256": digest,
        }

    def table() -> str:
        lines = [
            f"run: {args.workload} protocol={args.protocol} "
            f"cpus={args.num_cpus} refs={args.refs}",
            f"  runtime cycles:    {result.runtime_cycles}",
            f"  coherence cycles:  {result.coherence_cycles}",
            f"  background cycles: {result.stats.background_cycles}",
            f"  instructions:      {result.stats.total_instructions}",
            f"  energy:            {result.energy_total:.1f}",
            f"  intervals:         {len(result.intervals)}",
            f"  fingerprint:       sha256:{digest}",
            _session_footer(session),
        ]
        return "\n".join(lines)

    return experiment_output(args.json, payload, table)


def _add_trace_parser(subparsers) -> None:
    trace = subparsers.add_parser(
        "trace",
        help="inspect and export REPRO_TRACE output",
        description=(
            "Work with the JSONL trace files written when REPRO_TRACE "
            "is set: validate and convert them to a Chrome trace_event "
            "JSON file (loadable in chrome://tracing or Perfetto), or "
            "summarize span counts and total durations."
        ),
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    export = trace_sub.add_parser(
        "export",
        help="validate a JSONL trace and write a Chrome trace file",
        description=(
            "Validate every event of a JSONL trace and write the "
            "{'traceEvents': [...]} JSON object format that "
            "chrome://tracing and Perfetto load directly."
        ),
    )
    export.add_argument(
        "trace_file", metavar="TRACE", help="JSONL trace written via REPRO_TRACE"
    )
    export.add_argument(
        "chrome_file", metavar="OUT", help="Chrome trace JSON file to write"
    )
    summary = trace_sub.add_parser(
        "summary",
        help="per-span event counts and total durations",
        description=(
            "Validate a JSONL trace and print one row per span/event "
            "name with its occurrence count and summed duration."
        ),
    )
    summary.add_argument(
        "trace_file", metavar="TRACE", help="JSONL trace written via REPRO_TRACE"
    )


def _run_trace(args: argparse.Namespace) -> tuple[str, int]:
    from repro.obs.trace import (
        export_chrome,
        load_events,
        summarize_events,
        validate_events,
    )

    try:
        if args.trace_command == "export":
            count = export_chrome(args.trace_file, args.chrome_file)
            return (
                f"wrote {args.chrome_file}: {count} events "
                f"(Chrome trace_event format)",
                0,
            )
        # trace_command == "summary"
        events = load_events(args.trace_file)
    except OSError as error:
        raise ValueError(error) from error
    validate_events(events)
    summary = summarize_events(events)
    lines = [f"trace: {args.trace_file} ({summary['events']} events)"]
    width = max((len(name) for name in summary["names"]), default=0)
    for name, entry in summary["names"].items():
        lines.append(
            f"  {name:<{width}}  count={entry['count']:<6} "
            f"total={entry['total_us']}us"
        )
    return "\n".join(lines), 0


def _add_cache_parser(subparsers) -> None:
    cache = subparsers.add_parser(
        "cache",
        help="manage the on-disk result/checkpoint caches",
        description=(
            "Inspect and maintain the on-disk JSON caches: simulation "
            "results plus the machine checkpoints living in their "
            "checkpoints/ subdirectory."
        ),
    )
    cache.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-hatric)",
    )
    commands = cache.add_subparsers(dest="cache_command", required=True)
    commands.add_parser(
        "info", help="show cache location and entry counts"
    )
    prune = commands.add_parser(
        "prune",
        help="delete stale-version and undecodable entries",
        description=(
            "Delete result and checkpoint files whose schema stamp no "
            "longer matches the running code (or which cannot be "
            "decoded at all).  Lookups already treat such entries as "
            "misses; pruning removes them instead of ignoring them "
            "forever.  Entries younger than --min-age are left alone, "
            "so pruning a directory a live server is writing to never "
            "deletes in-flight work."
        ),
    )
    prune.add_argument(
        "--min-age",
        type=float,
        default=DEFAULT_PRUNE_MIN_AGE_SECONDS,
        metavar="SECONDS",
        help="only delete entries at least this old (default 3600; "
        "pass 0 to prune regardless of age)",
    )


def _run_cache(args: argparse.Namespace) -> tuple[str, int]:
    # A session owns both stores (results + checkpoints/ subdirectory),
    # so the CLI maintains exactly what sessions read and write.
    session = Session(cache_dir=args.cache_dir or True, checkpoints=True)
    results = session.disk_cache
    checkpoints = session.checkpoint_store
    if args.cache_command == "info":
        # The same canonical metric names the serve layer exports on
        # /stats and /metrics, so counters never drift between surfaces.
        from repro.obs.metrics import STORE_METRIC_HELP, store_snapshot

        snapshot = store_snapshot(results, checkpoints)
        lines = [f"cache directory: {results.directory}"]
        width = max(len(name) for name in STORE_METRIC_HELP)
        for name, help_text in STORE_METRIC_HELP.items():
            lines.append(
                f"  {name:<{width}}  {snapshot[name]:<10}  {help_text}"
            )
        return "\n".join(lines), 0
    # cache_command == "prune"
    pruned = session.prune(min_age_seconds=args.min_age)
    lines = [f"cache directory: {results.directory}"]
    for section in ("results", "checkpoints"):
        stats = pruned[section]
        line = f"{section}: removed {stats.removed} stale, kept {stats.kept}"
        if stats.failed:
            line += f", failed to delete {stats.failed}"
        lines.append(line)
    status = 1 if any(stats.failed for stats in pruned.values()) else 0
    return "\n".join(lines), status


def _add_consolidation_parser(subparsers, common: argparse.ArgumentParser) -> None:
    from repro.experiments.consolidation import CONSOLIDATION_PROTOCOLS

    consolidation = subparsers.add_parser(
        "consolidation",
        parents=[common],
        help="multi-VM consolidation study (protocol x guests x sharing)",
        description=(
            "Consolidate N copies of a tenant workload onto one machine "
            "(multi: composed workloads), sweep the translation coherence "
            "protocols over guest counts and vCPU sharing models, and "
            "validate the differential invariants.  The exit code "
            "reflects the invariant verdict."
        ),
    )
    consolidation.add_argument(
        "--guests",
        default="1,2",
        metavar="N1,N2,...",
        help="guest counts to sweep (default 1,2)",
    )
    consolidation.add_argument(
        "--sharing",
        default="pinned,shared",
        metavar="M1,M2,...",
        help="vCPU placement models: pinned (dedicated pCPU blocks) "
        "and/or shared (guests oversubscribe every pCPU)",
    )
    consolidation.add_argument(
        "--protocols",
        default=",".join(CONSOLIDATION_PROTOCOLS),
        metavar="P1,P2,...",
        help=f"protocols to compare (default: "
        f"{','.join(CONSOLIDATION_PROTOCOLS)})",
    )
    consolidation.add_argument(
        "--guest-workload",
        default=None,
        metavar="NAME",
        help="per-guest tenant workload (suite, mixNN or syn: name; "
        "default: the seeded migration-daemon scenario)",
    )
    consolidation.add_argument(
        "--num-cpus",
        type=int,
        default=8,
        metavar="N",
        help="physical CPUs of the consolidated machine (default 8)",
    )
    consolidation.add_argument(
        "--seed",
        type=int,
        default=7,
        metavar="N",
        help="seed of the default tenant scenario",
    )
    consolidation.add_argument(
        "--mem-share",
        type=float,
        default=None,
        metavar="FRACTION",
        help="give every guest this static fraction of die-stacked DRAM "
        "instead of the shared pool",
    )


def _run_consolidation(args: argparse.Namespace) -> tuple[str, int]:
    from repro.experiments.consolidation import (
        format_consolidation,
        run_consolidation,
    )

    from repro.experiments.output import experiment_output

    result = run_consolidation(
        guest_counts=tuple(
            int(g) for g in args.guests.split(",") if g.strip()
        ),
        sharing_models=tuple(
            s.strip() for s in args.sharing.split(",") if s.strip()
        ),
        protocols=tuple(
            p.strip() for p in args.protocols.split(",") if p.strip()
        ),
        guest_workload=args.guest_workload,
        num_cpus=args.num_cpus,
        seed=args.seed,
        mem_share=args.mem_share,
        scale=_scale_from_args(args),
        session=_session_from_args(args),
    )
    return experiment_output(
        args.json,
        lambda: {
            "cells": [dataclasses.asdict(cell) for cell in result.cells],
            "violations": result.violations,
            "ok": result.ok,
        },
        lambda: format_consolidation(result),
        ok=result.ok,
    )


def _add_bench_parser(subparsers) -> None:
    from repro.perf.bench import DEFAULT_BENCH_TAG

    bench = subparsers.add_parser(
        "bench",
        help="time the reference, fast, and soa simulation engines",
        description=(
            "Benchmark the fast and soa simulation engines against the "
            "reference engine across figure workloads and synthetic "
            "scenarios, verifying that all three produce bit-identical "
            "results.  See docs/PERFORMANCE.md for how to read the output."
        ),
    )
    bench.add_argument(
        "--workloads",
        default=None,
        metavar="A,B,...",
        help="comma-separated workload names (default: the bench suite)",
    )
    bench.add_argument(
        "--scenarios",
        default=None,
        metavar="S1,S2,...",
        help="comma-separated syn: scenario names (default: three families; "
        "pass an empty string to skip scenarios)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="interleaved timing repetitions per engine (default 3, best-of)",
    )
    bench.add_argument(
        "--scale",
        type=float,
        default=None,
        metavar="FACTOR",
        help="trace-length multiplier (default: 1.0, the figures' scale)",
    )
    bench.add_argument(
        "--num-cpus", type=int, default=16, metavar="N", help="vCPU count"
    )
    bench.add_argument(
        "--protocol",
        default="hatric",
        choices=("software", "unitd", "hatric", "ideal"),
        help="translation coherence protocol of the benchmarked machine",
    )
    bench.add_argument(
        "--tag",
        type=int,
        default=DEFAULT_BENCH_TAG,
        metavar="N",
        help=f"trajectory tag stamped into the payload (default "
        f"{DEFAULT_BENCH_TAG}; one tag per PR)",
    )
    bench.add_argument(
        "--no-incremental",
        action="store_true",
        help="skip the checkpointed incremental-sweep timing",
    )
    bench.add_argument(
        "--json", action="store_true", help="print JSON instead of a table"
    )
    bench.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the JSON payload to PATH (the BENCH_<tag>.json "
        "trajectory format)",
    )
    bench.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="earlier BENCH_<tag>.json to gate against: exit nonzero if "
        "any shared case's best-engine speedup falls below 0.7x its "
        "baseline value or the geomean falls below 0.9x",
    )


def _run_bench(args: argparse.Namespace) -> tuple[str, int]:
    from repro.perf.bench import (
        DEFAULT_SCENARIOS,
        DEFAULT_WORKLOADS,
        bench_payload,
        check_baseline,
        default_cases,
        format_bench,
        run_bench,
    )

    workloads: Sequence[str] = DEFAULT_WORKLOADS
    if args.workloads is not None:
        workloads = tuple(
            w.strip() for w in args.workloads.split(",") if w.strip()
        )
    scenarios: Sequence[str] = DEFAULT_SCENARIOS
    if args.scenarios is not None:
        scenarios = tuple(
            s.strip() for s in args.scenarios.split(",") if s.strip()
        )
    report = run_bench(
        cases=default_cases(
            workloads=workloads,
            scenarios=scenarios,
            num_cpus=args.num_cpus,
            protocol=args.protocol,
        ),
        repeats=args.repeats,
        scale=_scale_from_args(args),
        tag=args.tag,
        incremental=not args.no_incremental,
    )
    payload = bench_payload(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    text = json.dumps(payload, indent=2) if args.json else format_bench(report)
    status = 0 if report.all_identical else 1
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        regressions = check_baseline(payload, baseline)
        if regressions:
            details = "\n".join(
                f"regression vs {args.baseline}: {message}"
                for message in regressions
            )
            text = f"{text}\n{details}" if not args.json else text
            status = 1
    return text, status


def _add_scenario_parser(subparsers, common: argparse.ArgumentParser) -> None:
    scenario = subparsers.add_parser(
        "scenario", help="generate and run synthetic hypervisor scenarios"
    )
    commands = scenario.add_subparsers(dest="scenario_command", required=True)

    spec_opts = argparse.ArgumentParser(add_help=False)
    spec_opts.add_argument(
        "--family",
        default=None,
        metavar="A,B,...",
        help="scenario families (default: all); see 'scenario list'",
    )
    spec_opts.add_argument(
        "--scenario",
        action="append",
        default=[],
        metavar="syn:...",
        help="explicit canonical scenario name; repeatable",
    )
    spec_opts.add_argument(
        "--seed", type=int, default=0, metavar="N", help="scenario seed"
    )
    spec_opts.add_argument(
        "--address", default=None, choices=sorted(ADDRESS_MODELS),
        help="override the family's address-stream model",
    )
    spec_opts.add_argument(
        "--sharing", default=None, choices=SHARING_MODELS,
        help="vCPU placement model",
    )
    spec_opts.add_argument(
        "--vcpus", type=int, default=None, metavar="N",
        help="vCPU count (default: the machine's 16)",
    )
    spec_opts.add_argument(
        "--refs", type=int, default=None, metavar="N",
        help="total references across vCPUs",
    )
    spec_opts.add_argument(
        "--footprint", type=int, default=None, metavar="PAGES",
        help="scenario footprint in pages",
    )

    commands.add_parser(
        "list", help="list scenario families and component models"
    )

    generate = commands.add_parser(
        "generate", parents=[spec_opts],
        help="generate a trace and print its summary (no simulation)",
    )
    generate.add_argument(
        "--json", action="store_true", help="print JSON instead of a table"
    )
    generate.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the printed output to PATH",
    )

    run = commands.add_parser(
        "run", parents=[common, spec_opts],
        help="sweep protocol x scenario and validate invariants",
    )
    run.add_argument(
        "--protocols",
        default=",".join(SCENARIO_PROTOCOLS),
        metavar="P1,P2,...",
        help=f"protocols to compare (default: {','.join(SCENARIO_PROTOCOLS)})",
    )
    run.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache (on by default here)",
    )

    diff = commands.add_parser(
        "diff", parents=[common, spec_opts],
        help="differential invariant check over a seed matrix",
    )
    diff.add_argument(
        "--protocols",
        default=",".join(SCENARIO_PROTOCOLS),
        metavar="P1,P2,...",
        help=f"protocols to compare (default: {','.join(SCENARIO_PROTOCOLS)})",
    )
    diff.add_argument(
        "--seeds", default="0,1,2,3", metavar="S1,S2,...",
        help="seed matrix: one scenario per (family, seed) pair",
    )
    diff.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache (on by default here)",
    )


def _emit(text: str, output: Optional[str]) -> None:
    print(text)
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def _session_from_args(args: argparse.Namespace) -> Session:
    return Session(cache_dir=args.cache_dir, max_workers=args.jobs)


def _scale_from_args(args: argparse.Namespace) -> Optional[ExperimentScale]:
    if args.scale is None:
        return None
    return ExperimentScale(trace_scale=args.scale)


def _run_list() -> str:
    lines = ["figures:"]
    width = max(len(name) for name in FIGURES)
    for name, spec in FIGURES.items():
        lines.append(f"  {name:<{width}}  {spec.description}")
    lines.append("")
    lines.append("workloads:")
    lines.append("  " + ", ".join(sorted(WORKLOADS)))
    lines.append("  mixNN / mixNNxM (multiprogrammed SPEC mixes)")
    lines.append(
        "  syn:FAMILY/... (synthetic scenarios; see 'python -m repro "
        "scenario list')"
    )
    lines.append(
        "  multi:WL[@VCPUS[:MEMSHARE]]+...[+share=shared] (consolidated "
        "multi-VM compositions; see 'python -m repro consolidation')"
    )
    lines.append(
        "  prefix:REFS:WL (prefix-stable trace capped at REFS total "
        "references; what checkpointed refs sweeps reuse across)"
    )
    return "\n".join(lines)


def _run_figure(name: str, args: argparse.Namespace) -> str:
    spec = FIGURES[name]
    kwargs: dict[str, Any] = {"session": _session_from_args(args)}
    if "scale" in spec.params:
        kwargs["scale"] = _scale_from_args(args)
    elif args.scale is not None:
        raise ValueError(
            f"{name} does not take --scale (it runs no workload trace)"
        )
    if "workloads" in spec.params and args.workloads:
        kwargs["workloads"] = tuple(
            w.strip() for w in args.workloads.split(",") if w.strip()
        )
    if "num_cpus" in spec.params and args.num_cpus is not None:
        kwargs["num_cpus"] = args.num_cpus
    if "mixes" in spec.params and args.mixes is not None:
        kwargs["num_mixes"] = args.mixes
    if "apps_per_mix" in spec.params and args.apps_per_mix is not None:
        kwargs["apps_per_mix"] = args.apps_per_mix
    result = spec.run(**kwargs)
    if args.json:
        return json.dumps(
            {"figure": name, "result": dataclasses.asdict(result)}, indent=2
        )
    return spec.fmt(result)


def _format_sweep_table(grid: SweepResult) -> str:
    axis_names = list(grid.axes)
    normalized = any(cell.baseline is not None for cell in grid.cells)
    columns = axis_names + ["runtime_cycles"] + (
        ["normalized_runtime", "normalized_energy"] if normalized else []
    )
    rows = []
    for cell in grid.cells:
        row = [str(cell.coords[name]) for name in axis_names]
        row.append(f"{cell.result.runtime_cycles}")
        if normalized:
            row.append(f"{cell.normalized_runtime:.4f}")
            row.append(f"{cell.normalized_energy:.4f}")
        rows.append(row)
    widths = [
        max(len(column), max((len(r[i]) for r in rows), default=0))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _run_sweep(args: argparse.Namespace) -> str:
    axes: dict[str, tuple] = {}
    for raw in args.axis:
        name, sep, values = raw.partition("=")
        if not sep or not name or not values:
            raise SystemExit(f"error: --axis expects NAME=V1,V2,..., got {raw!r}")
        axes[name] = tuple(
            _parse_axis_value(v.strip()) for v in values.split(",") if v.strip()
        )
    sweep = Sweep(
        axes=axes,
        base=baseline_config(num_cpus=args.num_cpus, hypervisor=args.hypervisor),
    )
    overrides = _parse_key_values(args.normalize, "--normalize")
    if overrides:
        sweep = sweep.normalize_to(**overrides)
    grid = sweep.run(session=_session_from_args(args), scale=_scale_from_args(args))
    if args.json:
        return json.dumps(grid.to_dict(), indent=2)
    return _format_sweep_table(grid)


def _scenario_overrides(args: argparse.Namespace) -> dict[str, Any]:
    overrides: dict[str, Any] = {}
    if args.address:
        overrides["address_model"] = args.address
    if args.sharing:
        overrides["sharing"] = args.sharing
    if args.vcpus is not None:
        overrides["num_vcpus"] = args.vcpus
    if args.refs is not None:
        overrides["refs_total"] = args.refs
    if args.footprint is not None:
        overrides["footprint_pages"] = args.footprint
    return overrides


def _scenario_families(args: argparse.Namespace) -> tuple[str, ...]:
    if args.family:
        return tuple(f.strip() for f in args.family.split(",") if f.strip())
    if args.scenario:
        return ()
    return SCENARIO_FAMILIES


def _scenario_session(args: argparse.Namespace) -> Session:
    # Scenario runs default to the persistent cache so re-running the
    # same command is answered from disk instead of re-simulating.
    # --no-cache always wins, including over an explicit --cache-dir.
    cache_dir: Any
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = args.cache_dir or True
    return Session(cache_dir=cache_dir, max_workers=args.jobs)


def _session_footer(session: Session) -> str:
    stats = session.stats
    return (
        f"session: {stats.executed} simulated, {stats.disk_hits} from disk "
        f"cache, {stats.memo_hits + stats.deduplicated} deduplicated"
    )


def _run_scenario(args: argparse.Namespace) -> tuple[str, int]:
    command = args.scenario_command
    if command == "list":
        from repro.workloads.synthetic import FAMILY_PRESETS

        lines = ["scenario families (remap-pattern models):"]
        lines += [f"  {name}" for name in FAMILY_PRESETS]
        lines.append("address models:   " + ", ".join(sorted(ADDRESS_MODELS)))
        lines.append("sharing models:   " + ", ".join(SHARING_MODELS))
        lines.append("protocols:        " + ", ".join(SCENARIO_PROTOCOLS))
        lines.append(
            "names: syn:FAMILY/key=value/... "
            "(e.g. syn:migration-daemon/addr=zipf/seed=7)"
        )
        return "\n".join(lines), 0

    overrides = _scenario_overrides(args)
    if command == "generate":
        names = [
            scenario_spec(family, seed=args.seed, **overrides).name
            for family in _scenario_families(args)
        ] + list(args.scenario)
        summaries = []
        for name in names:
            workload = make_workload(name)
            trace = workload.generate(num_vcpus=args.vcpus or 16)
            summaries.append(summarize_trace(trace))
        if args.json:
            return json.dumps(summaries, indent=2), 0
        lines = []
        for summary in summaries:
            lines.append(summary["name"])
            for key, value in summary.items():
                if key != "name":
                    lines.append(f"  {key}: {value}")
        return "\n".join(lines), 0

    protocols = tuple(
        p.strip() for p in args.protocols.split(",") if p.strip()
    )
    session = _scenario_session(args)
    scale = _scale_from_args(args)

    if command == "run":
        result = run_scenarios(
            families=_scenario_families(args),
            protocols=protocols,
            seed=args.seed,
            scenarios=args.scenario,
            scale=scale,
            session=session,
            **overrides,
        )
        if args.json:
            payload = {
                "cells": [dataclasses.asdict(cell) for cell in result.cells],
                "violations": result.violations,
                "ok": result.ok,
                "session": dataclasses.asdict(session.stats),
            }
            return json.dumps(payload, indent=2), 0 if result.ok else 1
        text = format_scenarios(result) + "\n" + _session_footer(session)
        return text, 0 if result.ok else 1

    # command == "diff"
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    specs = [
        scenario_spec(family, seed=seed, **overrides)
        for family in _scenario_families(args)
        for seed in seeds
    ]
    report = run_differential(
        specs + list(args.scenario),
        protocols=protocols,
        scale=scale,
        session=session,
    )
    if args.json:
        payload = {
            "protocols": list(report.protocols),
            "violations": report.violations,
            "ok": report.ok,
        }
        return json.dumps(payload, indent=2), 0 if report.ok else 1
    text = format_differential(report) + "\n" + _session_footer(session)
    return text, 0 if report.ok else 1


def _run_serve(args: argparse.Namespace) -> tuple[str, int]:
    # imported lazily: the serve layer (and asyncio) only loads when
    # the service actually starts
    import asyncio

    from repro.serve import ReproServer, ServiceSettings, SimulationService
    from repro.serve.service import DEFAULT_WORKERS

    workers = DEFAULT_WORKERS if args.workers is None else args.workers
    settings = ServiceSettings(
        cache_dir=args.cache_dir or True, workers=workers
    )
    service = SimulationService(settings)
    server = ReproServer(service, host=args.host, port=args.port)

    async def run() -> None:
        host, port = await server.start()
        print(
            f"repro serve: listening on http://{host}:{port} "
            f"(store {service.session.disk_cache.directory}, "
            f"workers {workers})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return "repro serve: stopped", 0


def _run_loadtest(args: argparse.Namespace) -> tuple[str, int]:
    from repro.experiments.output import experiment_output
    from repro.serve.loadtest import (
        DEFAULT_CONNECTION_LIMIT,
        LoadTestSettings,
        format_load_report,
        run_loadtest,
    )

    settings = LoadTestSettings(
        clients=args.clients,
        requests_per_client=args.requests,
        duration=args.duration,
        scenarios=args.scenarios,
        zipf_s=args.zipf,
        seed=args.seed,
        num_cpus=args.num_cpus,
        refs_total=args.refs,
        workers=args.workers,
        include_multi=not args.no_multi,
        connection_limit=(
            DEFAULT_CONNECTION_LIMIT
            if args.connection_limit is None
            else args.connection_limit
        ),
        expect=args.expect,
        verify_identity=not args.no_verify,
    )
    host = port = None
    if args.port is not None:
        host, port = args.host, args.port
    report = run_loadtest(
        settings, host=host, port=port, cache_dir=args.cache_dir
    )
    return experiment_output(
        args.json,
        report.to_dict,
        lambda: format_load_report(report),
        ok=report.ok,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            text = _run_list()
            _emit(text, None)
            return 0
        if args.command == "scenario":
            text, code = _run_scenario(args)
            _emit(text, getattr(args, "output", None))
            return code
        if args.command == "consolidation":
            text, code = _run_consolidation(args)
            _emit(text, args.output)
            return code
        if args.command == "hunt":
            text, code = _run_hunt(args)
            _emit(text, args.output)
            return code
        if args.command == "bench":
            text, code = _run_bench(args)
            print(text)
            return code
        if args.command == "cache":
            text, code = _run_cache(args)
            _emit(text, None)
            return code
        if args.command == "serve":
            text, code = _run_serve(args)
            _emit(text, None)
            return code
        if args.command == "loadtest":
            text, code = _run_loadtest(args)
            _emit(text, args.output)
            return code
        if args.command == "timeline":
            text, code = _run_timeline(args)
            _emit(text, args.output)
            return code
        if args.command == "profile":
            text, code = _run_profile(args)
            _emit(text, args.output)
            return code
        if args.command == "run":
            text, code = _run_run(args)
            _emit(text, args.output)
            return code
        if args.command == "trace":
            text, code = _run_trace(args)
            _emit(text, None)
            return code
        if args.command == "fleet":
            text, code = _run_fleet(args)
            _emit(text, args.output)
            return code
        if args.command == "sweep":
            text = _run_sweep(args)
        else:
            text = _run_figure(args.command, args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    _emit(text, args.output)
    return 0
