"""Command-line front-end: ``python -m repro``.

Runs any figure of the paper or an arbitrary declarative sweep through
the :mod:`repro.api` engine, prints the table the figure encodes, and
optionally exports JSON.  Examples::

    python -m repro list
    python -m repro figure2 --scale 0.05
    python -m repro figure7 --workloads canneal,facesim --json
    python -m repro figure10 --mixes 4 --apps-per-mix 8 --jobs 4
    python -m repro sweep --axis protocol=software,hatric,ideal \\
        --axis workload=canneal,facesim \\
        --normalize protocol=ideal --normalize placement=slow-only
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Any, Callable, Optional, Sequence

from repro import __version__
from repro.api import ExperimentScale, Session, Sweep, SweepResult
from repro.experiments import (
    format_anatomy,
    format_figure2,
    format_figure7,
    format_figure8,
    format_figure9,
    format_figure10,
    format_figure11_left,
    format_figure11_right,
    format_figure12,
    format_figure13,
    format_xen_study,
    run_anatomy,
    run_figure2,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11_left,
    run_figure11_right,
    run_figure12,
    run_figure13,
    run_xen_study,
)
from repro.experiments.runner import baseline_config
from repro.workloads import WORKLOADS


@dataclasses.dataclass(frozen=True)
class FigureSpec:
    """How to run and render one figure from the command line."""

    run: Callable[..., Any]
    fmt: Callable[[Any], str]
    description: str
    #: which generic CLI options this figure's run function accepts.
    params: tuple[str, ...] = ("workloads", "num_cpus", "scale", "session")


FIGURES: dict[str, FigureSpec] = {
    "figure2": FigureSpec(
        run_figure2, format_figure2, "cost of software translation coherence"
    ),
    "figure7": FigureSpec(run_figure7, format_figure7, "runtime vs vCPU count"),
    "figure8": FigureSpec(run_figure8, format_figure8, "runtime vs paging policy"),
    "figure9": FigureSpec(
        run_figure9, format_figure9, "translation structure size sensitivity"
    ),
    "figure10": FigureSpec(
        run_figure10,
        format_figure10,
        "multiprogrammed SPEC mixes",
        params=("mixes", "apps_per_mix", "scale", "session"),
    ),
    "figure11-left": FigureSpec(
        run_figure11_left,
        format_figure11_left,
        "performance-energy scatter (HATRIC vs software)",
        params=("num_cpus", "scale", "session"),
    ),
    "figure11-right": FigureSpec(
        run_figure11_right,
        format_figure11_right,
        "co-tag width sweep",
        params=("workloads", "num_cpus", "scale", "session"),
    ),
    "figure12": FigureSpec(
        run_figure12, format_figure12, "coherence directory ablation"
    ),
    "figure13": FigureSpec(run_figure13, format_figure13, "HATRIC vs UNITD++"),
    "anatomy": FigureSpec(
        run_anatomy,
        format_anatomy,
        "single page remap cost breakdown",
        params=("num_cpus", "session"),
    ),
    "xen": FigureSpec(
        run_xen_study, format_xen_study, "Xen case study"
    ),
}


def _parse_axis_value(raw: str) -> Any:
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def _parse_key_values(pairs: Sequence[str], option: str) -> dict[str, Any]:
    parsed: dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key or not value:
            raise SystemExit(f"error: {option} expects KEY=VALUE, got {pair!r}")
        parsed[key] = _parse_axis_value(value)
    return parsed


def _build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--scale",
        type=float,
        default=None,
        metavar="FACTOR",
        help="trace-length multiplier (default: REPRO_EXPERIMENT_SCALE or 1.0)",
    )
    common.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan runs out across N worker processes (results are identical)",
    )
    common.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist results as JSON under DIR and reuse them across runs",
    )
    common.add_argument(
        "--json", action="store_true", help="print JSON instead of a table"
    )
    common.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the printed output to PATH",
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate figures of the HATRIC paper or run custom sweeps.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list figures and workloads")

    for name, spec in FIGURES.items():
        sub = subparsers.add_parser(name, parents=[common], help=spec.description)
        if "workloads" in spec.params:
            sub.add_argument(
                "--workloads",
                default=None,
                metavar="A,B,...",
                help="comma-separated workload names (default: the paper's suite)",
            )
        if "num_cpus" in spec.params:
            sub.add_argument(
                "--num-cpus", type=int, default=None, metavar="N", help="vCPU count"
            )
        if "mixes" in spec.params:
            sub.add_argument(
                "--mixes", type=int, default=None, metavar="N", help="number of mixes"
            )
        if "apps_per_mix" in spec.params:
            sub.add_argument(
                "--apps-per-mix",
                type=int,
                default=None,
                metavar="N",
                help="applications (vCPUs) per mix",
            )

    sweep = subparsers.add_parser(
        "sweep", parents=[common], help="run an arbitrary declarative sweep"
    )
    sweep.add_argument(
        "--axis",
        action="append",
        required=True,
        metavar="NAME=V1,V2,...",
        help="one sweep axis; NAME is 'workload' or a SystemConfig field "
        "(protocol, placement, hypervisor, num_cpus, ...); repeatable",
    )
    sweep.add_argument(
        "--normalize",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="normalize each point to the sibling with NAME overridden; repeatable",
    )
    sweep.add_argument(
        "--num-cpus",
        type=int,
        default=16,
        metavar="N",
        help="vCPU count of the base system (default 16)",
    )
    sweep.add_argument(
        "--hypervisor",
        default="kvm",
        choices=("kvm", "xen"),
        help="hypervisor of the base system",
    )
    return parser


def _emit(text: str, output: Optional[str]) -> None:
    print(text)
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def _session_from_args(args: argparse.Namespace) -> Session:
    return Session(cache_dir=args.cache_dir, max_workers=args.jobs)


def _scale_from_args(args: argparse.Namespace) -> Optional[ExperimentScale]:
    if args.scale is None:
        return None
    return ExperimentScale(trace_scale=args.scale)


def _run_list() -> str:
    lines = ["figures:"]
    width = max(len(name) for name in FIGURES)
    for name, spec in FIGURES.items():
        lines.append(f"  {name:<{width}}  {spec.description}")
    lines.append("")
    lines.append("workloads:")
    lines.append("  " + ", ".join(sorted(WORKLOADS)))
    lines.append("  mixNN / mixNNxM (multiprogrammed SPEC mixes)")
    return "\n".join(lines)


def _run_figure(name: str, args: argparse.Namespace) -> str:
    spec = FIGURES[name]
    kwargs: dict[str, Any] = {"session": _session_from_args(args)}
    if "scale" in spec.params:
        kwargs["scale"] = _scale_from_args(args)
    elif args.scale is not None:
        raise ValueError(
            f"{name} does not take --scale (it runs no workload trace)"
        )
    if "workloads" in spec.params and args.workloads:
        kwargs["workloads"] = tuple(
            w.strip() for w in args.workloads.split(",") if w.strip()
        )
    if "num_cpus" in spec.params and args.num_cpus is not None:
        kwargs["num_cpus"] = args.num_cpus
    if "mixes" in spec.params and args.mixes is not None:
        kwargs["num_mixes"] = args.mixes
    if "apps_per_mix" in spec.params and args.apps_per_mix is not None:
        kwargs["apps_per_mix"] = args.apps_per_mix
    result = spec.run(**kwargs)
    if args.json:
        return json.dumps(
            {"figure": name, "result": dataclasses.asdict(result)}, indent=2
        )
    return spec.fmt(result)


def _format_sweep_table(grid: SweepResult) -> str:
    axis_names = list(grid.axes)
    normalized = any(cell.baseline is not None for cell in grid.cells)
    columns = axis_names + ["runtime_cycles"] + (
        ["normalized_runtime", "normalized_energy"] if normalized else []
    )
    rows = []
    for cell in grid.cells:
        row = [str(cell.coords[name]) for name in axis_names]
        row.append(f"{cell.result.runtime_cycles}")
        if normalized:
            row.append(f"{cell.normalized_runtime:.4f}")
            row.append(f"{cell.normalized_energy:.4f}")
        rows.append(row)
    widths = [
        max(len(column), max((len(r[i]) for r in rows), default=0))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _run_sweep(args: argparse.Namespace) -> str:
    axes: dict[str, tuple] = {}
    for raw in args.axis:
        name, sep, values = raw.partition("=")
        if not sep or not name or not values:
            raise SystemExit(f"error: --axis expects NAME=V1,V2,..., got {raw!r}")
        axes[name] = tuple(
            _parse_axis_value(v.strip()) for v in values.split(",") if v.strip()
        )
    sweep = Sweep(
        axes=axes,
        base=baseline_config(num_cpus=args.num_cpus, hypervisor=args.hypervisor),
    )
    overrides = _parse_key_values(args.normalize, "--normalize")
    if overrides:
        sweep = sweep.normalize_to(**overrides)
    grid = sweep.run(session=_session_from_args(args), scale=_scale_from_args(args))
    if args.json:
        return json.dumps(grid.to_dict(), indent=2)
    return _format_sweep_table(grid)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            text = _run_list()
            _emit(text, None)
            return 0
        if args.command == "sweep":
            text = _run_sweep(args)
        else:
            text = _run_figure(args.command, args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    _emit(text, args.output)
    return 0
