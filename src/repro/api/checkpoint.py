"""On-disk machine-checkpoint store living beside the result cache.

Checkpoints are :mod:`repro.sim.snapshot` payloads persisted as one
JSON file per (run family, executed-reference count).  A *family* is
everything that determines a run's machine trajectory except how far it
executes: the system configuration, the workload name, the warmup
boundary and the telemetry cadence.  Two requests of the same family
that differ only in ``refs_total`` share a trajectory prefix, so the
longer run can restore the shorter run's checkpoint and simulate only
the tail (:mod:`repro.api.session`).

Every file is double-stamped -- with the snapshot payload's own
:data:`~repro.sim.snapshot.SNAPSHOT_SCHEMA_VERSION` and with the result
cache's :data:`~repro.api.request.CACHE_SCHEMA_VERSION` (any simulator
behaviour change invalidates mid-run machine state just as it
invalidates results).  :meth:`CheckpointStore.load` refuses entries
stamped with any other combination, and :meth:`CheckpointStore.prune`
deletes them instead of ignoring them forever.
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from pathlib import Path
from typing import Any, Optional, Union

from repro.api.cache import (
    TMP_GRACE_SECONDS,
    PruneStats,
    file_age_at_least,
    prune_orphan_tmp_files,
    write_text_atomic,
)
from repro.api.request import CACHE_SCHEMA_VERSION, RunRequest
from repro.obs.log import get_logger
from repro.sim.config import config_to_dict
from repro.sim.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    SnapshotError,
    validate_snapshot,
)

#: Subdirectory of the result cache that holds checkpoint files.
CHECKPOINT_SUBDIR = "checkpoints"

#: Checkpoints retained per family by :meth:`CheckpointStore.prune`
#: (the largest-refs ones).  Complete machine snapshots are large, and
#: the session's candidate scan is capped anyway, so keeping an
#: unbounded pile per family is pure disk cost.
PRUNE_KEEP_PER_FAMILY = 8

_FILE_PATTERN = re.compile(r"^(?P<family>[0-9a-f]{64})-(?P<refs>\d{12})\.json$")

logger = get_logger(__name__)


def checkpoint_family_key(request: RunRequest) -> str:
    """Stable hash naming the run family a request belongs to.

    Includes everything that shapes the machine trajectory and the
    telemetry stream except ``refs_total`` (the one axis checkpoints
    exist to make incremental) -- plus both schema versions, so a
    version bump moves every family and stale state can never be
    indexed, let alone restored.
    """
    payload: dict[str, Any] = {
        "schema": CACHE_SCHEMA_VERSION,
        "snapshot_schema": SNAPSHOT_SCHEMA_VERSION,
        "config": config_to_dict(request.config),
        "workload": request.workload,
        # warmup_refs overrides the fraction entirely, so the fraction
        # must not split otherwise-identical trajectories into
        # different families when an absolute warmup is set.
        "warmup_fraction": (
            None if request.warmup_refs is not None
            else request.warmup_fraction
        ),
        "warmup_refs": request.warmup_refs,
        "interval_refs": request.interval_refs,
    }
    if request.engine:
        payload["engine"] = request.engine
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


class CheckpointStore:
    """One-file-per-checkpoint JSON store keyed by (family, refs)."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory).expanduser()
        #: per-instance miss accounting, mirroring
        #: :class:`repro.api.cache.ResultCache`.
        self.stale_schema_misses = 0
        self.decode_error_misses = 0

    def path_for(self, family: str, executed_refs: int) -> Path:
        """Checkpoint file path for one (family, executed refs) pair."""
        return self.directory / f"{family}-{executed_refs:012d}.json"

    # ------------------------------------------------------------------
    # save / load
    # ------------------------------------------------------------------
    def save(self, family: str, snapshot: dict[str, Any]) -> Path:
        """Persist a snapshot (atomically) under its family; return path."""
        validate_snapshot(snapshot)
        path = self.path_for(family, int(snapshot["executed_refs"]))
        payload = json.dumps(
            {"cache_schema": CACHE_SCHEMA_VERSION, **snapshot},
            separators=(",", ":"),
        )
        write_text_atomic(path, payload)
        return path

    def load(self, path: Union[str, Path]) -> Optional[dict[str, Any]]:
        """Load and validate one checkpoint file.

        Returns None for unreadable, corrupt or schema-mismatched
        entries (callers treat those as cache misses; :meth:`prune`
        deletes them).  Schema mismatches -- possibly well-formed
        entries from a different code version -- are counted and logged
        separately from undecodable files.
        """
        try:
            with Path(path).open("r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.decode_error_misses += 1
            return None
        if not isinstance(data, dict):
            self.decode_error_misses += 1
            return None
        if data.get("cache_schema") != CACHE_SCHEMA_VERSION:
            self.stale_schema_misses += 1
            logger.warning(
                "checkpoint miss (stale schema %r, expected %r) for %s",
                data.get("cache_schema"), CACHE_SCHEMA_VERSION, path,
            )
            return None
        try:
            validate_snapshot(data)
        except SnapshotError:
            self.decode_error_misses += 1
            return None
        return data

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def candidates(self, family: str) -> list[tuple[int, Path]]:
        """``(executed_refs, path)`` pairs of a family, longest first."""
        if not self.directory.is_dir():
            return []
        found: list[tuple[int, Path]] = []
        for path in self.directory.glob(f"{family}-*.json"):
            match = _FILE_PATTERN.match(path.name)
            if match is not None and match.group("family") == family:
                found.append((int(match.group("refs")), path))
        found.sort(key=lambda pair: pair[0], reverse=True)
        return found

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of checkpoint files currently on disk."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every checkpoint; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def prune(
        self,
        keep_per_family: int = PRUNE_KEEP_PER_FAMILY,
        min_age_seconds: float = 0.0,
        tmp_grace_seconds: float = TMP_GRACE_SECONDS,
    ) -> PruneStats:
        """Delete stale, undecodable and surplus checkpoints.

        Returns :class:`~repro.api.cache.PruneStats`.  Mirrors
        :meth:`repro.api.cache.ResultCache.prune` for entries that
        :meth:`load` would reject as misses, and additionally bounds
        disk use by keeping only the ``keep_per_family`` largest-refs
        checkpoints of each family (complete machine snapshots are
        large, and every checkpointed run leaves at least one behind).
        An entry whose ``unlink`` fails counts as ``failed``, never as
        pruned; healthy surplus entries that fail to delete stay
        ``kept`` as well (they are still usable checkpoints).

        ``min_age_seconds`` and ``tmp_grace_seconds`` carry the same
        live-server guarantees as the result cache's prune: nothing
        younger than ``min_age_seconds`` is deleted (stale *or* surplus
        -- a checkpoint a live run just saved may be the one it is
        about to extend), and orphaned ``*.tmp`` files need to clear
        both cutoffs.
        """
        removed = kept = failed = 0
        if not self.directory.is_dir():
            return PruneStats(0, 0, 0)
        now = time.time()
        families: dict[str, list[int]] = {}
        for path in sorted(self.directory.glob("*.json")):
            if not path.exists():
                continue  # lost a race with another pruner/clear
            if self.load(path) is None:
                old_enough = file_age_at_least(path, now, min_age_seconds)
                if old_enough is None:
                    continue
                if not old_enough:
                    kept += 1
                    continue
                try:
                    path.unlink()
                    removed += 1
                except OSError as error:
                    logger.warning(
                        "prune failed to delete %s: %s", path, error
                    )
                    failed += 1
                continue
            kept += 1
            match = _FILE_PATTERN.match(path.name)
            if match is not None:
                families.setdefault(match.group("family"), []).append(
                    int(match.group("refs"))
                )
        for family, refs in families.items():
            for surplus in sorted(refs, reverse=True)[keep_per_family:]:
                surplus_path = self.path_for(family, surplus)
                if not file_age_at_least(surplus_path, now, min_age_seconds):
                    continue  # too young (live run's own state), or gone
                try:
                    surplus_path.unlink()
                    removed += 1
                    kept -= 1
                except OSError as error:
                    logger.warning(
                        "prune failed to delete %s: %s", surplus_path, error
                    )
                    failed += 1
        tmp_removed, tmp_failed = prune_orphan_tmp_files(
            self.directory, min_age_seconds, tmp_grace_seconds
        )
        return PruneStats(removed + tmp_removed, kept, failed + tmp_failed)


__all__ = [
    "CHECKPOINT_SUBDIR",
    "CheckpointStore",
    "checkpoint_family_key",
]
