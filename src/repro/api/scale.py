"""Experiment scaling knobs (trace length and warmup).

Historically part of :mod:`repro.experiments.runner`; it lives in the
API layer now so the sweep engine can use it without importing the
experiments package, and :mod:`repro.experiments.runner` re-exports it
for backward compatibility.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Optional, Union

from repro.workloads.base import MultiprogrammedWorkload, Workload

#: Environment variable that globally scales experiment trace lengths
#: (e.g. ``REPRO_EXPERIMENT_SCALE=0.25`` for quick benchmark runs).
SCALE_ENV_VAR = "REPRO_EXPERIMENT_SCALE"


@dataclass(frozen=True)
class ExperimentScale:
    """Scaling knobs applied uniformly to an experiment.

    Attributes:
        trace_scale: multiplier on each workload's total references.
        warmup_fraction: fraction of every stream treated as warmup.
    """

    trace_scale: float = 1.0
    warmup_fraction: float = 0.2

    def __post_init__(self) -> None:
        if not math.isfinite(self.trace_scale) or self.trace_scale <= 0.0:
            raise ValueError(
                f"trace_scale must be a positive finite number, got "
                f"{self.trace_scale!r}"
            )
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")

    @classmethod
    def from_environment(cls) -> "ExperimentScale":
        """Build a scale from ``REPRO_EXPERIMENT_SCALE`` (default 1.0).

        Rejects values that would silently produce degenerate traces
        (zero, negative, NaN, infinity, or non-numeric strings).
        """
        raw = os.environ.get(SCALE_ENV_VAR)
        if not raw:
            return cls()
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"{SCALE_ENV_VAR}={raw!r} is not a number; expected a "
                f"positive trace-length multiplier such as 0.25"
            ) from None
        if not math.isfinite(value) or value <= 0.0:
            raise ValueError(
                f"{SCALE_ENV_VAR}={raw!r} would produce degenerate traces; "
                f"expected a positive finite trace-length multiplier"
            )
        return cls(trace_scale=value)

    def refs_for(
        self, workload: Union[Workload, MultiprogrammedWorkload]
    ) -> Optional[int]:
        """Total references to simulate for ``workload`` (None = spec default)."""
        if self.trace_scale == 1.0:
            return None
        if isinstance(workload, MultiprogrammedWorkload):
            total = sum(spec.refs_total for spec in workload.specs)
        else:
            total = workload.spec.refs_total
        return max(1000, int(total * self.trace_scale))
