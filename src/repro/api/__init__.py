"""Unified experiment API: declarative sweeps, sessions and caching.

The subsystem has four pieces:

* :class:`~repro.api.request.RunRequest` — a frozen, hashable value
  object naming one (config, workload, trace-length) unit of work, with
  a stable content-hash cache key;
* :class:`~repro.api.session.Session` — the engine that executes
  batches of requests with dedup, in-process memoization, an optional
  on-disk JSON cache, and optional process fan-out;
* :class:`~repro.api.sweep.Sweep` / :class:`~repro.api.sweep.SweepResult`
  — a declarative cross-product over experiment axes with baseline
  normalization, replacing the per-figure cell/result boilerplate;
* :class:`~repro.api.scale.ExperimentScale` — the trace-length /
  warmup scaling knob shared by every experiment.

Every figure harness under :mod:`repro.experiments` is a thin
declaration on top of this API, and ``python -m repro`` exposes it from
the command line.
"""

from repro.api.cache import ResultCache, decode_result, default_cache_dir, encode_result
from repro.api.checkpoint import CheckpointStore, checkpoint_family_key
from repro.api.request import RunRequest, config_from_dict, config_to_dict
from repro.api.scale import SCALE_ENV_VAR, ExperimentScale
from repro.api.session import (
    Session,
    SessionStats,
    default_session,
    execute_request,
    execute_request_checkpointed,
    reset_default_session,
)
from repro.api.sweep import Sweep, SweepCell, SweepResult

__all__ = [
    "CheckpointStore",
    "ExperimentScale",
    "ResultCache",
    "RunRequest",
    "SCALE_ENV_VAR",
    "Session",
    "SessionStats",
    "Sweep",
    "SweepCell",
    "SweepResult",
    "checkpoint_family_key",
    "config_from_dict",
    "config_to_dict",
    "decode_result",
    "default_cache_dir",
    "default_session",
    "encode_result",
    "execute_request",
    "execute_request_checkpointed",
    "reset_default_session",
]
