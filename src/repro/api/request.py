"""Declarative run requests with stable cache keys.

A :class:`RunRequest` is the unit of work the :class:`repro.api.session.
Session` engine executes, deduplicates and memoizes: a frozen, hashable
value object naming one :class:`~repro.sim.config.SystemConfig`, one
workload (by name, so requests stay picklable and serializable) and the
trace-length / warmup knobs.  Two requests constructed independently
from equal ingredients compare equal, hash equal and produce the same
``cache_key``, which is what makes cross-figure result sharing work.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.sim.config import (
    SystemConfig,
    VmTopology,
    config_from_dict,
    config_to_dict,
)
from repro.sim.engine import ENGINES

#: Experiment kinds a request can ask for: a trace-driven simulation or
#: the single-remap anatomy microbenchmark (which needs no workload).
EXPERIMENT_TRACE = "trace"
EXPERIMENT_REMAP = "remap"
EXPERIMENTS = (EXPERIMENT_TRACE, EXPERIMENT_REMAP)

#: Bumped whenever the simulator or the cached-result format changes in
#: a way that invalidates previously cached results.  It is part of
#: every cache key AND stamped into every on-disk cache entry, so
#: results written by an older release are ignored (treated as misses
#: and overwritten) rather than returned stale.
CACHE_SCHEMA_VERSION = 2

# ``config_to_dict`` / ``config_from_dict`` moved to
# :mod:`repro.sim.config` (the snapshot serializer needs them below the
# API layer); imported above and re-exported here for compatibility.


@dataclass(frozen=True)
class RunRequest:
    """One deduplicatable, cacheable unit of simulation work.

    Attributes:
        config: the machine to simulate.
        workload: workload name resolvable by
            :func:`repro.workloads.make_workload` (``""`` for the remap
            anatomy microbenchmark, which runs no trace).
        warmup_fraction: fraction of every stream treated as warmup.
        refs_total: total references to simulate (None = spec default).
        warmup_refs: absolute per-stream warmup length overriding
            ``warmup_fraction`` (None = use the fraction).  Checkpointed
            ``refs_total`` sweeps need a trace-length-independent warmup
            boundary; a fraction moves with the trace length.
        interval_refs: emit time-resolved telemetry
            (:class:`~repro.sim.stats.IntervalSample` deltas on
            ``result.intervals``) roughly every this many retired
            references (None = no telemetry, byte-identical legacy
            results).
        experiment: ``"trace"`` or ``"remap"``.
        engine: simulation engine, ``""`` (process default — usually the
            fast engine), ``"reference"``, ``"fast"`` or ``"soa"``.  All
            engines produce bit-identical results, so the engine only enters the
            cache key when explicitly non-default (letting benchmarks
            force a re-simulation on a specific engine without
            invalidating default-engine caches).
        topology: optional :class:`~repro.sim.config.VmTopology` for a
            consolidated multi-VM run.  Purely a construction
            convenience: the topology is normalized into its canonical
            ``multi:`` workload name (which must match ``workload`` when
            both are given), so topology-built requests dedupe and cache
            exactly like name-built ones and the cache key payload is
            unchanged.
    """

    config: SystemConfig
    workload: str = ""
    warmup_fraction: float = 0.2
    refs_total: Optional[int] = None
    warmup_refs: Optional[int] = None
    interval_refs: Optional[int] = None
    experiment: str = EXPERIMENT_TRACE
    engine: str = ""
    # compare=False: the canonical workload name (normalized in
    # __post_init__) already captures the topology, so name-built and
    # topology-built requests compare and hash equal.
    topology: Optional[VmTopology] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.experiment not in EXPERIMENTS:
            raise ValueError(
                f"experiment must be one of {EXPERIMENTS}, got {self.experiment!r}"
            )
        if self.topology is not None:
            name = self.topology.name
            if self.workload and self.workload != name:
                raise ValueError(
                    f"workload {self.workload!r} does not match the "
                    f"topology's canonical name {name!r}"
                )
            object.__setattr__(self, "workload", name)
        if self.experiment == EXPERIMENT_TRACE and not self.workload:
            raise ValueError("a trace request needs a workload name")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if self.refs_total is not None and self.refs_total <= 0:
            raise ValueError("refs_total must be positive when given")
        if self.warmup_refs is not None and self.warmup_refs < 0:
            raise ValueError("warmup_refs must be >= 0 when given")
        if self.warmup_refs is not None:
            # warmup_refs overrides the fraction entirely; normalize the
            # dead field to its default so dataclass equality agrees
            # with cache-key equality (and to_dict round-trips exactly)
            object.__setattr__(self, "warmup_fraction", 0.2)
        if self.interval_refs is not None and self.interval_refs <= 0:
            raise ValueError("interval_refs must be positive when given")
        if self.engine not in ("",) + ENGINES:
            raise ValueError(
                f"engine must be '' or one of {ENGINES}, got {self.engine!r}"
            )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Serialize to plain JSON-compatible data.

        The ``engine`` field is included only when explicitly set: the
        engines are result-equivalent, so default-engine requests keep
        the cache keys they had before engine selection existed.  The
        same convention covers ``warmup_refs`` and ``interval_refs`` --
        absent when unset, so pre-existing requests keep their exact
        historical cache keys (and cached results stay valid without a
        :data:`CACHE_SCHEMA_VERSION` bump).
        """
        data: dict[str, Any] = {
            "config": config_to_dict(self.config),
            "workload": self.workload,
            # warmup_refs overrides the fraction entirely, so the dead
            # fraction must not split behaviorally identical requests
            # into distinct cache keys (mirrors checkpoint_family_key)
            "warmup_fraction": (
                None if self.warmup_refs is not None else self.warmup_fraction
            ),
            "refs_total": self.refs_total,
            "experiment": self.experiment,
        }
        if self.warmup_refs is not None:
            data["warmup_refs"] = self.warmup_refs
        if self.interval_refs is not None:
            data["interval_refs"] = self.interval_refs
        if self.engine:
            data["engine"] = self.engine
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRequest":
        """Rebuild a request from :meth:`to_dict` output."""
        warmup_fraction = data.get("warmup_fraction")
        return cls(
            config=config_from_dict(data["config"]),
            workload=data.get("workload", ""),
            warmup_fraction=0.2 if warmup_fraction is None else warmup_fraction,
            refs_total=data.get("refs_total"),
            warmup_refs=data.get("warmup_refs"),
            interval_refs=data.get("interval_refs"),
            experiment=data.get("experiment", EXPERIMENT_TRACE),
            engine=data.get("engine", ""),
        )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def cache_key(self) -> str:
        """Stable content hash identifying this request across processes.

        Equal requests (even ones built independently from equal
        configs) share a key; any differing field changes it.
        """
        cached = self.__dict__.get("_cache_key")
        if cached is None:
            payload = {"schema": CACHE_SCHEMA_VERSION, **self.to_dict()}
            digest = hashlib.sha256(
                json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
            ).hexdigest()
            # frozen dataclass: stash the memo without going through
            # __setattr__, which would raise FrozenInstanceError.
            object.__setattr__(self, "_cache_key", digest)
            cached = digest
        return cached
