"""The session engine: dedup, memoization and parallel execution.

A :class:`Session` executes batches of :class:`~repro.api.request.
RunRequest` objects.  Identical requests (same cache key) are simulated
exactly once per session; results are memoized in-process and,
when a cache directory is configured, persisted as JSON on disk.
Independent requests can be fanned out across worker processes with
:class:`concurrent.futures.ProcessPoolExecutor`; every simulation is
fully seeded by its config, so parallel results are bit-identical to
serial ones.

The experiment harnesses all share one process-global default session
(:func:`default_session`), which is where the cross-figure baseline
sharing the paper's evaluation grid invites actually happens: the
``no-hbm`` baseline of Figure 2 is the same request as the 16-vCPU
baseline of Figures 7-9 and 13, and it runs once.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.api.cache import (
    CACHE_DIR_ENV_VAR,
    AnyResult,
    PruneStats,
    ResultCache,
)
from repro.api.checkpoint import (
    CHECKPOINT_SUBDIR,
    CheckpointStore,
    checkpoint_family_key,
)
from repro.api.request import EXPERIMENT_REMAP, RunRequest
from repro.env import env_int
from repro.obs.log import get_logger
from repro.obs.trace import active_tracer
from repro.sim.engine import (
    ENGINE_FAST,
    ENGINE_REFERENCE,
    ENGINE_SOA,
    FastPathMismatchError,
    diff_fingerprints,
    resolve_engine,
    result_fingerprint,
    validate_fastpath_requested,
)
from repro.sim.remap_anatomy import single_remap_cost
from repro.sim.simulator import (
    SimulationResult,
    Simulator,
    resolve_trace,
    warmup_starts,
)
from repro.sim.snapshot import SnapshotError, restore_run, trace_prefix_digest
from repro.workloads import make_workload

logger = get_logger(__name__)

#: Environment variable globally enabling process fan-out (worker count).
JOBS_ENV_VAR = "REPRO_JOBS"

#: Per-process counters describing checkpointed execution, mainly for
#: tests and diagnostics (worker processes count their own).
CHECKPOINT_COUNTERS = {"restored": 0, "saved": 0, "cold": 0}

#: How many stored checkpoints (longest first) a request examines
#: before giving up and running cold.  Each examination fully parses
#: the snapshot and digests the trace prefix, so the scan must stay
#: bounded even when a family accumulates many never-matching
#: checkpoints (e.g. sweeps over non-prefix-stable workloads).
CANDIDATE_SCAN_LIMIT = 4


def _worker_pool(max_workers: Optional[int]) -> ProcessPoolExecutor:
    """A worker pool with the start method pinned to ``spawn``.

    The platform default is ``fork`` on Linux and ``spawn`` on macOS;
    pinning makes the serial-vs-pool bit-identity tests prove the same
    property everywhere (workers rebuild state from pickled requests,
    never inherit it), and avoids the fork-in-threaded-process
    deprecation noise on Python 3.12+.
    """
    return ProcessPoolExecutor(
        max_workers=max_workers,
        mp_context=multiprocessing.get_context("spawn"),
    )


def execute_request(request: RunRequest, on_interval=None) -> AnyResult:
    """Execute one request from scratch (no caching).

    Module-level so :class:`concurrent.futures.ProcessPoolExecutor` can
    pickle it into worker processes.

    ``on_interval``, when given, receives each freshly-emitted
    :class:`~repro.sim.stats.IntervalSample` during execution (requests
    without ``interval_refs`` emit nothing); the serve layer uses it to
    stream live progress.  Observation only -- the returned result is
    identical with or without it.

    When ``REPRO_VALIDATE_FASTPATH=1`` is set, every fast-engine trace
    request is executed on *both* engines and the results are diffed;
    any difference raises :class:`~repro.sim.engine.
    FastPathMismatchError` instead of silently returning either result.
    """
    if request.experiment == EXPERIMENT_REMAP:
        return single_remap_cost(request.config)
    tracer = active_tracer()
    start = tracer.now() if tracer else 0.0
    workload = make_workload(request.workload)
    if (
        validate_fastpath_requested()
        and resolve_engine(request.engine or None) != ENGINE_REFERENCE
    ):
        result = _execute_validated(request, workload, on_interval)
        if tracer:
            tracer.complete(
                "session.execute", "session", start,
                key=request.cache_key, validated=True,
            )
        return result
    simulator = Simulator(request.config, engine=request.engine or None)
    if tracer:
        try:
            return simulator.run(
                workload,
                warmup_fraction=request.warmup_fraction,
                refs_total=request.refs_total,
                warmup_refs=request.warmup_refs,
                interval_refs=request.interval_refs,
                on_interval=on_interval,
            )
        finally:
            tracer.complete(
                "session.execute", "session", start,
                key=request.cache_key, engine=simulator.engine,
            )
    return simulator.run(
        workload,
        warmup_fraction=request.warmup_fraction,
        refs_total=request.refs_total,
        warmup_refs=request.warmup_refs,
        interval_refs=request.interval_refs,
        on_interval=on_interval,
    )


def execute_request_checkpointed(
    request: RunRequest,
    store_directory: str,
    checkpoint_refs: Optional[int] = None,
) -> AnyResult:
    """Execute one request through the machine-checkpoint store.

    Identical results to :func:`execute_request` (bit-for-bit; the fuzz
    suite enforces it), but the run may start from the longest stored
    checkpoint of its family whose executed trace prefix matches the
    request's trace, simulating only the tail -- and it leaves new
    round-aligned checkpoints behind for the next, longer request.

    Reuse is guarded by the snapshot's schema stamps, its warmup-start
    vector, and a digest of the exact executed reference prefix, so a
    checkpoint from a different machine, schema or reference stream
    degrades to a cold run rather than a wrong result.
    """
    if request.experiment == EXPERIMENT_REMAP:
        return single_remap_cost(request.config)
    workload = make_workload(request.workload)
    if (
        validate_fastpath_requested()
        and resolve_engine(request.engine or None) != ENGINE_REFERENCE
    ):
        # validation mode runs both engines; checkpoints would only
        # obscure which engine produced the state, so it stays cold.
        return _execute_validated(request, workload)
    if request.warmup_refs is None and request.warmup_fraction > 0.0:
        # A fraction-based warmup boundary moves with refs_total, so no
        # *other* request can ever match this family's warmup vector
        # (and an identical rerun is already served by the result
        # cache).  Saving multi-megabyte snapshots that can never be
        # restored would make checkpoints=True strictly slower than
        # off; run cold instead.  Sweeps that want reuse set
        # ``warmup_refs`` (or ``warmup_fraction=0``).
        CHECKPOINT_COUNTERS["cold"] += 1
        return execute_request(request)

    store = CheckpointStore(store_directory)
    family = checkpoint_family_key(request)
    trace = resolve_trace(
        workload, request.config.num_cpus, request.config.seed,
        request.refs_total,
    )
    starts = warmup_starts(
        trace, request.warmup_fraction, request.warmup_refs
    )
    lengths = [len(s) for s in trace.streams]

    def on_checkpoint(snapshot: dict) -> None:
        CHECKPOINT_COUNTERS["saved"] += 1
        store.save(family, snapshot)

    # A checkpoint's filename-level executed count bounds how far its
    # positions can reach, so length-infeasible candidates (from longer
    # sweeps of the family) are dropped *before* the scan limit -- a
    # shorter re-run must still find its own reusable checkpoint.
    main_capacity = sum(lengths) - sum(starts)
    feasible = [
        candidate
        for candidate in store.candidates(family)
        if candidate[0] <= main_capacity
    ]
    restored = None
    for executed, path in feasible[:CANDIDATE_SCAN_LIMIT]:
        data = store.load(path)
        if data is None:
            continue
        try:
            positions = data["trace"]["positions"]
            if data["warmup"]["starts"] != starts:
                continue
            if len(positions) != len(lengths) or any(
                position > length
                for position, length in zip(positions, lengths)
            ):
                continue
            if (
                trace_prefix_digest(trace, positions)
                != data["trace"]["prefix_digest"]
            ):
                continue
            restored = restore_run(data, engine=request.engine or None)
        except (SnapshotError, KeyError, TypeError, ValueError):
            # schema-valid but shape-corrupt payloads degrade to the
            # next candidate (ultimately a cold run), never to a crash
            continue
        break

    if restored is not None:
        CHECKPOINT_COUNTERS["restored"] += 1
        return restored.resume(
            trace,
            checkpoint_refs=checkpoint_refs,
            on_checkpoint=on_checkpoint,
            verify_prefix=False,  # the candidate scan just digested it
        )
    CHECKPOINT_COUNTERS["cold"] += 1
    simulator = Simulator(request.config, engine=request.engine or None)
    return simulator.run(
        trace,
        warmup_fraction=request.warmup_fraction,
        warmup_refs=request.warmup_refs,
        interval_refs=request.interval_refs,
        checkpoint_refs=checkpoint_refs,
        on_checkpoint=on_checkpoint,
    )


def _execute_chain(
    requests: Sequence[RunRequest],
    store_directory: str,
    checkpoint_refs: Optional[int] = None,
) -> list[AnyResult]:
    """Execute one checkpoint family's requests serially, in order.

    The worker-side unit of a parallel checkpointed batch: members of a
    family must run one after another (shortest first) or none of them
    can reuse the others' checkpoints.
    """
    return [
        execute_request_checkpointed(request, store_directory, checkpoint_refs)
        for request in requests
    ]


def _execute_validated(
    request: RunRequest, workload, on_interval=None
) -> SimulationResult:
    """Run a trace request on every engine it implies; require identity.

    A ``fast`` request is checked against the reference engine; a
    ``soa`` request is checked against *both* other engines, since the
    struct-of-arrays core layers on top of the fast path and either
    layer could drift independently.  ``on_interval`` streams from the
    first (reference) run only -- interval samples are engine-identical
    by contract, so subscribers must not see each sample twice.
    """
    resolved = resolve_engine(request.engine or None)
    engines = [ENGINE_REFERENCE, ENGINE_FAST]
    if resolved == ENGINE_SOA:
        engines.append(ENGINE_SOA)
    results = {}
    for engine in engines:
        simulator = Simulator(request.config, engine=engine)
        results[engine] = simulator.run(
            workload,
            warmup_fraction=request.warmup_fraction,
            refs_total=request.refs_total,
            warmup_refs=request.warmup_refs,
            interval_refs=request.interval_refs,
            on_interval=on_interval if engine == engines[0] else None,
        )
    reference = result_fingerprint(results[ENGINE_REFERENCE])
    for engine in engines[1:]:
        differences = diff_fingerprints(
            reference, result_fingerprint(results[engine])
        )
        if differences:
            details = "\n  ".join(differences[:20])
            raise FastPathMismatchError(
                f"{engine} engine diverged from the reference engine on "
                f"workload {request.workload!r}:\n  {details}"
            )
    return results[resolved]


@dataclass
class SessionStats:
    """Where every request of a session ended up."""

    #: requests handed to the session (including duplicates).
    requested: int = 0
    #: requests answered by another identical request in the same batch.
    deduplicated: int = 0
    #: requests answered from the in-process memo.
    memo_hits: int = 0
    #: requests answered from the on-disk cache.
    disk_hits: int = 0
    #: requests actually simulated.
    executed: int = 0

    @property
    def simulations_avoided(self) -> int:
        """Runs that would have happened without the session machinery."""
        return self.deduplicated + self.memo_hits + self.disk_hits


#: Per-item outcomes of :meth:`Session.plan_batch`.
PLAN_MEMO = "memo"
PLAN_DISK = "disk"
PLAN_DEDUP = "dedup"
PLAN_PENDING = "pending"

#: All plan sources, in accounting order (trace spans report one count per source).
PLAN_SOURCES = (PLAN_MEMO, PLAN_DISK, PLAN_DEDUP, PLAN_PENDING)


@dataclass
class BatchPlan:
    """What a batch of requests needs, before anything executes.

    Planning (dedup, memo and disk lookups) is separated from execution
    transport so alternative transports -- the in-process pool of
    :meth:`Session.run_batch`, the fleet engine of
    :meth:`Session.run_fleet`, or the async single-flight executor of
    :mod:`repro.serve` -- can share one caching policy.
    """

    #: cache key of every input item, aligned with the input order.
    keys: list[str] = field(default_factory=list)
    #: unique cold requests in first-seen order (key -> request).
    pending: dict[str, object] = field(default_factory=dict)
    #: per-item outcome, aligned with ``keys``: one of
    #: :data:`PLAN_MEMO`, :data:`PLAN_DISK`, :data:`PLAN_DEDUP`,
    #: :data:`PLAN_PENDING`.
    sources: list[str] = field(default_factory=list)


class Session:
    """Executes run requests with dedup, caching and optional parallelism.

    Args:
        cache_dir: directory for the on-disk JSON result cache.  None
            (the default) disables disk caching; pass ``True`` to use
            the default location (``~/.cache/repro-hatric`` or
            ``$REPRO_CACHE_DIR``).
        max_workers: worker processes for batch execution.  None or <= 1
            runs serially in-process.  Results are identical either way.
        executor: the function that turns a request into a result;
            overridable for testing/instrumentation.
        checkpoints: enable incremental execution through the
            machine-checkpoint store (requires ``cache_dir`` and the
            default ``executor``; the checkpoints live in the cache's
            ``checkpoints/`` subdirectory).  Requests whose family
            already has a matching checkpoint restore it and simulate
            only the tail; results stay bit-identical to cold
            execution.  With ``max_workers``, whole checkpoint
            families run serially inside one worker (shortest request
            first) while distinct families fan out in parallel, so
            within-family reuse survives process fan-out.
        checkpoint_refs: additionally capture a checkpoint roughly
            every this many retired references (None = only the final
            reusable round of each run is checkpointed).
    """

    def __init__(
        self,
        cache_dir: Union[None, bool, str, Path] = None,
        max_workers: Optional[int] = None,
        executor: Callable[[RunRequest], AnyResult] = execute_request,
        checkpoints: bool = False,
        checkpoint_refs: Optional[int] = None,
    ) -> None:
        if cache_dir is True:
            self.disk_cache: Optional[ResultCache] = ResultCache()
        elif cache_dir:
            self.disk_cache = ResultCache(cache_dir)
        else:
            self.disk_cache = None
        self.max_workers = max_workers
        self.executor = executor
        self.checkpoint_refs = checkpoint_refs
        self.checkpoint_store: Optional[CheckpointStore] = None
        if checkpoints:
            if self.disk_cache is None:
                raise ValueError(
                    "checkpoints=True needs a cache_dir; checkpoints "
                    "live beside the on-disk result cache"
                )
            if executor is not execute_request:
                raise ValueError(
                    "checkpoints=True is incompatible with a custom "
                    "executor: checkpointed execution replaces the "
                    "executor with execute_request_checkpointed"
                )
            self.checkpoint_store = CheckpointStore(
                self.disk_cache.directory / CHECKPOINT_SUBDIR
            )
        self.stats = SessionStats()
        self._memo: dict[str, AnyResult] = {}

    # ------------------------------------------------------------------
    # running requests
    # ------------------------------------------------------------------
    def run(self, request: RunRequest) -> AnyResult:
        """Execute (or recall) a single request."""
        return self.run_batch([request])[0]

    def plan_batch(self, requests: Sequence) -> BatchPlan:
        """Resolve what a batch needs without executing anything.

        Works on anything with a ``cache_key`` (trace
        :class:`~repro.api.request.RunRequest` and fleet
        :class:`~repro.fleet.spec.FleetRequest` alike).  Duplicate keys
        within the batch collapse to one pending entry; keys already
        memoized (or present in the disk cache, which the plan promotes
        into the memo) need no execution at all.  Stats are accounted
        here, at planning time -- execution transports only add
        ``executed`` via :meth:`store_result`.
        """
        tracer = active_tracer()
        start = tracer.now() if tracer else 0.0
        plan = BatchPlan()
        requests = list(requests)
        self.stats.requested += len(requests)
        for request in requests:
            key = request.cache_key
            plan.keys.append(key)
            if key in self._memo:
                self.stats.memo_hits += 1
                plan.sources.append(PLAN_MEMO)
                continue
            if key in plan.pending:
                self.stats.deduplicated += 1
                plan.sources.append(PLAN_DEDUP)
                continue
            if self.disk_cache is not None:
                cached = self.disk_cache.get(key)
                if cached is not None:
                    self._memo[key] = cached
                    self.stats.disk_hits += 1
                    plan.sources.append(PLAN_DISK)
                    continue
            plan.pending[key] = request
            plan.sources.append(PLAN_PENDING)
        if tracer:
            tracer.complete(
                "session.plan_batch",
                "session",
                start,
                requests=len(requests),
                **{source: plan.sources.count(source) for source in PLAN_SOURCES},
            )
        return plan

    def peek(self, key: str) -> Optional[AnyResult]:
        """The memoized result for a cache key, or None (no execution)."""
        return self._memo.get(key)

    def store_result(self, key: str, result: AnyResult) -> None:
        """Record an externally-executed result under its cache key.

        The transport half of :meth:`plan_batch`: memoizes, counts one
        execution, and persists to the disk cache when configured.
        """
        tracer = active_tracer()
        start = tracer.now() if tracer else 0.0
        self._memo[key] = result
        self.stats.executed += 1
        if self.disk_cache is not None:
            self.disk_cache.put(key, result)
        if tracer:
            tracer.complete(
                "session.store_result",
                "session",
                start,
                key=key,
                persisted=self.disk_cache is not None,
            )

    def collect(self, plan: BatchPlan) -> list[AnyResult]:
        """Results for a fully-executed plan, aligned with its input order."""
        tracer = active_tracer()
        if tracer:
            tracer.instant("session.collect", "session", results=len(plan.keys))
        return [self._memo[key] for key in plan.keys]

    def run_batch(self, requests: Sequence[RunRequest]) -> list[AnyResult]:
        """Execute a batch, returning results aligned with the input order.

        Duplicate requests within the batch are simulated once; requests
        seen before by this session (or present in the disk cache) are
        not simulated at all.
        """
        plan = self.plan_batch(requests)
        if plan.pending:
            self._execute_pending(plan.pending)
        return self.collect(plan)

    def _execute_pending(self, pending: dict[str, RunRequest]) -> None:
        keys = list(pending)
        todo = [pending[key] for key in keys]
        parallel = (
            self.max_workers is not None
            and self.max_workers > 1
            and len(todo) > 1
        )
        tracer = active_tracer()
        start = tracer.now() if tracer else 0.0
        if self.checkpoint_store is not None:
            results = self._execute_checkpointed(todo, parallel)
        elif parallel:
            with _worker_pool(self.max_workers) as pool:
                results = list(pool.map(self.executor, todo))
        else:
            results = [self.executor(request) for request in todo]
        if tracer:
            tracer.complete(
                "session.execute_pending",
                "session",
                start,
                pending=len(todo),
                parallel=parallel,
            )
        for key, result in zip(keys, results):
            self.store_result(key, result)

    def run_matrix(
        self, groups: Sequence[Sequence[RunRequest]]
    ) -> list[list[AnyResult]]:
        """Execute request groups as one flat deduplicated batch.

        ``groups`` is a sequence of request lists (e.g. one list per
        search candidate, holding that candidate's per-protocol
        requests).  All groups are flattened into a single
        :meth:`run_batch` call — so duplicates *across* groups are
        simulated once and the process pool sees the whole matrix at
        once — then the results are regrouped to mirror the input
        structure.
        """
        groups = [list(group) for group in groups]
        flat = [request for group in groups for request in group]
        results = iter(self.run_batch(flat))
        return [[next(results) for _ in group] for group in groups]

    def run_fleet(self, requests: Sequence) -> list:
        """Execute a batch of :class:`~repro.fleet.spec.FleetRequest`.

        Fleet requests flow through the same memo, dedup and disk-cache
        machinery as trace requests (their ``fleet:``-prefixed cache
        keys keep the two populations disjoint on disk), but execute
        through :func:`repro.fleet.engine.execute_fleet` -- a whole
        fleet is one unit of work, so parallel sessions fan out at the
        granularity of fleet runs.  Checkpointing does not apply: a
        fleet run's mid-flight state spans several machines.
        """
        from repro.fleet.engine import execute_fleet

        plan = self.plan_batch(requests)
        if plan.pending:
            keys = list(plan.pending)
            todo = [plan.pending[key] for key in keys]
            parallel = (
                self.max_workers is not None
                and self.max_workers > 1
                and len(todo) > 1
            )
            if parallel:
                with _worker_pool(self.max_workers) as pool:
                    results = list(pool.map(execute_fleet, todo))
            else:
                results = [execute_fleet(request) for request in todo]
            for key, result in zip(keys, results):
                self.store_result(key, result)
        return self.collect(plan)

    def _execute_checkpointed(
        self, todo: list[RunRequest], parallel: bool
    ) -> list[AnyResult]:
        """Execute a batch through the checkpoint store.

        Requests of one checkpoint *family* (identical machine
        trajectory, different ``refs_total``) must run serially,
        shortest first, or none can reuse the others' checkpoints; a
        parallel batch therefore fans out whole family chains, keeping
        concurrency *across* families without losing reuse *within*
        them.  Results are returned in the input order.
        """
        store_directory = str(self.checkpoint_store.directory)
        chains: dict[str, list[int]] = {}
        for index, request in enumerate(todo):
            chains.setdefault(checkpoint_family_key(request), []).append(index)
        ordered = [
            sorted(
                indices,
                key=lambda i: (
                    todo[i].refs_total is None,
                    todo[i].refs_total or 0,
                ),
            )
            for indices in chains.values()
        ]
        results: list[Optional[AnyResult]] = [None] * len(todo)
        if parallel and len(ordered) > 1:
            runner = functools.partial(
                _execute_chain,
                store_directory=store_directory,
                checkpoint_refs=self.checkpoint_refs,
            )
            with _worker_pool(self.max_workers) as pool:
                chain_outputs = list(
                    pool.map(
                        runner,
                        [[todo[i] for i in chain] for chain in ordered],
                    )
                )
        else:
            # serial, or a batch that collapsed to one family: running
            # in-process keeps counters visible and skips pool spawn.
            chain_outputs = [
                _execute_chain(
                    [todo[i] for i in chain],
                    store_directory,
                    self.checkpoint_refs,
                )
                for chain in ordered
            ]
        for indices, chain_results in zip(ordered, chain_outputs):
            for index, result in zip(indices, chain_results):
                results[index] = result
        return results

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    def __contains__(self, request: RunRequest) -> bool:
        """True when the request is answerable without simulating."""
        key = request.cache_key
        if key in self._memo:
            return True
        return self.disk_cache is not None and key in self.disk_cache

    def __len__(self) -> int:
        """Number of results memoized in this session's process memory."""
        return len(self._memo)

    def forget(self, requests: Optional[Iterable[RunRequest]] = None) -> None:
        """Drop memoized results (all of them when ``requests`` is None)."""
        if requests is None:
            self._memo.clear()
            return
        for request in requests:
            self._memo.pop(request.cache_key, None)

    def prune(self, min_age_seconds: float = 0.0) -> dict[str, PruneStats]:
        """Prune stale on-disk entries (results and checkpoints).

        Returns ``{"results": PruneStats, "checkpoints": PruneStats}``;
        sections without a configured store report all-zero stats.
        ``min_age_seconds`` scopes deletion to entries at least that
        old, so pruning a directory a live server is writing to cannot
        delete in-flight work (see :meth:`ResultCache.prune`).
        """
        # ``is not None``: both stores define __len__, so an *empty*
        # store is falsy and a bare truthiness test would skip it.
        empty = PruneStats(0, 0, 0)
        results = (
            self.disk_cache.prune(min_age_seconds=min_age_seconds)
            if self.disk_cache is not None
            else empty
        )
        checkpoints = (
            self.checkpoint_store.prune(min_age_seconds=min_age_seconds)
            if self.checkpoint_store is not None
            else empty
        )
        return {"results": results, "checkpoints": checkpoints}


_DEFAULT_SESSION: Optional[Session] = None


def default_session() -> Session:
    """The process-global session the experiment harnesses share.

    Honours ``REPRO_JOBS`` (worker processes) and ``REPRO_CACHE_DIR``
    (which also switches the disk cache on) at first use.
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        jobs = env_int(JOBS_ENV_VAR, None, minimum=1)
        cache_dir = os.environ.get(CACHE_DIR_ENV_VAR)
        logger.debug(
            "default session: jobs=%s cache_dir=%s",
            jobs if jobs is not None else "serial (REPRO_JOBS unset)",
            cache_dir or "off (REPRO_CACHE_DIR unset)",
        )
        _DEFAULT_SESSION = Session(
            cache_dir=cache_dir or None,
            max_workers=jobs,
        )
    return _DEFAULT_SESSION


def reset_default_session() -> None:
    """Discard the process-global session (mainly for tests)."""
    global _DEFAULT_SESSION
    _DEFAULT_SESSION = None
