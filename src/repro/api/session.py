"""The session engine: dedup, memoization and parallel execution.

A :class:`Session` executes batches of :class:`~repro.api.request.
RunRequest` objects.  Identical requests (same cache key) are simulated
exactly once per session; results are memoized in-process and,
when a cache directory is configured, persisted as JSON on disk.
Independent requests can be fanned out across worker processes with
:class:`concurrent.futures.ProcessPoolExecutor`; every simulation is
fully seeded by its config, so parallel results are bit-identical to
serial ones.

The experiment harnesses all share one process-global default session
(:func:`default_session`), which is where the cross-figure baseline
sharing the paper's evaluation grid invites actually happens: the
``no-hbm`` baseline of Figure 2 is the same request as the 16-vCPU
baseline of Figures 7-9 and 13, and it runs once.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.api.cache import CACHE_DIR_ENV_VAR, AnyResult, ResultCache
from repro.api.request import EXPERIMENT_REMAP, RunRequest
from repro.sim.engine import (
    ENGINE_FAST,
    ENGINE_REFERENCE,
    FastPathMismatchError,
    diff_fingerprints,
    resolve_engine,
    result_fingerprint,
    validate_fastpath_requested,
)
from repro.sim.remap_anatomy import single_remap_cost
from repro.sim.simulator import SimulationResult, Simulator
from repro.workloads import make_workload

#: Environment variable globally enabling process fan-out (worker count).
JOBS_ENV_VAR = "REPRO_JOBS"


def execute_request(request: RunRequest) -> AnyResult:
    """Execute one request from scratch (no caching).

    Module-level so :class:`concurrent.futures.ProcessPoolExecutor` can
    pickle it into worker processes.

    When ``REPRO_VALIDATE_FASTPATH=1`` is set, every fast-engine trace
    request is executed on *both* engines and the results are diffed;
    any difference raises :class:`~repro.sim.engine.
    FastPathMismatchError` instead of silently returning either result.
    """
    if request.experiment == EXPERIMENT_REMAP:
        return single_remap_cost(request.config)
    workload = make_workload(request.workload)
    if (
        validate_fastpath_requested()
        and resolve_engine(request.engine or None) == ENGINE_FAST
    ):
        return _execute_validated(request, workload)
    simulator = Simulator(request.config, engine=request.engine or None)
    return simulator.run(
        workload,
        warmup_fraction=request.warmup_fraction,
        refs_total=request.refs_total,
    )


def _execute_validated(request: RunRequest, workload) -> SimulationResult:
    """Run a trace request on both engines and require identical results."""
    results = {}
    for engine in (ENGINE_REFERENCE, ENGINE_FAST):
        simulator = Simulator(request.config, engine=engine)
        results[engine] = simulator.run(
            workload,
            warmup_fraction=request.warmup_fraction,
            refs_total=request.refs_total,
        )
    differences = diff_fingerprints(
        result_fingerprint(results[ENGINE_REFERENCE]),
        result_fingerprint(results[ENGINE_FAST]),
    )
    if differences:
        details = "\n  ".join(differences[:20])
        raise FastPathMismatchError(
            f"fast engine diverged from the reference engine on "
            f"workload {request.workload!r}:\n  {details}"
        )
    return results[ENGINE_FAST]


@dataclass
class SessionStats:
    """Where every request of a session ended up."""

    #: requests handed to the session (including duplicates).
    requested: int = 0
    #: requests answered by another identical request in the same batch.
    deduplicated: int = 0
    #: requests answered from the in-process memo.
    memo_hits: int = 0
    #: requests answered from the on-disk cache.
    disk_hits: int = 0
    #: requests actually simulated.
    executed: int = 0

    @property
    def simulations_avoided(self) -> int:
        """Runs that would have happened without the session machinery."""
        return self.deduplicated + self.memo_hits + self.disk_hits


class Session:
    """Executes run requests with dedup, caching and optional parallelism.

    Args:
        cache_dir: directory for the on-disk JSON result cache.  None
            (the default) disables disk caching; pass ``True`` to use
            the default location (``~/.cache/repro-hatric`` or
            ``$REPRO_CACHE_DIR``).
        max_workers: worker processes for batch execution.  None or <= 1
            runs serially in-process.  Results are identical either way.
        executor: the function that turns a request into a result;
            overridable for testing/instrumentation.
    """

    def __init__(
        self,
        cache_dir: Union[None, bool, str, Path] = None,
        max_workers: Optional[int] = None,
        executor: Callable[[RunRequest], AnyResult] = execute_request,
    ) -> None:
        if cache_dir is True:
            self.disk_cache: Optional[ResultCache] = ResultCache()
        elif cache_dir:
            self.disk_cache = ResultCache(cache_dir)
        else:
            self.disk_cache = None
        self.max_workers = max_workers
        self.executor = executor
        self.stats = SessionStats()
        self._memo: dict[str, AnyResult] = {}

    # ------------------------------------------------------------------
    # running requests
    # ------------------------------------------------------------------
    def run(self, request: RunRequest) -> AnyResult:
        """Execute (or recall) a single request."""
        return self.run_batch([request])[0]

    def run_batch(self, requests: Sequence[RunRequest]) -> list[AnyResult]:
        """Execute a batch, returning results aligned with the input order.

        Duplicate requests within the batch are simulated once; requests
        seen before by this session (or present in the disk cache) are
        not simulated at all.
        """
        requests = list(requests)
        self.stats.requested += len(requests)

        # Resolve what each unique key needs, preserving first-seen order.
        pending: dict[str, RunRequest] = {}
        for request in requests:
            key = request.cache_key
            if key in self._memo:
                self.stats.memo_hits += 1
                continue
            if key in pending:
                self.stats.deduplicated += 1
                continue
            if self.disk_cache is not None:
                cached = self.disk_cache.get(key)
                if cached is not None:
                    self._memo[key] = cached
                    self.stats.disk_hits += 1
                    continue
            pending[key] = request

        if pending:
            self._execute_pending(pending)
        return [self._memo[request.cache_key] for request in requests]

    def _execute_pending(self, pending: dict[str, RunRequest]) -> None:
        keys = list(pending)
        todo = [pending[key] for key in keys]
        if self.max_workers is not None and self.max_workers > 1 and len(todo) > 1:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                results = list(pool.map(self.executor, todo))
        else:
            results = [self.executor(request) for request in todo]
        for key, result in zip(keys, results):
            self._memo[key] = result
            self.stats.executed += 1
            if self.disk_cache is not None:
                self.disk_cache.put(key, result)

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    def __contains__(self, request: RunRequest) -> bool:
        """True when the request is answerable without simulating."""
        key = request.cache_key
        if key in self._memo:
            return True
        return self.disk_cache is not None and key in self.disk_cache

    def __len__(self) -> int:
        """Number of results memoized in this session's process memory."""
        return len(self._memo)

    def forget(self, requests: Optional[Iterable[RunRequest]] = None) -> None:
        """Drop memoized results (all of them when ``requests`` is None)."""
        if requests is None:
            self._memo.clear()
            return
        for request in requests:
            self._memo.pop(request.cache_key, None)


_DEFAULT_SESSION: Optional[Session] = None


def default_session() -> Session:
    """The process-global session the experiment harnesses share.

    Honours ``REPRO_JOBS`` (worker processes) and ``REPRO_CACHE_DIR``
    (which also switches the disk cache on) at first use.
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        jobs = os.environ.get(JOBS_ENV_VAR)
        cache_dir = os.environ.get(CACHE_DIR_ENV_VAR)
        _DEFAULT_SESSION = Session(
            cache_dir=cache_dir or None,
            max_workers=int(jobs) if jobs else None,
        )
    return _DEFAULT_SESSION


def reset_default_session() -> None:
    """Discard the process-global session (mainly for tests)."""
    global _DEFAULT_SESSION
    _DEFAULT_SESSION = None
