"""Declarative sweeps over the experiment design space.

The paper evaluates one cross-product grid — {protocol, placement,
paging policy, vCPU count, structure sizes} x workloads — and every
figure is a slice of it.  :class:`Sweep` owns that shape once: declare
the axes, optionally say which point on each slice is the normalization
baseline, and get back a :class:`SweepResult` grid with O(1)
``.value(**coords)`` lookups.

Axes whose names match :class:`~repro.sim.config.SystemConfig` fields
(``protocol``, ``placement``, ``hypervisor``, ``num_cpus``, ``paging``,
``translation``, ``directory``, ...) are applied automatically; every
other axis (``series``, ``policy``, ...) is interpreted by a
``configure`` callback.  Example::

    sweep = Sweep(
        axes={"protocol": ("software", "hatric", "ideal"),
              "workload": PAPER_WORKLOADS},
        base=SystemConfig(num_cpus=16),
    ).normalize_to(protocol="ideal", placement="slow-only")
    grid = sweep.run(session)
    grid.value(protocol="hatric", workload="canneal")  # normalized runtime

Baselines are expressed as coordinate overrides; because baseline
requests flow through the same :class:`~repro.api.session.Session` as
everything else, a baseline shared by many points (or many figures) is
simulated exactly once.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

from repro.api.request import RunRequest
from repro.api.scale import ExperimentScale
from repro.api.session import Session, default_session
from repro.sim.config import SystemConfig
from repro.sim.simulator import SimulationResult
from repro.workloads import make_workload

#: Signature of the per-point config hook: receives the config after
#: automatic field mapping plus the full coordinate mapping.
ConfigureFn = Callable[[SystemConfig, Mapping[str, Any]], SystemConfig]


@dataclass
class SweepCell:
    """One grid point: its coordinates, result and baseline."""

    coords: dict[str, Any]
    result: SimulationResult
    baseline: Optional[SimulationResult] = None

    @property
    def normalized_runtime(self) -> float:
        """Runtime normalized to the baseline point (the paper's metric)."""
        if self.baseline is None:
            raise ValueError("sweep has no baseline; use .result directly")
        return self.result.normalized_runtime(self.baseline)

    @property
    def normalized_energy(self) -> float:
        """Energy normalized to the baseline point."""
        if self.baseline is None:
            raise ValueError("sweep has no baseline; use .result directly")
        return self.result.normalized_energy(self.baseline)


class SweepResult:
    """A fully-populated sweep grid with dict-indexed lookups."""

    def __init__(
        self, axes: Mapping[str, Sequence[Any]], cells: Sequence[SweepCell]
    ) -> None:
        """Index ``cells`` (one per coordinate combination) under ``axes``."""
        self.axes = {name: tuple(values) for name, values in axes.items()}
        self.cells = list(cells)
        self._index = {self._key(cell.coords): cell for cell in self.cells}

    def _key(self, coords: Mapping[str, Any]) -> tuple:
        unknown = set(coords) - set(self.axes)
        if unknown:
            raise KeyError(
                f"unknown coordinate(s) {sorted(unknown)}; sweep axes are "
                f"{tuple(self.axes)}"
            )
        try:
            return tuple(coords[name] for name in self.axes)
        except KeyError as missing:
            raise KeyError(
                f"coordinate {missing.args[0]!r} missing; sweep axes are "
                f"{tuple(self.axes)}"
            ) from None

    def cell(self, **coords: Any) -> SweepCell:
        """The grid cell at ``coords`` (every axis must be named)."""
        key = self._key(coords)
        try:
            return self._index[key]
        except KeyError:
            raise KeyError(coords) from None

    def result(self, **coords: Any) -> SimulationResult:
        """The raw :class:`SimulationResult` at ``coords``."""
        return self.cell(**coords).result

    def value(self, **coords: Any) -> float:
        """The headline metric at ``coords``.

        Normalized runtime when the sweep has a baseline, raw runtime
        cycles otherwise.
        """
        cell = self.cell(**coords)
        if cell.baseline is not None:
            return cell.normalized_runtime
        return float(cell.result.runtime_cycles)

    def __iter__(self) -> Iterator[SweepCell]:
        """Iterate over the grid's cells in axis declaration order."""
        return iter(self.cells)

    def __len__(self) -> int:
        """Number of cells (the product of the axis lengths)."""
        return len(self.cells)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible summary of the grid (for the CLI)."""
        rows = []
        for cell in self.cells:
            row: dict[str, Any] = {
                "coords": dict(cell.coords),
                "runtime_cycles": cell.result.runtime_cycles,
                "energy_total": cell.result.energy_total,
            }
            if cell.baseline is not None:
                row["normalized_runtime"] = cell.normalized_runtime
                row["normalized_energy"] = cell.normalized_energy
            rows.append(row)
        return {"axes": {k: list(v) for k, v in self.axes.items()}, "cells": rows}


class Sweep:
    """A declarative cross-product of experiment axes.

    Args:
        axes: mapping of axis name to the values it sweeps.  The cross
            product of all axes is simulated.
        base: the starting :class:`SystemConfig` every point derives
            from (default: the paper's 16-CPU system).
        configure: hook customizing the config of each point; required
            when an axis name is neither a ``SystemConfig`` field nor
            the workload axis.
        workload_axis: the axis naming workloads (resolvable by
            :func:`repro.workloads.make_workload`).
    """

    def __init__(
        self,
        axes: Mapping[str, Sequence[Any]],
        base: Optional[SystemConfig] = None,
        configure: Optional[ConfigureFn] = None,
        workload_axis: str = "workload",
    ) -> None:
        if not axes:
            raise ValueError("a sweep needs at least one axis")
        self.axes: dict[str, tuple] = {}
        for name, values in axes.items():
            values = tuple(values)
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            self.axes[name] = values
        self.base = base if base is not None else SystemConfig(num_cpus=16)
        self.configure = configure
        self.workload_axis = workload_axis
        self.baseline_overrides: dict[str, Any] = {}
        if workload_axis not in self.axes:
            raise ValueError(
                f"axes must include the workload axis {workload_axis!r}"
            )
        config_fields = set(SystemConfig.__dataclass_fields__)
        for name in self.axes:
            if name == workload_axis or name in config_fields:
                continue
            if configure is None:
                raise ValueError(
                    f"axis {name!r} is not a SystemConfig field; pass a "
                    f"configure callback to interpret it"
                )

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def normalize_to(self, **overrides: Any) -> "Sweep":
        """Return a sweep normalizing every point to an overridden sibling.

        Each point's baseline shares its coordinates except for the
        axes named here (e.g. ``normalize_to(series="no-hbm")``); the
        override values need not appear among the axis values.
        """
        if not overrides:
            raise ValueError("normalize_to needs at least one coordinate")
        clone = Sweep(
            axes=self.axes,
            base=self.base,
            configure=self.configure,
            workload_axis=self.workload_axis,
        )
        clone.baseline_overrides = dict(overrides)
        return clone

    def points(self) -> list[dict[str, Any]]:
        """All coordinate combinations, in axis declaration order."""
        names = list(self.axes)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*self.axes.values())
        ]

    def config_for(self, coords: Mapping[str, Any]) -> SystemConfig:
        """Build the :class:`SystemConfig` of one grid point."""
        config = self.base
        config_fields = SystemConfig.__dataclass_fields__
        updates = {
            name: value
            for name, value in coords.items()
            if name != self.workload_axis and name in config_fields
        }
        if updates:
            config = config.replace(**updates)
        if self.configure is not None:
            config = self.configure(config, coords)
        return config

    def request_for(
        self, coords: Mapping[str, Any], scale: Optional[ExperimentScale] = None
    ) -> RunRequest:
        """Build the :class:`RunRequest` of one grid point."""
        scale = scale or ExperimentScale()
        workload = coords[self.workload_axis]
        return RunRequest(
            config=self.config_for(coords),
            workload=workload,
            warmup_fraction=scale.warmup_fraction,
            refs_total=scale.refs_for(make_workload(workload)),
        )

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(
        self,
        session: Optional[Session] = None,
        scale: Optional[ExperimentScale] = None,
    ) -> SweepResult:
        """Simulate the grid through a session and return the result."""
        session = session if session is not None else default_session()
        scale = scale or ExperimentScale.from_environment()
        points = self.points()
        requests = [self.request_for(coords, scale) for coords in points]
        batch = list(requests)
        if self.baseline_overrides:
            baseline_requests = [
                self.request_for({**coords, **self.baseline_overrides}, scale)
                for coords in points
            ]
            batch += baseline_requests
        results = session.run_batch(batch)
        cells = []
        for index, coords in enumerate(points):
            baseline = (
                results[len(points) + index] if self.baseline_overrides else None
            )
            cells.append(
                SweepCell(coords=coords, result=results[index], baseline=baseline)
            )
        return SweepResult(self.axes, cells)
