"""On-disk result cache and result (de)serialization.

Results are stored one JSON file per :attr:`RunRequest.cache_key` so
they survive across processes and sessions.  The encoders rebuild real
:class:`~repro.sim.simulator.SimulationResult` /
:class:`~repro.sim.remap_anatomy.AnatomyRow` objects, so cached results
are drop-in replacements for freshly simulated ones (normalization,
event lookups and per-app accounting all keep working).
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Mapping, NamedTuple, Optional, Union

from repro.api.request import (
    CACHE_SCHEMA_VERSION,
    config_from_dict,
    config_to_dict,
)
from repro.energy.model import EnergyBreakdown
from repro.obs.log import get_logger
from repro.sim.remap_anatomy import AnatomyRow
from repro.sim.simulator import SimulationResult
from repro.sim.stats import (
    CpuStats,
    EventCounter,
    IntervalSample,
    MachineStats,
    VmStats,
)

#: Either kind of result a session can produce.
AnyResult = Union[SimulationResult, AnatomyRow]

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Grace period (seconds) before prune may remove an orphaned ``*.tmp``
#: file.  Temp files younger than this are assumed to belong to a live
#: writer mid-:func:`write_text_atomic`; only crashed writers leave
#: temp files older than a minute.
TMP_GRACE_SECONDS = 60.0

#: The ``repro cache prune`` CLI default for ``--min-age``: entries
#: (stale or not-yet-decodable) younger than an hour are left alone, so
#: pruning a directory a live server is writing to cannot delete work
#: in flight.  Programmatic callers default to 0 (prune everything
#: stale) to keep library behaviour explicit.
DEFAULT_PRUNE_MIN_AGE_SECONDS = 3600.0

logger = get_logger(__name__)


class CacheDecodeError(ValueError):
    """A cache entry is structurally not a result this code can decode.

    Raised (and caught as a miss) for malformed-but-parseable entries;
    deliberately *not* raised for same-schema entries whose decode blows
    up with ``KeyError``/``TypeError`` -- that is an encoder/decoder bug
    and must propagate instead of masquerading as a miss and being
    deleted by ``prune``.
    """


class StaleSchemaError(CacheDecodeError):
    """A cache entry is stamped with a different schema version.

    The explicit (counted, logged) case: the entry may be perfectly
    well-formed -- possibly written by a *newer* version of this code --
    it just cannot be used by the running one.
    """


class PruneStats(NamedTuple):
    """Outcome of one prune pass over an on-disk store."""

    #: stale/undecodable (or surplus) entries actually deleted.
    removed: int
    #: healthy entries left on disk.
    kept: int
    #: entries that should have been deleted but could not be
    #: (``unlink`` failed); they are neither pruned nor healthy.
    failed: int


def default_cache_dir() -> Path:
    """The default on-disk cache location (``REPRO_CACHE_DIR`` wins)."""
    override = os.environ.get(CACHE_DIR_ENV_VAR)
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-hatric"


def file_age_at_least(path: Path, now: float, age_seconds: float) -> Optional[bool]:
    """Whether ``path``'s mtime is at least ``age_seconds`` before ``now``.

    Returns None when the file vanished (a concurrent writer's rename or
    another pruner got there first) -- callers must then skip the file
    entirely rather than count it either way.
    """
    try:
        mtime = path.stat().st_mtime
    except OSError:
        return None
    return now - mtime >= age_seconds


def prune_orphan_tmp_files(
    directory: Path,
    min_age_seconds: float,
    tmp_grace_seconds: float,
) -> tuple[int, int]:
    """Delete abandoned ``*.tmp`` files left by crashed writers.

    A temp file is only removed once it is older than *both*
    ``min_age_seconds`` and ``tmp_grace_seconds``, so even a
    ``min_age_seconds=0`` prune (tests, ``--min-age 0``) cannot delete
    the temp file a live :func:`write_text_atomic` is about to rename.
    Returns ``(removed, failed)``.
    """
    removed = failed = 0
    cutoff = max(min_age_seconds, tmp_grace_seconds)
    now = time.time()
    for path in sorted(directory.glob("*.tmp")):
        old_enough = file_age_at_least(path, now, cutoff)
        if not old_enough:  # too young, or already gone (None)
            continue
        try:
            path.unlink()
            removed += 1
        except OSError as error:
            logger.warning("prune failed to delete %s: %s", path, error)
            failed += 1
    return removed, failed


def write_text_atomic(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via write-then-rename.

    Concurrent readers never see a torn file.  The temporary file lives
    in ``path``'s own directory (created if needed), so the final
    ``os.replace`` is a same-filesystem rename.  Shared by the result
    cache and the checkpoint store so the two cannot drift on atomicity
    semantics.
    """
    directory = path.parent
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# result (de)serialization
# ----------------------------------------------------------------------
def _encode_stats(stats: MachineStats) -> dict[str, Any]:
    payload = {
        "num_cpus": stats.num_cpus,
        "cpus": [dataclasses.asdict(cpu) for cpu in stats.cpus],
        "events": dict(stats.events),
        "background_cycles": stats.background_cycles,
    }
    if stats.vms:
        # only consolidated runs carry per-VM counters; single-VM
        # entries stay byte-identical to the pre-multi-VM format
        payload["vms"] = [vm.to_dict() for vm in stats.vms]
    return payload


def _decode_stats(data: Mapping[str, Any]) -> MachineStats:
    stats = MachineStats(data["num_cpus"])
    stats.cpus = [CpuStats(**cpu) for cpu in data["cpus"]]
    stats.events = EventCounter(data["events"])
    stats.background_cycles = data["background_cycles"]
    stats.vms = [VmStats.from_dict(vm) for vm in data.get("vms", [])]
    return stats


def encode_result(result: AnyResult) -> dict[str, Any]:
    """Serialize a simulation or anatomy result to JSON-compatible data.

    Every entry carries the current :data:`CACHE_SCHEMA_VERSION`;
    :func:`decode_result` refuses entries stamped with any other value
    (including entries from releases that predate the stamp), which is
    what keeps a stale on-disk cache from silently feeding old numbers
    into new code.
    """
    if isinstance(result, AnatomyRow):
        return {
            "type": "anatomy",
            "schema": CACHE_SCHEMA_VERSION,
            **dataclasses.asdict(result),
        }
    if not isinstance(result, SimulationResult):
        # imported lazily: repro.fleet sits above the api layer (its
        # cache keys hash CACHE_SCHEMA_VERSION from this module)
        from repro.fleet.metrics import FleetResult

        if isinstance(result, FleetResult):
            return {
                "type": "fleet",
                "schema": CACHE_SCHEMA_VERSION,
                **result.to_dict(),
            }
        raise TypeError(f"cannot encode result type {type(result).__name__}")
    payload = {
        "type": "simulation",
        "schema": CACHE_SCHEMA_VERSION,
        "config": config_to_dict(result.config),
        "workload": result.workload,
        "stats": _encode_stats(result.stats),
        "energy": {
            "dynamic": result.energy.dynamic,
            "static": result.energy.static,
            "components": dict(result.energy.components),
        },
        "warmup_references": result.warmup_references,
        "per_app_cycles": dict(result.per_app_cycles),
    }
    if result.vm_names:
        payload["vm_names"] = list(result.vm_names)
    if result.intervals:
        # only telemetry-enabled runs carry interval samples; plain
        # entries stay byte-identical to the pre-telemetry format
        payload["intervals"] = [
            sample.to_dict() for sample in result.intervals
        ]
    return payload


def decode_result(data: Mapping[str, Any]) -> AnyResult:
    """Rebuild a result from :func:`encode_result` output.

    Raises :class:`StaleSchemaError` when the entry's schema stamp does
    not match the running code's :data:`CACHE_SCHEMA_VERSION` (missing
    stamp included) and :class:`CacheDecodeError` for entries of unknown
    type, so callers treat those -- and only those -- as cache misses.
    """
    schema = data.get("schema")
    if schema != CACHE_SCHEMA_VERSION:
        raise StaleSchemaError(
            f"cached result has schema {schema!r}, current code expects "
            f"{CACHE_SCHEMA_VERSION}; ignoring stale entry"
        )
    kind = data.get("type")
    if kind == "anatomy":
        fields = {k: v for k, v in data.items() if k not in ("type", "schema")}
        return AnatomyRow(**fields)
    if kind == "fleet":
        from repro.fleet.metrics import FleetResult

        return FleetResult.from_dict(data)
    if kind != "simulation":
        raise CacheDecodeError(f"unknown cached result type {kind!r}")
    energy = data["energy"]
    return SimulationResult(
        config=config_from_dict(data["config"]),
        workload=data["workload"],
        stats=_decode_stats(data["stats"]),
        energy=EnergyBreakdown(
            dynamic=energy["dynamic"],
            static=energy["static"],
            components=dict(energy["components"]),
        ),
        warmup_references=data["warmup_references"],
        per_app_cycles=dict(data["per_app_cycles"]),
        vm_names=list(data.get("vm_names", [])),
        intervals=[
            IntervalSample.from_dict(sample)
            for sample in data.get("intervals", [])
        ],
    )


# ----------------------------------------------------------------------
# the cache itself
# ----------------------------------------------------------------------
class ResultCache:
    """One-file-per-result JSON cache keyed by request cache keys."""

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        self.directory = (
            Path(directory).expanduser() if directory else default_cache_dir()
        )
        #: per-instance miss accounting: schema-mismatched entries vs
        #: unreadable/corrupt ones (tests and diagnostics read these).
        self.stale_schema_misses = 0
        self.decode_error_misses = 0

    def path_for(self, key: str) -> Path:
        """Cache file path for one key."""
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[AnyResult]:
        """Return the cached result for ``key``, or None.

        Unreadable, corrupt, and schema-mismatched entries are treated
        as misses rather than errors, so a truncated write never wedges
        the cache -- but only those: a ``KeyError``/``TypeError`` out of
        a *current-schema* entry is a (de)serializer bug and propagates.
        """
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                return decode_result(json.load(handle))
        except FileNotFoundError:
            return None
        except StaleSchemaError as error:
            self.stale_schema_misses += 1
            logger.warning("cache miss (stale schema) for %s: %s", path, error)
            return None
        except (OSError, json.JSONDecodeError, CacheDecodeError) as error:
            self.decode_error_misses += 1
            logger.warning("cache miss (undecodable) for %s: %s", path, error)
            return None

    def put(self, key: str, result: AnyResult) -> Path:
        """Store ``result`` under ``key`` (atomically) and return its path."""
        path = self.path_for(key)
        write_text_atomic(path, json.dumps(encode_result(result)))
        return path

    def __contains__(self, key: str) -> bool:
        """True when ``key`` has a decodable entry on disk.

        Decodes rather than stats so a torn/corrupt entry (which
        :meth:`get` treats as a miss) is not reported as present.
        """
        return self.get(key) is not None

    def __len__(self) -> int:
        """Number of entry files currently on disk."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def fleet_traffic(self) -> dict[str, int]:
        """Aggregate migration-snapshot traffic across cached fleet runs.

        Scans the ``fleet:``-prefixed entries (current schema only) and
        sums their transport counters, so ``repro cache info`` can show
        how much snapshot traffic the cached fleet results represent.
        Returns ``{"entries", "captures", "restores", "bytes"}``.
        """
        totals = {"entries": 0, "captures": 0, "restores": 0, "bytes": 0}
        if not self.directory.is_dir():
            return totals
        for path in sorted(self.directory.glob("fleet:*.json")):
            try:
                with path.open("r", encoding="utf-8") as handle:
                    data = json.load(handle)
            except (OSError, ValueError):
                continue
            if (
                data.get("schema") != CACHE_SCHEMA_VERSION
                or data.get("type") != "fleet"
            ):
                continue
            transport = data.get("transport", {})
            totals["entries"] += 1
            for key in ("captures", "restores", "bytes"):
                totals[key] += int(transport.get(key, 0))
        return totals

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def prune(
        self,
        min_age_seconds: float = 0.0,
        tmp_grace_seconds: float = TMP_GRACE_SECONDS,
    ) -> PruneStats:
        """Delete stale (schema-mismatched) and undecodable entries.

        :meth:`get` already treats such entries as misses, but a miss
        leaves the file in place forever; this pass removes them so a
        long-lived cache directory does not accumulate dead weight
        across schema bumps.  Returns :class:`PruneStats`; a stale entry
        whose ``unlink`` fails counts as ``failed``, never as pruned or
        kept.

        ``min_age_seconds`` scopes deletion to entries whose mtime is at
        least that old: pruning a directory a *live server* is writing
        to must not race an in-flight write into deletion (the CLI
        defaults to :data:`DEFAULT_PRUNE_MIN_AGE_SECONDS`).  Too-young
        stale entries count as ``kept``.  Abandoned ``*.tmp`` files from
        crashed writers are removed once older than both the cutoff and
        ``tmp_grace_seconds`` (counted in ``removed``); younger ones are
        presumed to belong to a live :func:`write_text_atomic` and are
        never touched, regardless of ``min_age_seconds``.
        """
        removed = kept = failed = 0
        if not self.directory.is_dir():
            return PruneStats(0, 0, 0)
        now = time.time()
        for path in sorted(self.directory.glob("*.json")):
            stale = False
            try:
                with path.open("r", encoding="utf-8") as handle:
                    decode_result(json.load(handle))
            except FileNotFoundError:
                continue  # lost a race with another pruner/clear
            except (OSError, json.JSONDecodeError, CacheDecodeError):
                stale = True
            if stale:
                old_enough = file_age_at_least(path, now, min_age_seconds)
                if old_enough is None:
                    continue
                if not old_enough:
                    kept += 1
                    continue
                try:
                    path.unlink()
                    removed += 1
                except OSError as error:
                    logger.warning(
                        "prune failed to delete %s: %s", path, error
                    )
                    failed += 1
            else:
                kept += 1
        tmp_removed, tmp_failed = prune_orphan_tmp_files(
            self.directory, min_age_seconds, tmp_grace_seconds
        )
        return PruneStats(removed + tmp_removed, kept, failed + tmp_failed)
