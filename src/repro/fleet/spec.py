"""Fleet descriptions and the seeded migration plan.

A :class:`FleetSpec` is a pure value: hosts, guests, epoch geometry and
a migration policy.  Everything downstream -- the trace, the migration
waves, the cache key -- is a deterministic function of it, which is what
makes fleet runs bit-identical across engines, processes and sessions.

The migration *plan* is computed here, before any simulation runs, from
placement state and a seeded RNG only.  It deliberately cannot observe
measured cycles: if the scheduler reacted to protocol-dependent timing,
the per-VM instruction streams would diverge between protocols and the
differential invariants (identical work, ideal <= all) would be
meaningless.  "Load" below is therefore *placed vCPUs*, a quantity every
protocol agrees on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.sim.config import GuestConfig

#: Bumped when the fleet trace/plan construction changes in a way that
#: invalidates cached fleet results.  Independent of the single-machine
#: ``CACHE_SCHEMA_VERSION``: bumping this never invalidates plain runs.
FLEET_SCHEMA_VERSION = 1

#: Cache-key prefix for fleet results; keeps fleet entries disjoint from
#: the plain hex keys single-machine ``RunRequest`` objects produce.
FLEET_PREFIX = "fleet:"

MIGRATION_POLICIES = ("round-robin", "load-balance", "pack")


@dataclass(frozen=True)
class HostSpec:
    """One simulated host: the guests initially placed on it.

    Unlike :class:`VmTopology`, per-guest ``mem_share`` caps are
    rejected: fleet machines host *every* VM's address space (absent
    guests simply never execute), so static share caps keyed to one
    host's initial population would not mean what they say.
    """

    guests: tuple[GuestConfig, ...]

    def __post_init__(self) -> None:
        if not self.guests:
            raise ValueError("a HostSpec needs at least one guest")
        for guest in self.guests:
            if not isinstance(guest, GuestConfig):
                raise TypeError("HostSpec.guests must be GuestConfig instances")
            if guest.mem_share is not None:
                raise ValueError(
                    "mem_share caps are not supported on fleet hosts"
                )

    def to_dict(self) -> dict:
        return {
            "guests": [
                {"workload": g.workload, "vcpus": g.vcpus} for g in self.guests
            ]
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "HostSpec":
        return cls(
            guests=tuple(
                GuestConfig(workload=g["workload"], vcpus=g.get("vcpus", 1))
                for g in data["guests"]
            )
        )


@dataclass(frozen=True)
class FleetSpec:
    """A whole cluster and its migration schedule, as one value.

    Attributes:
        hosts: initial guest placement, one :class:`HostSpec` per host.
        num_cpus: pCPUs per host (every host is identical hardware).
        seed: master seed; per-VM workload seeds and policy RNG draws
            are all mixed from it.
        policy: migration policy, one of :data:`MIGRATION_POLICIES`.
        epochs: round-aligned execution epochs; migrations happen
            between consecutive epochs (``epochs - 1`` waves).
        epoch_refs: base-workload references each vCPU retires per
            epoch; must be a positive multiple of the executors'
            32-reference interleave chunk so epoch boundaries land on
            round boundaries in both engines.
        storm_refs: per-stream length of each dirty-logging storm
            segment (source drain + destination re-touch); same
            round-alignment rule.
        intensity: VMs migrated per wave (the sweep axis of the
            ``fleet`` experiment).
    """

    hosts: tuple[HostSpec, ...]
    num_cpus: int = 8
    seed: int = 42
    policy: str = "round-robin"
    epochs: int = 4
    epoch_refs: int = 2048
    storm_refs: int = 512
    intensity: int = 1

    def __post_init__(self) -> None:
        if len(self.hosts) < 2:
            raise ValueError("a fleet needs at least two hosts")
        for host in self.hosts:
            if not isinstance(host, HostSpec):
                raise TypeError("FleetSpec.hosts must be HostSpec instances")
        if self.num_cpus < 1:
            raise ValueError("num_cpus must be positive")
        if self.policy not in MIGRATION_POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; "
                f"expected one of {MIGRATION_POLICIES}"
            )
        if self.epochs < 2:
            raise ValueError("a fleet run needs at least two epochs")
        if self.epoch_refs <= 0 or self.epoch_refs % 32:
            raise ValueError(
                "epoch_refs must be a positive multiple of 32 "
                "(the executors' interleave chunk)"
            )
        if self.storm_refs <= 0 or self.storm_refs % 32:
            raise ValueError(
                "storm_refs must be a positive multiple of 32 "
                "(the executors' interleave chunk)"
            )
        if self.intensity < 1:
            raise ValueError("intensity must be positive")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")

    # ------------------------------------------------------------------
    @property
    def num_hosts(self) -> int:
        return len(self.hosts)

    @property
    def num_vms(self) -> int:
        return sum(len(host.guests) for host in self.hosts)

    @property
    def name(self) -> str:
        """Display name, e.g. ``fleet-2h8v-round-robin-x1``."""
        return (
            f"fleet-{self.num_hosts}h{self.num_vms}v-{self.policy}"
            f"-x{self.intensity}"
        )

    def initial_placement(self) -> list[int]:
        """Host index of each VM (VMs numbered host-major, guest-minor)."""
        placement: list[int] = []
        for host_index, host in enumerate(self.hosts):
            placement.extend([host_index] * len(host.guests))
        return placement

    def guest_configs(self) -> list[GuestConfig]:
        """All guests in global VM order (host-major)."""
        return [guest for host in self.hosts for guest in host.guests]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "hosts": [host.to_dict() for host in self.hosts],
            "num_cpus": self.num_cpus,
            "seed": self.seed,
            "policy": self.policy,
            "epochs": self.epochs,
            "epoch_refs": self.epoch_refs,
            "storm_refs": self.storm_refs,
            "intensity": self.intensity,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FleetSpec":
        return cls(
            hosts=tuple(HostSpec.from_dict(h) for h in data["hosts"]),
            num_cpus=data.get("num_cpus", 8),
            seed=data.get("seed", 42),
            policy=data.get("policy", "round-robin"),
            epochs=data.get("epochs", 4),
            epoch_refs=data.get("epoch_refs", 2048),
            storm_refs=data.get("storm_refs", 512),
            intensity=data.get("intensity", 1),
        )


def _rng_pick(seed: int, epoch: int, slot: int, options: Sequence[int]) -> int:
    """Deterministic choice among ``options`` for one (epoch, slot) draw."""
    import numpy as np

    rng = np.random.default_rng((seed % 2**32, 401, epoch, slot))
    return options[int(rng.integers(0, len(options)))]


def migration_plan(spec: FleetSpec) -> list[list[tuple[int, int, int]]]:
    """The fleet's migration waves: ``plan[e]`` moves after epoch ``e``.

    Each wave is a list of ``(vm, source_host, destination_host)``
    triples, computed against the *evolving* placement (earlier moves in
    a wave are visible to later ones).  Pure function of the spec --
    never of simulation output -- see the module docstring for why.
    """
    guests = spec.guest_configs()
    placement = spec.initial_placement()
    num_vms = len(placement)
    plan: list[list[tuple[int, int, int]]] = []

    def host_load(host: int) -> int:
        return sum(
            guests[vm].vcpus for vm in range(num_vms) if placement[vm] == host
        )

    for epoch in range(spec.epochs - 1):
        wave: list[tuple[int, int, int]] = []
        moved: set[int] = set()
        for slot in range(spec.intensity):
            vm: Optional[int] = None
            dst: Optional[int] = None
            if spec.policy == "round-robin":
                vm = (epoch * spec.intensity + slot) % num_vms
                dst = (placement[vm] + 1) % spec.num_hosts
            elif spec.policy == "load-balance":
                loads = [host_load(h) for h in range(spec.num_hosts)]
                src = max(range(spec.num_hosts), key=lambda h: (loads[h], -h))
                dst = min(range(spec.num_hosts), key=lambda h: (loads[h], h))
                candidates = [
                    v
                    for v in range(num_vms)
                    if placement[v] == src and v not in moved
                ]
                if candidates:
                    vm = _rng_pick(spec.seed, epoch, slot, candidates)
            else:  # pack
                loads = [host_load(h) for h in range(spec.num_hosts)]
                occupied = [h for h in range(spec.num_hosts) if loads[h] > 0]
                if len(occupied) > 1:
                    src = min(occupied, key=lambda h: (loads[h], h))
                    dst = max(occupied, key=lambda h: (loads[h], -h))
                    candidates = [
                        v
                        for v in range(num_vms)
                        if placement[v] == src and v not in moved
                    ]
                    if candidates:
                        vm = _rng_pick(spec.seed, epoch, slot, candidates)
            if vm is None or dst is None or placement[vm] == dst:
                continue
            wave.append((vm, placement[vm], dst))
            placement[vm] = dst
            moved.add(vm)
        plan.append(wave)
    return plan


@dataclass(frozen=True)
class FleetRequest:
    """A cacheable fleet simulation request (spec x protocol x engine).

    Mirrors :class:`repro.api.request.RunRequest`: the cache key hashes
    the full request payload plus both schema versions, but carries the
    ``fleet:`` prefix so fleet entries can never collide with (or be
    mistaken for) single-machine results on disk.
    """

    spec: FleetSpec
    protocol: str
    engine: str = ""
    _cache_key: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "protocol": self.protocol,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FleetRequest":
        return cls(
            spec=FleetSpec.from_dict(data["spec"]),
            protocol=data["protocol"],
            engine=data.get("engine", ""),
        )

    @property
    def cache_key(self) -> str:
        if self._cache_key is None:
            from repro.api.cache import CACHE_SCHEMA_VERSION

            payload = {
                "schema": CACHE_SCHEMA_VERSION,
                "fleet_schema": FLEET_SCHEMA_VERSION,
                **self.to_dict(),
            }
            blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_cache_key", FLEET_PREFIX + digest)
        return self._cache_key


__all__ = [
    "FLEET_PREFIX",
    "FLEET_SCHEMA_VERSION",
    "MIGRATION_POLICIES",
    "FleetRequest",
    "FleetSpec",
    "HostSpec",
    "migration_plan",
]
