"""VM-scoped migration transport: capture on source, restore on target.

A fleet migration moves one guest between two simulated hosts.  The
transport payload is the VM's *architectural* state -- its guest page
tables (the structures live migration actually ships), per-process
ASIDs, and the VM's allocation cursors.  Host-local state (nested
mappings, residency, cache contents) deliberately stays behind: the
destination demand-faults the guest's pages back in, which is exactly
the post-migration cold-start the paper's dirty-logging storm then
amplifies into translation-coherence traffic.

Payloads reuse the machine snapshot's node codec and schema stamp, so
the fleet layer inherits PR 5's versioning guarantees: a payload from a
different snapshot schema can never restore.

Correctness notes (enforced by ``tests/test_fleet.py``):

* Every host creates *all* of the fleet's VMs at machine build time, in
  the same deterministic order, so VM ids, ASIDs and initial page-table
  frame numbers line up across hosts and a payload restores onto the
  VM object with the same identity.
* Guest page tables are monotone (mappings are never re-pointed), and
  the transplanted tree is always a superset of the target host's copy
  for that VM; stale TLB and cache state from a previous residency
  therefore remains *correct*, it is merely warm.
* Page-table frames are pinned (never paged), so after a transplant the
  target must eagerly back any guest-PT frame its nested table has not
  seen; the walker would otherwise nested-fault a PT page through the
  data-page path and fault in the wrong frame.
"""

from __future__ import annotations

import json
from typing import Any

from repro.sim.simulator import Simulator
from repro.sim.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    SnapshotError,
    _encode_node,
    _load_table,
)


def _collect_table_pages(node, pages: list[int]) -> None:
    """Guest-physical page numbers of every node in a page-table tree."""
    pages.append(node.page_number)
    for child in node.children.values():
        _collect_table_pages(child, pages)


def capture_vm_state(simulator: Simulator, vm_index: int) -> dict[str, Any]:
    """Serialize one VM's migratable state from ``simulator``.

    The payload is JSON-compatible and engine-agnostic: both engines'
    machines produce byte-identical payloads at the same fleet position,
    which is what lets the fleet fingerprint include transport bytes.
    """
    vms = list(simulator.hypervisor._vms.values())
    if not 0 <= vm_index < len(vms):
        raise SnapshotError(f"host has no VM index {vm_index}")
    vm = vms[vm_index]
    return {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "vm_id": vm.vm_id,
        "next_gpp": vm._next_gpp,
        "next_asid": vm._next_asid,
        "processes": [
            {
                "asid": process.asid,
                "guest": _encode_node(process.guest_page_table.root),
            }
            for process in vm.processes
        ],
    }


def restore_vm_state(
    simulator: Simulator, vm_index: int, payload: dict[str, Any]
) -> None:
    """Transplant a captured VM payload into ``simulator``'s copy.

    Overwrites the target VM's guest page tables in place (object
    identity is preserved -- executor contexts and walkers keep their
    references), re-derives fast-engine walk memos, and eagerly backs
    every transplanted page-table frame the host has not mapped yet.
    """
    if payload.get("schema") != SNAPSHOT_SCHEMA_VERSION:
        raise SnapshotError(
            f"migration payload has schema {payload.get('schema')!r}, "
            f"expected {SNAPSHOT_SCHEMA_VERSION}"
        )
    hypervisor = simulator.hypervisor
    vms = list(hypervisor._vms.values())
    if not 0 <= vm_index < len(vms):
        raise SnapshotError(f"host has no VM index {vm_index}")
    vm = vms[vm_index]
    if vm.vm_id != payload["vm_id"]:
        raise SnapshotError(
            f"payload is for VM id {payload['vm_id']}, host VM index "
            f"{vm_index} has id {vm.vm_id}"
        )
    if len(payload["processes"]) != len(vm.processes):
        raise SnapshotError(
            f"payload has {len(payload['processes'])} processes, host VM "
            f"has {len(vm.processes)}"
        )

    vm._next_gpp = payload["next_gpp"]
    vm._next_asid = payload["next_asid"]
    table_pages: list[int] = []
    for process, process_data in zip(vm.processes, payload["processes"]):
        process.asid = process_data["asid"]
        table = process.guest_page_table
        _load_table(table, process_data["guest"])
        process.guest_root_gpp = table.root.page_number
        if hasattr(table, "_fast_init_memo"):
            # fast-engine table: the transplant replaced the tree the
            # hoisted walk memos were built against
            table._fast_init_memo()
        _collect_table_pages(table.root, table_pages)

    # Pin any transplanted page-table frame this host has never backed;
    # frames from a previous residency are already (and still) mapped.
    for gpp in table_pages:
        if vm.nested_page_table.lookup(gpp) is None:
            hypervisor.back_guest_frame(vm, gpp, is_page_table=True)


def payload_bytes(payload: dict[str, Any]) -> int:
    """Size of a payload on the wire (compact JSON encoding)."""
    return len(json.dumps(payload, separators=(",", ":")).encode("utf-8"))


__all__ = ["capture_vm_state", "payload_bytes", "restore_vm_state"]
