"""Fleet-scale simulation: N hosts, live migration, tail metrics.

The paper's headline pathology -- translation-coherence storms under
live migration's dirty-page logging -- is an *operator-scale* problem:
what matters in a datacenter is the tail latency and SLO damage a
migration wave inflicts across a whole cluster, not one machine's
average.  This package models that layer on top of the single-machine
simulator:

* :mod:`repro.fleet.spec` -- :class:`FleetSpec` / :class:`HostSpec`
  describe the cluster and a seeded, protocol-independent migration
  plan (pluggable policies);
* :mod:`repro.fleet.engine` -- drives every host's machine through
  round-aligned epochs via the stepped executor, moving VMs between
  hosts with snapshot capture/restore as the migration transport;
* :mod:`repro.fleet.transport` -- the VM-scoped snapshot payloads;
* :mod:`repro.fleet.metrics` -- per-VM tail latency (p50/p95/p99
  cycles-per-ref), SLO violations, fleet fingerprints and the
  differential invariants.

Fleet runs are bit-identical across the reference and fast engines and
across serial / process-pool sessions; `tests/test_fleet.py` enforces
both.
"""

from repro.fleet.engine import execute_fleet
from repro.fleet.metrics import FleetResult, fleet_violations
from repro.fleet.spec import (
    FLEET_PREFIX,
    FLEET_SCHEMA_VERSION,
    MIGRATION_POLICIES,
    FleetRequest,
    FleetSpec,
    HostSpec,
    migration_plan,
)

__all__ = [
    "FLEET_PREFIX",
    "FLEET_SCHEMA_VERSION",
    "MIGRATION_POLICIES",
    "FleetRequest",
    "FleetResult",
    "FleetSpec",
    "HostSpec",
    "execute_fleet",
    "fleet_violations",
    "migration_plan",
]
