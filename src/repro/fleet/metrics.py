"""Fleet metrics: tail latency, SLO damage, fingerprints, invariants.

This module turns the raw materials of a fleet run -- one
:class:`~repro.sim.simulator.SimulationResult` and machine digest per
host, per-epoch interval telemetry, the transport counters -- into a
single JSON-round-trippable :class:`FleetResult`, and provides the
fleet-level differential invariants (:func:`fleet_violations`) the
``fleet`` experiment uses as its correctness oracle.

The operator-facing numbers are *per-VM*: each epoch contributes one
cycles-per-reference observation per VM (summed across the hosts the VM
touched that epoch, so migration epochs charge both the source-side
drain and the destination-side cold re-touch to the VM that moved), and
the p50/p95/p99 of that series is the VM's tail latency.  An epoch is
an SLO violation when it runs :data:`SLO_FACTOR` times slower than the
VM's own median epoch.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.sim.engine import result_fingerprint
from repro.sim.simulator import SimulationResult
from repro.sim.stats import nearest_rank_percentile

#: An epoch whose cycles-per-ref exceeds this multiple of the VM's
#: median epoch counts as an SLO violation for that VM.
SLO_FACTOR = 1.5

#: Event counters that represent translation-shootdown work, per
#: protocol family (software IPIs/VM exits vs. hardware invalidation
#: messages).  Kept in sync with the timeline experiment's event keys.
SHOOTDOWN_EVENTS = (
    "coherence.ipis",
    "coherence.vm_exits",
    "hatric.invalidation_messages",
    "unitd.invalidation_messages",
)

#: The remap storms the shootdowns are triggered by.
REMAP_EVENT = "coherence.remaps"


# ----------------------------------------------------------------------
# canonical hashing
# ----------------------------------------------------------------------
def _canon(obj: Any) -> Any:
    """JSON-representable canonical form of an arbitrary digest payload.

    Machine digests contain tuple dictionary keys (the hypervisor's
    ``(vm_id, gpp)`` residency maps) and tuple values, which
    ``json.dumps`` rejects; this recursion rewrites mappings as sorted
    ``[key, value]`` pair lists and tuples as lists, so any two
    structurally equal digests canonicalize to the same JSON text.
    """
    if isinstance(obj, Mapping):
        pairs = [[_canon(key), _canon(value)] for key, value in obj.items()]
        pairs.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True))
        return {"__pairs__": pairs}
    if isinstance(obj, (list, tuple)):
        return [_canon(item) for item in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def canonical_digest(payload: Any) -> str:
    """SHA-256 over the canonical JSON form of ``payload``."""
    blob = json.dumps(_canon(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def fleet_fingerprint(
    host_digests: list[dict], host_results: list[SimulationResult],
    transport: Mapping[str, int],
) -> str:
    """The fleet run's identity: every host's machine *and* measurements.

    Covers each host's full machine digest (TLBs, caches, directory,
    residency), its result fingerprint (which includes the per-epoch
    interval telemetry), and the migration transport counters -- so two
    runs agree iff nothing observable anywhere in the fleet differed.
    """
    return canonical_digest(
        {
            "hosts": [
                {"machine": digest, "result": result_fingerprint(result)}
                for digest, result in zip(host_digests, host_results)
            ],
            "transport": dict(transport),
        }
    )


# ----------------------------------------------------------------------
# result assembly
# ----------------------------------------------------------------------
@dataclass
class FleetResult:
    """Everything measured during one fleet run, in plain JSON types.

    Attributes:
        spec: the :class:`~repro.fleet.spec.FleetSpec` as a dict.
        protocol: translation-coherence protocol the fleet ran under.
        hosts: per-host summaries (runtime/busy/coherence cycles,
            instructions, energy, events, machine digest hash, and the
            per-epoch interval samples).
        vms: per-VM summaries (totals, migration count, the per-epoch
            cycles-per-ref series, p50/p95/p99, SLO violations).
        totals: fleet-wide aggregates (makespan, shootdown cycles and
            messages, remaps, energy).
        transport: migration snapshot traffic (captures/restores/bytes).
        migrations: executed moves as ``[epoch, vm, source, dest]``.
        fingerprint: :func:`fleet_fingerprint` of the run.
    """

    spec: dict
    protocol: str
    hosts: list
    vms: list
    totals: dict
    transport: dict
    migrations: list
    fingerprint: str

    @property
    def makespan_cycles(self) -> int:
        """Fleet completion time: the slowest host's runtime."""
        return self.totals["makespan_cycles"]

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "protocol": self.protocol,
            "hosts": self.hosts,
            "vms": self.vms,
            "totals": self.totals,
            "transport": self.transport,
            "migrations": self.migrations,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FleetResult":
        return cls(
            spec=dict(data["spec"]),
            protocol=data["protocol"],
            hosts=list(data["hosts"]),
            vms=list(data["vms"]),
            totals=dict(data["totals"]),
            transport=dict(data["transport"]),
            migrations=[list(move) for move in data["migrations"]],
            fingerprint=data["fingerprint"],
        )


def _vm_epoch_series(
    host_results: list[SimulationResult], vm_index: int, epochs: int
) -> list[float]:
    """Per-epoch cycles-per-ref of one VM, summed across all hosts.

    Epoch ``e`` is each host's ``e``-th interval sample; a migrating
    VM's epoch therefore includes both its source-side storm and its
    destination-side cold re-touch, wherever they were paid.
    """
    series: list[float] = []
    for epoch in range(epochs):
        busy = 0
        refs = 0
        for result in host_results:
            sample = result.intervals[epoch]
            if vm_index < len(sample.vms):
                busy += sample.vms[vm_index]["busy_cycles"]
                refs += sample.vms[vm_index]["instructions"]
        if refs > 0:
            series.append(busy / refs)
    return series


def build_fleet_result(
    spec,
    protocol: str,
    host_results: list[SimulationResult],
    host_digests: list[dict],
    transport: Mapping[str, int],
    plan: list[list[tuple[int, int, int]]],
) -> FleetResult:
    """Assemble the :class:`FleetResult` of one simulated fleet run."""
    guests = spec.guest_configs()
    migrations = [
        [epoch, vm, src, dst]
        for epoch, wave in enumerate(plan)
        for vm, src, dst in wave
    ]
    moves_of_vm = [0] * len(guests)
    for _, vm, _, _ in migrations:
        moves_of_vm[vm] += 1

    hosts = []
    for result, digest in zip(host_results, host_digests):
        stats = result.stats
        hosts.append(
            {
                "runtime_cycles": stats.runtime_cycles,
                "busy_cycles": stats.total_cycles,
                "coherence_cycles": stats.coherence_cycles,
                "background_cycles": stats.background_cycles,
                "instructions": stats.total_instructions,
                "energy": result.energy_total,
                "events": dict(stats.events),
                "digest": canonical_digest(digest),
                "intervals": [sample.to_dict() for sample in result.intervals],
            }
        )

    vms = []
    for vm_index, guest in enumerate(guests):
        series = _vm_epoch_series(host_results, vm_index, spec.epochs)
        if series:
            median = nearest_rank_percentile(series, 50)
            percentiles = {
                "p50": median,
                "p95": nearest_rank_percentile(series, 95),
                "p99": nearest_rank_percentile(series, 99),
            }
            slo_violations = sum(
                1 for value in series if value > SLO_FACTOR * median
            )
        else:  # pragma: no cover - every VM retires work each epoch
            percentiles = {}
            slo_violations = 0
        vms.append(
            {
                "name": f"vm{vm_index}:{guest.workload}",
                "instructions": sum(
                    r.stats.vms[vm_index].instructions for r in host_results
                ),
                "busy_cycles": sum(
                    r.stats.vms[vm_index].busy_cycles for r in host_results
                ),
                "coherence_cycles": sum(
                    r.stats.vms[vm_index].coherence_cycles
                    for r in host_results
                ),
                "migrations": moves_of_vm[vm_index],
                "cycles_per_ref": series,
                "tail": percentiles,
                "slo_violations": slo_violations,
            }
        )

    def _event_total(key: str) -> int:
        return sum(host["events"].get(key, 0) for host in hosts)

    totals = {
        "makespan_cycles": max(host["runtime_cycles"] for host in hosts),
        "busy_cycles": sum(host["busy_cycles"] for host in hosts),
        "coherence_cycles": sum(host["coherence_cycles"] for host in hosts),
        "instructions": sum(host["instructions"] for host in hosts),
        "energy": sum(host["energy"] for host in hosts),
        "remaps": _event_total(REMAP_EVENT),
        "shootdown_messages": {
            key: _event_total(key) for key in SHOOTDOWN_EVENTS
        },
        "slo_violations": sum(vm["slo_violations"] for vm in vms),
        "migrations": len(migrations),
    }

    return FleetResult(
        spec=spec.to_dict(),
        protocol=protocol,
        hosts=hosts,
        vms=vms,
        totals=totals,
        transport=dict(transport),
        migrations=migrations,
        fingerprint=fleet_fingerprint(host_digests, host_results, transport),
    )


# ----------------------------------------------------------------------
# differential invariants
# ----------------------------------------------------------------------
def fleet_violations(results: Mapping[str, FleetResult]) -> list[str]:
    """Check one fleet shape's per-protocol results against the invariants.

    The fleet analogue of :func:`repro.experiments.scenarios.
    differential_violations`: ``results`` maps protocol name to the
    :class:`FleetResult` of the *same* :class:`FleetSpec`.  Returns
    human-readable violation descriptions (empty = all hold).
    """
    violations: list[str] = []
    for protocol, result in results.items():
        for host_index, host in enumerate(result.hosts):
            for key in (
                "runtime_cycles",
                "busy_cycles",
                "coherence_cycles",
                "background_cycles",
                "instructions",
            ):
                if host[key] < 0:
                    violations.append(
                        f"{protocol}: host{host_index} negative {key}="
                        f"{host[key]}"
                    )
            for event, count in host["events"].items():
                if count < 0:
                    violations.append(
                        f"{protocol}: host{host_index} negative event "
                        f"counter {event}={count}"
                    )

    # Identical work: the migration plan is protocol-independent, so
    # every protocol must retire the same references -- fleet-wide, per
    # VM, and ship the same snapshot bytes.
    retired = {p: r.totals["instructions"] for p, r in results.items()}
    if len(set(retired.values())) > 1:
        violations.append(f"retired reference counts differ: {retired}")
    per_vm = {
        p: tuple(vm["instructions"] for vm in r.vms)
        for p, r in results.items()
    }
    if len(set(per_vm.values())) > 1:
        violations.append(f"per-VM reference counts differ: {per_vm}")
    # Payload *bytes* are legitimately protocol-dependent (the guest
    # page tables' accessed/dirty bits reflect how often each protocol
    # forced re-walks), but the move count is part of the plan.
    traffic = {
        p: (r.transport["captures"], r.transport["restores"])
        for p, r in results.items()
    }
    if len(set(traffic.values())) > 1:
        violations.append(f"migration transport differs: {traffic}")

    ideal = results.get("ideal")
    if ideal is not None:
        for protocol, result in results.items():
            if result.makespan_cycles < ideal.makespan_cycles:
                violations.append(
                    f"ideal slower than {protocol} on makespan: "
                    f"{ideal.makespan_cycles} > {result.makespan_cycles}"
                )
            for host_index, (host, ideal_host) in enumerate(
                zip(result.hosts, ideal.hosts)
            ):
                if host["runtime_cycles"] < ideal_host["runtime_cycles"]:
                    violations.append(
                        f"ideal slower than {protocol} on host{host_index}: "
                        f"{ideal_host['runtime_cycles']} > "
                        f"{host['runtime_cycles']}"
                    )
    hatric, software = results.get("hatric"), results.get("software")
    if hatric is not None and software is not None:
        if hatric.makespan_cycles > software.makespan_cycles:
            violations.append(
                f"hatric slower than software on makespan: "
                f"{hatric.makespan_cycles} > {software.makespan_cycles}"
            )
        for host_index, (h_host, s_host) in enumerate(
            zip(hatric.hosts, software.hosts)
        ):
            if h_host["runtime_cycles"] > s_host["runtime_cycles"]:
                violations.append(
                    f"hatric slower than software on host{host_index}: "
                    f"{h_host['runtime_cycles']} > {s_host['runtime_cycles']}"
                )
    return violations


__all__ = [
    "REMAP_EVENT",
    "SHOOTDOWN_EVENTS",
    "SLO_FACTOR",
    "FleetResult",
    "build_fleet_result",
    "canonical_digest",
    "fleet_fingerprint",
    "fleet_violations",
]
