"""The fleet driver: round-aligned epochs, live migration, both engines.

Execution model
---------------
Every host is a complete simulated machine that creates **all** of the
fleet's VMs (in the same deterministic order, so VM identities line up
across hosts -- see :mod:`repro.fleet.transport`), but a VM only ever
*executes* on the host it is currently placed on; everywhere else its
streams receive empty spans, which both engines skip identically.

The global trace carries each VM's whole life, in execution order:

    [epoch 0 base] [storm pair if it migrates after epoch 0]
    [epoch 1 base] [storm pair ...] ... [last epoch base]

where a storm pair is one :func:`~repro.workloads.storm.storm_segment`
drain executed on the *source* host followed by one cold re-touch sweep
executed on the *destination* -- the dirty-logging write storm the
paper's ``syn:live-migration`` scenario models, here tied to actual
moves.  All segment lengths are multiples of the executors' 32-ref
interleave chunk, so every capture/restore happens at a round-aligned
machine state on both engines.

The migration schedule is fixed by :func:`~repro.fleet.spec.
migration_plan` before anything runs, so every protocol simulates the
byte-identical reference streams; protocol differences show up only as
cycles, events and energy -- exactly what the differential invariants
require.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fleet.metrics import FleetResult, build_fleet_result
from repro.obs.trace import active_tracer
from repro.fleet.spec import FleetRequest, FleetSpec, migration_plan
from repro.fleet.transport import (
    capture_vm_state,
    payload_bytes,
    restore_vm_state,
)
from repro.sim.config import SystemConfig
from repro.sim.engine import (
    ENGINE_REFERENCE,
    FastPathMismatchError,
    diff_fingerprints,
    machine_digest,
    resolve_engine,
    validate_fastpath_requested,
)
from repro.sim.simulator import Simulator, SteppedRun
from repro.workloads import make_workload
from repro.workloads.base import WorkloadTrace
from repro.workloads.storm import storm_segment, stream_page_span


@dataclass
class FleetLayout:
    """Per-VM boundary tables into the global fleet trace.

    Attributes:
        streams_of_vm: global stream indices belonging to each VM.
        base_end: ``base_end[vm][epoch]`` is every VM stream's position
            after its epoch-``epoch`` base segment.
        storm_ends: ``storm_ends[vm][k]`` is the ``(source_end,
            destination_end)`` position pair of the VM's ``k``-th
            migration storm.
    """

    streams_of_vm: list[list[int]]
    base_end: list[list[int]]
    storm_ends: list[list[tuple[int, int]]]


def build_fleet_trace(spec: FleetSpec) -> tuple[WorkloadTrace, FleetLayout]:
    """Compose the fleet's global trace and its boundary tables.

    Pure function of the spec: workload seeds are mixed per VM from the
    fleet seed, storm segments are parametric, and the migration plan
    fixes which epochs get storm pairs.
    """
    guests = spec.guest_configs()
    plan = migration_plan(spec)
    migration_epochs: list[list[int]] = [[] for _ in guests]
    for epoch, wave in enumerate(plan):
        for vm, _, _ in wave:
            migration_epochs[vm].append(epoch)

    refs_base = spec.epochs * spec.epoch_refs
    streams: list[np.ndarray] = []
    writes: list[np.ndarray] = []
    process_of_vcpu: list[int] = []
    vm_of_vcpu: list[int] = []
    vm_names: list[str] = []
    streams_of_vm: list[list[int]] = []
    base_end: list[list[int]] = []
    storm_ends: list[list[tuple[int, int]]] = []
    process_base = 0

    for vm_index, guest in enumerate(guests):
        vm_seed = int(
            np.random.default_rng(
                (spec.seed % 2**32, 601, vm_index)
            ).integers(0, 2**63 - 1)
        )
        base = make_workload(guest.workload).generate(
            num_vcpus=guest.vcpus,
            seed=vm_seed,
            refs_total=guest.vcpus * refs_base,
        )
        if base.num_vcpus != guest.vcpus:
            raise ValueError(
                f"workload {guest.workload!r} produced {base.num_vcpus} "
                f"streams for a {guest.vcpus}-vCPU guest"
            )
        base_streams = [
            np.resize(stream, refs_base).astype(np.int64)
            for stream in base.streams
        ]
        base_writes = [
            np.resize(flags, refs_base).astype(bool) for flags in base.writes
        ]
        base_page, footprint = stream_page_span(base_streams)
        migrates_at = set(migration_epochs[vm_index])

        lane_segments: list[list[np.ndarray]] = [[] for _ in range(guest.vcpus)]
        lane_writes: list[list[np.ndarray]] = [[] for _ in range(guest.vcpus)]
        bounds_base: list[int] = []
        bounds_storm: list[tuple[int, int]] = []
        position = 0
        sweep = 0
        for epoch in range(spec.epochs):
            lo = epoch * spec.epoch_refs
            hi = lo + spec.epoch_refs
            for lane in range(guest.vcpus):
                lane_segments[lane].append(base_streams[lane][lo:hi])
                lane_writes[lane].append(base_writes[lane][lo:hi])
            position += spec.epoch_refs
            bounds_base.append(position)
            if epoch in migrates_at:
                for _ in range(2):  # source drain, then destination touch
                    for lane in range(guest.vcpus):
                        addresses, flags = storm_segment(
                            base_page,
                            footprint,
                            spec.storm_refs,
                            sweep,
                            lane,
                        )
                        lane_segments[lane].append(addresses)
                        lane_writes[lane].append(flags)
                    position += spec.storm_refs
                    sweep += 1
                bounds_storm.append(
                    (position - spec.storm_refs, position)
                )

        first_stream = len(streams)
        for lane in range(guest.vcpus):
            streams.append(np.concatenate(lane_segments[lane]))
            writes.append(np.concatenate(lane_writes[lane]))
            process_of_vcpu.append(
                process_base + base.process_of_vcpu[lane]
            )
            vm_of_vcpu.append(vm_index)
        process_base += base.num_processes
        vm_names.append(f"vm{vm_index}:{guest.workload}")
        streams_of_vm.append(
            list(range(first_stream, first_stream + guest.vcpus))
        )
        base_end.append(bounds_base)
        storm_ends.append(bounds_storm)

    trace = WorkloadTrace(
        name=spec.name,
        streams=streams,
        writes=writes,
        process_of_vcpu=process_of_vcpu,
        num_processes=process_base,
        vm_of_vcpu=vm_of_vcpu,
        # Global round-robin pinning: host-local placement maps would
        # pile every guest's vCPU 0 onto pCPU 0; striding by global
        # stream index spreads single-vCPU guests across the chip.
        pcpu_of_vcpu=[
            index % spec.num_cpus for index in range(len(streams))
        ],
        vm_names=vm_names,
        topology=None,
    )
    return trace, FleetLayout(
        streams_of_vm=streams_of_vm,
        base_end=base_end,
        storm_ends=storm_ends,
    )


def _simulate_fleet(
    spec: FleetSpec, protocol: str, engine: str
) -> tuple[FleetResult, list[dict]]:
    """Run one fleet on one engine; return the result and raw digests."""
    trace, layout = build_fleet_trace(spec)
    plan = migration_plan(spec)
    config = SystemConfig(
        num_cpus=spec.num_cpus, protocol=protocol, seed=spec.seed
    )
    hosts = [
        Simulator(config, engine=engine) for _ in range(spec.num_hosts)
    ]
    runs = [SteppedRun(host, trace) for host in hosts]
    placement = spec.initial_placement()
    moves_done = [0] * spec.num_vms
    transport = {"captures": 0, "restores": 0, "bytes": 0}
    tracer = active_tracer()

    for epoch in range(spec.epochs):
        epoch_start = tracer.now() if tracer else 0.0
        # 1. Every host advances its resident VMs through the epoch's
        #    base segment (hosts in index order; absent streams noop).
        for host_index, run in enumerate(runs):
            spans = {
                stream: layout.base_end[vm][epoch]
                for vm in range(spec.num_vms)
                if placement[vm] == host_index
                for stream in layout.streams_of_vm[vm]
            }
            if spans:
                run.advance(spans)

        # 2. The epoch's migration wave, move by move: drain storm on
        #    the source, snapshot transport, cold-touch storm on the
        #    destination.
        if epoch < spec.epochs - 1:
            for vm, src, dst in plan[epoch]:
                if placement[vm] != src:  # pragma: no cover - plan bug guard
                    raise RuntimeError(
                        f"plan moves vm{vm} from host{src} but it lives "
                        f"on host{placement[vm]}"
                    )
                src_end, dst_end = layout.storm_ends[vm][moves_done[vm]]
                moves_done[vm] += 1
                vm_streams = layout.streams_of_vm[vm]
                runs[src].advance(
                    {stream: src_end for stream in vm_streams}
                )
                payload = capture_vm_state(hosts[src], vm)
                transport["captures"] += 1
                transport["bytes"] += payload_bytes(payload)
                restore_vm_state(hosts[dst], vm, payload)
                transport["restores"] += 1
                if tracer:
                    tracer.instant(
                        "fleet.migrate", "fleet",
                        epoch=epoch, vm=vm, src=src, dst=dst,
                        bytes=payload_bytes(payload),
                    )
                for stream in vm_streams:
                    # the destination's positions for this VM are stale
                    # (it last saw them whenever the VM last left); the
                    # guest resumes exactly where the source stopped.
                    runs[dst].positions[stream] = runs[src].positions[stream]
                runs[dst].advance(
                    {stream: dst_end for stream in vm_streams}
                )
                placement[vm] = dst

        # 3. Close every host's telemetry interval: sample `epoch` of
        #    each host covers the epoch's base work plus whatever side
        #    of the wave's storms that host paid for.
        for run in runs:
            run.sample_interval()
        if tracer:
            tracer.complete(
                "fleet.epoch", "fleet", epoch_start,
                epoch=epoch, protocol=protocol, engine=engine,
                migrations=len(plan[epoch]) if epoch < spec.epochs - 1 else 0,
            )

    results = [run.result() for run in runs]
    digests = [machine_digest(host) for host in hosts]
    return (
        build_fleet_result(spec, protocol, results, digests, transport, plan),
        digests,
    )


def execute_fleet(request: FleetRequest) -> FleetResult:
    """Execute one fleet request from scratch (no caching).

    Module-level so a :class:`concurrent.futures.ProcessPoolExecutor`
    can pickle it into worker processes (mirroring
    :func:`repro.api.session.execute_request`).  Under
    ``REPRO_VALIDATE_FASTPATH=1`` a fast-engine fleet runs on *both*
    engines and any fingerprint difference raises
    :class:`~repro.sim.engine.FastPathMismatchError`.
    """
    resolved = resolve_engine(request.engine or None)
    if validate_fastpath_requested() and resolved != ENGINE_REFERENCE:
        outcomes = {}
        raw_digests = {}
        for engine in (ENGINE_REFERENCE, resolved):
            outcomes[engine], raw_digests[engine] = _simulate_fleet(
                request.spec, request.protocol, engine
            )
        if (
            outcomes[ENGINE_REFERENCE].fingerprint
            != outcomes[resolved].fingerprint
        ):
            differences: list[str] = []
            for host_index, (reference, candidate) in enumerate(
                zip(raw_digests[ENGINE_REFERENCE], raw_digests[resolved])
            ):
                differences.extend(
                    diff_fingerprints(
                        reference, candidate, prefix=f"host{host_index}."
                    )
                )
            details = "\n  ".join(differences[:20]) or "telemetry-only drift"
            raise FastPathMismatchError(
                f"{resolved} engine diverged from the reference engine on "
                f"fleet {request.spec.name!r} under {request.protocol}:"
                f"\n  {details}"
            )
        return outcomes[resolved]
    result, _ = _simulate_fleet(request.spec, request.protocol, resolved)
    return result


__all__ = ["FleetLayout", "build_fleet_trace", "execute_fleet"]
