"""Analytic energy model.

The paper uses CACTI 6.0 plus RTL modelling to evaluate energy
(Section 5.1); neither is available here, so this module substitutes an
analytic model with per-event dynamic energies and per-cycle static
power in arbitrary-but-consistent nanojoule units.  Only *relative*
energy between design points is ever reported (all the paper's energy
figures are normalized), so the ordering of the per-event costs is what
matters:

* on-chip structure lookups cost far less than cache/DRAM accesses;
* co-tags add a small per-lookup and per-cycle cost proportional to
  their width (the 2% area overhead of Section 6);
* UNITD's reverse-lookup CAM search costs several times more than
  HATRIC's narrow co-tag comparison;
* VM exits, IPIs and page copies are the big software-side consumers;
* static energy scales with runtime, which is how HATRIC converts its
  speedups into energy savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cpu.chip import Chip
    from repro.sim.stats import MachineStats


@dataclass(frozen=True)
class EnergyParameters:
    """Per-event dynamic energies (nJ) and static powers (nJ/cycle)."""

    # Translation structures.
    tlb_lookup: float = 0.008
    mmu_cache_lookup: float = 0.004
    ntlb_lookup: float = 0.004
    #: extra energy per lookup per co-tag byte stored in the entry.
    cotag_lookup_per_byte: float = 0.0006
    #: one co-tag CAM search across a structure (HATRIC invalidation).
    cotag_search: float = 0.02
    #: one reverse-lookup CAM search (UNITD).
    unitd_cam_search: float = 0.08

    # Cache hierarchy and memory.
    l1_access: float = 0.03
    l2_access: float = 0.10
    llc_access: float = 0.50
    fast_mem_access: float = 2.0
    slow_mem_access: float = 4.0

    # Coherence and virtualization events.
    directory_lookup: float = 0.05
    directory_fine_grained_factor: float = 1.6
    invalidation_message: float = 0.03
    vm_exit: float = 3.0
    ipi: float = 1.5
    page_copy: float = 60.0
    eager_structure_lookup: float = 0.02

    # Static power.
    cpu_static_per_cycle: float = 0.05
    #: additional static power per CPU per co-tag byte (co-tag storage in
    #: TLBs, MMU caches and nTLBs).
    cotag_static_per_byte_per_cycle: float = 0.0004


@dataclass
class EnergyBreakdown:
    """Energy of one run, split into components (arbitrary nJ units)."""

    dynamic: float = 0.0
    static: float = 0.0
    components: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total energy (dynamic + static)."""
        return self.dynamic + self.static

    def add(self, component: str, amount: float, static: bool = False) -> None:
        """Accumulate ``amount`` under ``component``."""
        self.components[component] = self.components.get(component, 0.0) + amount
        if static:
            self.static += amount
        else:
            self.dynamic += amount


class EnergyModel:
    """Computes an :class:`EnergyBreakdown` from a finished simulation."""

    def __init__(
        self,
        params: EnergyParameters | None = None,
        cotag_bytes: int = 0,
        fine_grained_directory: bool = False,
    ) -> None:
        self.params = params or EnergyParameters()
        self.cotag_bytes = cotag_bytes
        self.fine_grained_directory = fine_grained_directory

    def compute(self, chip: "Chip", stats: "MachineStats") -> EnergyBreakdown:
        """Compute energy for a finished run."""
        p = self.params
        breakdown = EnergyBreakdown()
        events = stats.events

        # --- translation structure lookups --------------------------------
        tlb_lookups = 0
        mmu_lookups = 0
        ntlb_lookups = 0
        cotag_searches = 0
        for core in chip.cores:
            tlb_lookups += core.tlb_l1.stats.lookups + core.tlb_l2.stats.lookups
            mmu_lookups += core.mmu_cache.stats.lookups
            ntlb_lookups += core.ntlb.stats.lookups
            for structure in core.translation_structures():
                cotag_searches += structure.stats.cotag_searches
        lookup_energy = (
            tlb_lookups * p.tlb_lookup
            + mmu_lookups * p.mmu_cache_lookup
            + ntlb_lookups * p.ntlb_lookup
        )
        breakdown.add("translation.lookups", lookup_energy)
        if self.cotag_bytes:
            total_lookups = tlb_lookups + mmu_lookups + ntlb_lookups
            breakdown.add(
                "translation.cotag_lookup",
                total_lookups * p.cotag_lookup_per_byte * self.cotag_bytes,
            )
            breakdown.add("translation.cotag_search", cotag_searches * p.cotag_search)
        breakdown.add(
            "translation.unitd_cam",
            events.get("unitd.cam_searches", 0) * p.unitd_cam_search,
        )

        # --- cache hierarchy and memory ------------------------------------
        l1_accesses = sum(core.l1.stats.accesses for core in chip.cores)
        l2_accesses = sum(core.l2.stats.accesses for core in chip.cores)
        llc_accesses = chip.llc.stats.accesses
        breakdown.add("cache.l1", l1_accesses * p.l1_access)
        breakdown.add("cache.l2", l2_accesses * p.l2_access)
        breakdown.add("cache.llc", llc_accesses * p.llc_access)
        breakdown.add("memory.fast", chip.memory.fast.accesses * p.fast_mem_access)
        breakdown.add("memory.slow", chip.memory.slow.accesses * p.slow_mem_access)

        # --- coherence and virtualization events ----------------------------
        directory_energy = chip.directory.stats.lookups * p.directory_lookup
        if self.fine_grained_directory:
            directory_energy *= p.directory_fine_grained_factor
        breakdown.add("coherence.directory", directory_energy)
        messages = (
            events.get("hatric.invalidation_messages", 0)
            + events.get("unitd.invalidation_messages", 0)
            + chip.directory.stats.invalidations_sent
        )
        breakdown.add("coherence.messages", messages * p.invalidation_message)
        breakdown.add(
            "coherence.eager_lookups",
            events.get("coherence.eager_structure_lookups", 0)
            * p.eager_structure_lookup,
        )
        breakdown.add("virt.vm_exits", events.get("coherence.vm_exits", 0) * p.vm_exit)
        breakdown.add("virt.ipis", events.get("coherence.ipis", 0) * p.ipi)
        page_copies = (
            events.get("paging.evictions", 0)
            + events.get("paging.demand_migrations", 0)
            + events.get("paging.prefetches", 0)
            + events.get("paging.defrag_remaps", 0)
            + events.get("paging.first_touch", 0) * 0.5
        )
        breakdown.add("paging.copies", page_copies * p.page_copy)

        # --- static energy ---------------------------------------------------
        runtime = stats.runtime_cycles
        num_cpus = len(chip.cores)
        breakdown.add(
            "static.cpu", runtime * num_cpus * p.cpu_static_per_cycle, static=True
        )
        if self.cotag_bytes:
            breakdown.add(
                "static.cotags",
                runtime
                * num_cpus
                * p.cotag_static_per_byte_per_cycle
                * self.cotag_bytes,
                static=True,
            )
        return breakdown
