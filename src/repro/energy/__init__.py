"""Energy accounting for the simulated system."""

from repro.energy.model import EnergyBreakdown, EnergyModel, EnergyParameters

__all__ = ["EnergyBreakdown", "EnergyModel", "EnergyParameters"]
